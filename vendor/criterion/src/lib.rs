//! Offline vendored stand-in for
//! [`criterion`](https://crates.io/crates/criterion), keeping the
//! bench-authoring API (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`)
//! while replacing the statistical machinery with a single-shot timer.
//!
//! Each registered routine runs its body exactly once and reports the
//! wall-clock time as a TSV row on stdout. That keeps `cargo bench` (and the
//! bench targets compiled by `cargo test`) fast and dependency-free; when a
//! real crates.io mirror is available, swapping this shim for the genuine
//! crate requires no source changes in `crates/bench`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of the standard black-box optimization barrier, which the real
/// criterion also forwards to on recent toolchains.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to every benchmark closure; `iter` times the routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine` (the real crate samples many).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with per-iteration setup, running it once.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed = start.elapsed();
    }
}

/// Batch sizing hint (ignored by the single-shot shim).
#[derive(Debug, Clone, Copy, Default)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    #[default]
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

fn run_one(group: Option<&str>, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    println!("bench\t{full}\t{:.6}s", b.elapsed.as_secs_f64());
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _parent: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the sample count (ignored: the shim always runs once).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (ignored by the shim).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.to_string(), &mut f);
        self
    }

    /// Registers and immediately runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.to_string(), &mut f);
        self
    }
}

/// Declares a group of benchmark functions (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $config;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point (mirrors criterion's macro; requires
/// `harness = false` on the bench target, as with the real crate).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_routine() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("unit", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn group_runs_each_function_once() {
        let mut c = Criterion::default();
        let mut runs = Vec::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("a", |b| b.iter(|| runs.push("a")));
        group.bench_with_input(BenchmarkId::new("b", 7), &7, |b, &x| {
            b.iter(|| runs.push(if x == 7 { "b7" } else { "?" }))
        });
        group.finish();
        assert_eq!(runs, vec!["a", "b7"]);
    }
}
