//! Offline vendored stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, implementing exactly the API subset the SCPM workspace uses
//! (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::random`,
//! `Rng::random_bool`, `Rng::random_range`, `SliceRandom::shuffle`/`choose`).
//!
//! The build environment has no network access to crates.io, so external
//! dependencies are vendored as minimal shims (see `vendor/` in the
//! workspace root). The generator is SplitMix64 — deterministic for a given
//! seed, statistically solid for simulation-style workloads, and *not*
//! cryptographically secure (neither is the workspace's use of it).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generators (mirrors `rand::rngs`).
pub mod rngs {
    /// A deterministic 64-bit PRNG (SplitMix64) standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        /// Advances the generator and returns the next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use rngs::StdRng;

/// Seeding interface (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // One warm-up scramble so that small seeds (0, 1, 2…) do not yield
        // visibly correlated first outputs.
        let mut rng = StdRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        };
        rng.next_u64();
        rng
    }
}

/// Types samplable uniformly over their full domain (stand-in for sampling
/// from `rand`'s `StandardUniform` distribution via [`Rng::random`]).
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample_standard(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard(rng: &mut StdRng) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable as [`Rng::random_range`] bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from the half-open interval `[low, high)`.
    fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self;
    /// The successor value (for inclusive ranges).
    fn successor(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // 64 fresh bits modulo the span: bias is < span / 2^64,
                // negligible for the simulation workloads in this workspace.
                let draw = (rng.next_u64() as u128) % span;
                (low as u128).wrapping_add(draw) as $t
            }
            #[inline]
            fn successor(self) -> Self { self + 1 }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_range(rng: &mut StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "random_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
            #[inline]
            fn successor(self) -> Self { self + 1 }
        }
    )*};
}
impl_uniform_int_signed!(i8, i16, i32, i64, isize);

/// Range shapes accepted by [`Rng::random_range`] (mirrors
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> T {
        let (low, high) = self.into_inner();
        T::sample_range(rng, low, high.successor())
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "random_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface (mirrors `rand::Rng`).
pub trait Rng {
    /// Access to the concrete generator the shim samples from.
    fn as_std(&mut self) -> &mut StdRng;

    /// Uniform draw over a type's full domain (floats: `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self.as_std())
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p out of [0,1]");
        f64::sample_standard(self.as_std()) < p
    }

    /// Uniform draw from a (half-open or inclusive) range.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self.as_std())
    }
}

impl Rng for StdRng {
    #[inline]
    fn as_std(&mut self) -> &mut StdRng {
        self
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, UniformInt};

    /// Slice shuffling and random choice (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng.as_std(), 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng.as_std(), 0, self.len())])
            }
        }
    }
}

/// The conventional glob-import surface (mirrors `rand::prelude`).
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.random_range(5..17);
            assert!((5..17).contains(&x));
            let y: usize = rng.random_range(3..=9);
            assert!((3..=9).contains(&y));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
