//! Offline vendored stand-in for the `memmap2` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! small API subset the snapshot layer uses: read-only, private file
//! mappings ([`Mmap::map`] / [`MmapOptions::map`]) that deref to `&[u8]`.
//!
//! On unix targets the mapping is a real `mmap(2)` call (raw `extern "C"`
//! bindings — the environment has no `libc` crate either), so pages are
//! faulted in on demand and never copied through a heap buffer. On other
//! targets the shim degrades to reading the file into an 8-byte-aligned
//! heap buffer, which preserves the API and the alignment guarantee (but
//! not the lazy paging).

#![deny(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Deref;

/// A read-only memory map of a file (or an aligned heap copy on targets
/// without `mmap`). Dereferences to the mapped bytes.
///
/// The base address is always at least 8-byte aligned: `mmap` returns
/// page-aligned addresses, and the fallback allocates via `u64` words.
#[derive(Debug)]
pub struct Mmap {
    inner: Inner,
}

/// Builder mirroring `memmap2::MmapOptions` (subset: full-file, read-only,
/// private mappings).
#[derive(Debug, Default, Clone)]
pub struct MmapOptions {
    _private: (),
}

impl MmapOptions {
    /// Creates a new set of options (full file, read-only).
    pub fn new() -> Self {
        MmapOptions::default()
    }

    /// Maps the whole of `file` read-only.
    ///
    /// # Safety
    /// As in `memmap2`: the caller must ensure the file is not truncated
    /// or written through while the map is alive (undefined behavior on
    /// unix if it is). The snapshot layer only maps immutable,
    /// atomically-renamed snapshot files.
    pub unsafe fn map(&self, file: &File) -> io::Result<Mmap> {
        Mmap::map(file)
    }
}

impl Mmap {
    /// Maps the whole of `file` read-only.
    ///
    /// # Safety
    /// See [`MmapOptions::map`].
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        Inner::map(file).map(|inner| Mmap { inner })
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        self.inner.as_slice()
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the mapping is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl Deref for Mmap {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned `mmap(2)` region, unmapped on drop.
    #[derive(Debug)]
    pub struct Inner {
        ptr: *mut c_void,
        len: usize,
    }

    // The mapping is read-only and owned; sharing references is safe.
    unsafe impl Send for Inner {}
    unsafe impl Sync for Inner {}

    impl Inner {
        pub unsafe fn map(file: &File) -> io::Result<Inner> {
            let len = file.metadata()?.len();
            if len > usize::MAX as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "file too large to map",
                ));
            }
            let len = len as usize;
            if len == 0 {
                // mmap(2) rejects zero-length mappings; model as empty.
                return Ok(Inner {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            let ptr = mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            );
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Inner { ptr, len })
        }

        #[inline]
        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                &[]
            } else {
                // SAFETY: ptr/len describe a live PROT_READ mapping owned
                // by self; unmapped only on drop.
                unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
            }
        }
    }

    impl Drop for Inner {
        fn drop(&mut self) {
            if self.len != 0 {
                // SAFETY: exactly the region returned by mmap above.
                unsafe {
                    munmap(self.ptr, self.len);
                }
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;
    use std::io::{self, Read};

    /// Heap fallback: the file contents in an 8-byte-aligned buffer.
    #[derive(Debug)]
    pub struct Inner {
        words: Vec<u64>,
        len: usize,
    }

    impl Inner {
        pub unsafe fn map(file: &File) -> io::Result<Inner> {
            let mut bytes = Vec::new();
            let mut f = file.try_clone()?;
            f.read_to_end(&mut bytes)?;
            let len = bytes.len();
            let mut words = vec![0u64; len.div_ceil(8)];
            // SAFETY: u64 words reinterpreted as bytes; capacity covers len.
            let dst = unsafe {
                std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8)
            };
            dst[..len].copy_from_slice(&bytes);
            Ok(Inner { words, len })
        }

        #[inline]
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: the words buffer holds at least len initialized bytes.
            unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
        }
    }
}

use sys::Inner;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join("memmap2_shim_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = unsafe { Mmap::map(&file).unwrap() };
        assert_eq!(&map[..], &payload[..]);
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        // Base address is at least 8-byte aligned (zero-copy u64 casts
        // in the snapshot layer rely on this).
        assert_eq!(map.as_slice().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn maps_empty_file() {
        let dir = std::env::temp_dir().join("memmap2_shim_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::File::create(&path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = unsafe { MmapOptions::new().map(&file).unwrap() };
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        std::fs::remove_file(&path).ok();
    }
}
