//! Offline vendored stand-in for
//! [`crossbeam`](https://crates.io/crates/crossbeam)'s scoped threads,
//! implemented over `std::thread::scope` (stable since Rust 1.63, which
//! covers everything the workspace needs from crossbeam).
//!
//! API mirrored: `crossbeam::scope(|s| { s.spawn(|_| …) })` returning
//! `Result`, with spawn closures receiving a `&Scope` handle for nested
//! spawns and `ScopedJoinHandle::join` for collecting results; plus the
//! [`deque`] module's `Injector`/`Worker`/`Stealer` work-stealing queues
//! (mirroring `crossbeam-deque`, which the real `crossbeam` re-exports).

#![warn(missing_docs)]

pub mod deque;

use std::any::Any;
use std::thread;

/// Error payload of a panicked scope (mirrors `std::thread::Result`).
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A handle for spawning scoped threads; passed both to the `scope` closure
/// and (by reference) to every spawned closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives this scope again so it
    /// can spawn further threads, matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Owned handle to one scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result (or the panic
    /// payload if it panicked).
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

/// Creates a scope in which borrowed-data threads can be spawned; all are
/// joined before this returns. Always `Ok` here: unjoined panicking threads
/// propagate their panic through `std::thread::scope` instead of being
/// collected, which is strictly less forgiving than crossbeam but sound.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawn_and_join_borrowed_data() {
        let data = [1usize, 2, 3, 4];
        let counter = AtomicUsize::new(0);
        let total = super::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                let counter = &counter;
                handles.push(s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    chunk.iter().sum::<usize>()
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum::<usize>()
        })
        .expect("scope failed");
        assert_eq!(total, 10);
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let out = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().map(|x| x * 2).unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
