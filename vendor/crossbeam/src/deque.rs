//! Work-stealing deques, mirroring
//! [`crossbeam-deque`](https://crates.io/crates/crossbeam-deque)'s
//! `Injector` / `Worker` / `Stealer` / `Steal` surface.
//!
//! The real crate uses the lock-free Chase–Lev deque; this offline shim
//! implements the same API over a `Mutex<VecDeque>` per queue, which is
//! correct (and fast enough at subtree-task granularity, where each queue
//! operation amortizes a quasi-clique search). Semantics match the
//! original where it matters for schedulers built on top:
//!
//! * [`Worker::pop`] is LIFO — the owner works depth-first on its newest
//!   (smallest) subtasks, keeping caches warm,
//! * [`Stealer::steal`] and [`Injector::steal`] are FIFO — thieves take
//!   the *oldest* (largest) task, minimizing steal traffic,
//! * a [`Stealer`] is `Clone + Send + Sync` and can be polled from any
//!   thread.
//!
//! The one intentional simplification: this shim's `steal` never returns
//! [`Steal::Retry`] (a mutex cannot lose a race mid-operation), but the
//! variant exists so loops written against the real crate compile
//! unchanged.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and should be retried (never produced by
    /// this shim; kept for API compatibility).
    Retry,
}

impl<T> Steal<T> {
    /// Converts to `Option`, treating `Retry` as `None`.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Whether a task was obtained.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }
}

/// A FIFO queue shared by all workers; tasks with no natural owner (e.g.
/// the roots of a computation) are pushed here and stolen by idle workers.
#[derive(Debug)]
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues a task at the back.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .expect("injector poisoned")
            .push_back(task);
    }

    /// Steals the oldest task.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().expect("injector poisoned").pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the queue is currently empty (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("injector poisoned").is_empty()
    }

    /// Number of queued tasks (racy, advisory only).
    pub fn len(&self) -> usize {
        self.queue.lock().expect("injector poisoned").len()
    }
}

/// A worker-owned deque: the owner pushes and pops at the back (LIFO),
/// thieves steal from the front (FIFO) through [`Stealer`] handles.
#[derive(Debug)]
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates an empty LIFO worker queue (the variant schedulers want for
    /// depth-first owners; the real crate also offers `new_fifo`).
    pub fn new_lifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .expect("worker queue poisoned")
            .push_back(task);
    }

    /// Pops the most recently pushed task (owner side, LIFO).
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().expect("worker queue poisoned").pop_back()
    }

    /// Creates a steal handle for other threads.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Whether the deque is currently empty (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("worker queue poisoned").is_empty()
    }

    /// Number of queued tasks (racy, advisory only).
    pub fn len(&self) -> usize {
        self.queue.lock().expect("worker queue poisoned").len()
    }
}

/// A handle stealing from the *front* of one [`Worker`]'s deque.
#[derive(Debug)]
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals the oldest task from the owning worker's deque.
    pub fn steal(&self) -> Steal<T> {
        match self
            .queue
            .lock()
            .expect("worker queue poisoned")
            .pop_front()
        {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the deque is currently empty (racy, advisory only).
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("worker queue poisoned").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_is_lifo_stealer_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1)); // oldest
        assert_eq!(w.pop(), Some(3)); // newest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal(), Steal::Success("a"));
        assert_eq!(inj.steal(), Steal::Success("b"));
        assert!(inj.steal().is_empty());
        assert!(inj.is_empty());
    }

    #[test]
    fn steal_across_threads() {
        let w = Worker::new_lifo();
        for i in 0..100 {
            w.push(i);
        }
        let stealers: Vec<Stealer<i32>> = (0..4).map(|_| w.stealer()).collect();
        let total: i32 = crate::scope(|scope| {
            let handles: Vec<_> = stealers
                .iter()
                .map(|s| {
                    scope.spawn(move |_| {
                        let mut sum = 0;
                        while let Steal::Success(v) = s.steal() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total + w.pop().map_or(0, |v| v), (0..100).sum());
    }

    #[test]
    fn steal_success_helpers() {
        assert_eq!(Steal::Success(7).success(), Some(7));
        assert_eq!(Steal::<i32>::Empty.success(), None);
        assert_eq!(Steal::<i32>::Retry.success(), None);
        assert!(Steal::Success(7).is_success());
        assert!(!Steal::<i32>::Retry.is_empty());
    }
}
