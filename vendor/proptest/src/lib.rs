//! Offline vendored stand-in for
//! [`proptest`](https://crates.io/crates/proptest), implementing the API
//! subset the SCPM property tests use: the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_flat_map`, range/tuple/`Just` strategies,
//! `collection::vec`, `any::<T>()`, `prop_oneof!`, and the
//! `prop_assert*` family.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the case number and assertion
//!   message; inputs are deterministic per test (seeded from the test path),
//!   so failures reproduce exactly on re-run.
//! * **Sampling only.** Strategies are samplers, not search trees.
//! * `PROPTEST_CASES` overrides the default case count, as upstream.

#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::prelude::*;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of one type (sampling-only stand-in for
    /// proptest's `Strategy`).
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice among same-typed strategies (`prop_oneof!` backend).
    pub struct OneOf<T> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds from a non-empty list of alternatives.
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs >= 1 alternative");
            OneOf { choices }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.random_range(0..self.choices.len());
            self.choices[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Types with a canonical "whole domain" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.random()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.random()
        }
    }

    /// Strategy over a type's full [`Arbitrary`] domain.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct Any<A>(std::marker::PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn sample(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Canonical whole-domain strategy for `A` (mirrors `proptest::prelude::any`).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::prelude::*;
    use std::ops::{Range, RangeInclusive};

    /// Admissible length specifications for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty vec size range");
            SizeRange {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    /// Strategy producing vectors of `element`-generated values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy: length drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test configuration and failure plumbing.
pub mod test_runner {
    use rand::prelude::*;
    use std::hash::{DefaultHasher, Hash, Hasher};

    /// Per-test configuration (only `cases` is honored by the shim).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config { cases }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic per-test RNG: seeded from the test's module path and
    /// name so failures reproduce across runs and machines.
    pub fn deterministic_rng(test_path: &str) -> StdRng {
        let mut h = DefaultHasher::new();
        test_path.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }
}

/// The conventional glob-import surface (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__left, __right) = (&$a, &$b);
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", __left, __right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$a, &$b);
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __left,
                    __right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fails the current property case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__left, __right) = (&$a, &$b);
        if !(__left != __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", __left, __right),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$a, &$b);
        if !(__left != __right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    __left,
                    __right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::test_runner::deterministic_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..=8)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..n as u32, 0..(n * 2))))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 2u32..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=5).contains(&y), "y = {}", y);
        }

        #[test]
        fn flat_map_respects_dependency((n, v) in pair()) {
            prop_assert!(v.len() < n * 2);
            prop_assert!(v.iter().all(|&x| (x as usize) < n));
        }

        #[test]
        fn oneof_picks_listed_values(g in prop_oneof![Just(0.5f64), Just(1.0)]) {
            prop_assert!(g == 0.5 || g == 1.0);
        }

        #[test]
        fn any_bool_and_vec_sizes(mask in crate::collection::vec(any::<bool>(), 7)) {
            prop_assert_eq!(mask.len(), 7);
        }
    }

    #[test]
    fn deterministic_between_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..100, 5..9);
        let mut r1 = crate::test_runner::deterministic_rng("t");
        let mut r2 = crate::test_runner::deterministic_rng("t");
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }
}
