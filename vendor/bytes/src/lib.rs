//! Offline vendored stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, implementing the subset the SCPM workspace uses for binary graph
//! snapshots: [`Bytes`], [`BytesMut`], and little-endian [`Buf`]/[`BufMut`]
//! cursors. Backed by plain `Vec<u8>` — no refcounted zero-copy slicing,
//! which the workspace does not need.

#![warn(missing_docs)]

/// An immutable byte buffer with an internal read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Length of the *unread* portion.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread portion into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(data: &[u8; N]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Resizes the buffer in place, filling any new bytes with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Converts the written bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Sequential little-endian reader over a byte source.
///
/// Callers must check [`Buf::remaining`] before each typed read; the typed
/// getters panic on underflow exactly like the real crate.
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;
    /// The unread bytes as a slice.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` unread bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out of the buffer, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Sequential little-endian writer into a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_typed_values() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 0, 0, 0, 7];
        let mut buf: &[u8] = &data;
        assert_eq!(buf.get_u32_le(), 1);
        assert_eq!(buf.remaining(), 1);
        assert_eq!(buf.get_u8(), 7);
    }
}
