//! Offline vendored stand-in for
//! [`parking_lot`](https://crates.io/crates/parking_lot), wrapping the std
//! primitives behind `parking_lot`'s poison-free API (`lock()` returns the
//! guard directly). A poisoned std lock is recovered rather than propagated,
//! matching `parking_lot`'s behavior of not poisoning at all.

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
