//! Cross-crate properties of the null models on realistic dataset graphs:
//! monotonicity of `max-exp` (required for the Theorem 5 pruning), the
//! `δ_lb ≤ δ_sim` ordering, and agreement between the fast recurrence and
//! the definitional double sum.

use scpm_core::nullmodel::{simulate_expected, AnalyticalModel};
use scpm_core::{Scpm, ScpmParams};
use scpm_datasets::{citeseer_like, dblp_like};
use scpm_quasiclique::QcConfig;

#[test]
fn max_exp_monotone_on_dataset_graphs() {
    for (dataset, cfg) in [
        (dblp_like(0.01, 3), QcConfig::new(0.5, 10)),
        (citeseer_like(0.01, 3), QcConfig::new(0.5, 5)),
    ] {
        let g = dataset.graph.graph();
        let model = AnalyticalModel::new(g, &cfg);
        let n = g.num_vertices();
        let mut prev = -1.0;
        for sigma in (0..=n).step_by((n / 40).max(1)) {
            let e = model.expected(sigma);
            assert!(
                e >= prev - 1e-12,
                "{}: max-exp({sigma}) = {e} < previous {prev}",
                dataset.name
            );
            assert!((0.0..=1.0).contains(&e));
            prev = e;
        }
    }
}

#[test]
fn recurrence_equals_definition_on_dataset_graph() {
    let dataset = dblp_like(0.02, 11);
    let g = dataset.graph.graph();
    let model = AnalyticalModel::new(g, &QcConfig::new(0.5, 10));
    let n = g.num_vertices();
    for sigma in [1, 2, n / 100, n / 10, n / 2, n] {
        let fast = model.expected_uncached(sigma);
        let naive = model.expected_naive(sigma);
        assert!(
            (fast - naive).abs() < 1e-9,
            "σ = {sigma}: {fast} vs {naive}"
        );
    }
}

#[test]
fn delta_lb_lower_bounds_delta_sim() {
    // δ_lb = ε / max-exp ≤ δ_sim = ε / sim-exp requires max-exp ≥ sim-exp,
    // which holds because degree feasibility is necessary for coverage.
    let dataset = dblp_like(0.02, 7);
    let g = dataset.graph.graph();
    let cfg = QcConfig::new(0.5, 10);
    let model = AnalyticalModel::new(g, &cfg);
    let n = g.num_vertices();
    for frac in [0.02, 0.05, 0.1] {
        let sigma = ((n as f64) * frac) as usize;
        let sim = simulate_expected(g, &cfg, sigma, 20, 3);
        let bound = model.expected(sigma);
        let slack = 3.0 * sim.std_dev / (sim.runs as f64).sqrt();
        assert!(
            sim.mean <= bound + slack + 1e-12,
            "σ = {sigma}: sim-exp {} > max-exp {bound}",
            sim.mean
        );
    }
}

#[test]
fn scpm_delta_values_are_consistent_with_model() {
    let dataset = dblp_like(0.01, 5);
    let g = &dataset.graph;
    let params = ScpmParams::new(8, 0.5, 8).with_max_attrs(2).with_top_k(0);
    let scpm = Scpm::new(g, params);
    let result = scpm.run();
    let model = scpm.model();
    for rep in &result.reports {
        let expect = model.normalize(rep.epsilon, rep.support);
        assert!(
            (rep.delta_lb - expect).abs() < 1e-9
                || (rep.delta_lb.is_infinite() && expect.is_infinite()),
            "δ_lb mismatch for {:?}",
            rep.attrs
        );
        // ε is a fraction; δ_lb is nonnegative.
        assert!((0.0..=1.0).contains(&rep.epsilon));
        assert!(rep.delta_lb >= 0.0);
    }
}

#[test]
fn expected_growth_shape_matches_figures() {
    // Figures 4/7/9: both models grow with σ and max-exp dominates.
    let dataset = citeseer_like(0.01, 13);
    let g = dataset.graph.graph();
    let cfg = QcConfig::new(0.5, 5);
    let model = AnalyticalModel::new(g, &cfg);
    let n = g.num_vertices();
    let sigmas: Vec<usize> = [0.02, 0.05, 0.1, 0.2]
        .iter()
        .map(|f| ((n as f64) * f) as usize)
        .collect();
    let bounds: Vec<f64> = sigmas.iter().map(|&s| model.expected(s)).collect();
    assert!(
        bounds.windows(2).all(|w| w[0] <= w[1] + 1e-12),
        "max-exp not growing: {bounds:?}"
    );
    assert!(bounds[3] > bounds[0], "max-exp flat over the σ sweep");
}
