//! The central end-to-end equivalence: SCPM (with all of its pruning
//! machinery) must produce exactly the qualifying attribute sets and
//! patterns of the naive Eclat-plus-full-enumeration baseline, across
//! random attributed graphs and parameter combinations.

use rand::prelude::*;
use rand::rngs::StdRng;
use scpm_core::{run_naive, Scpm, ScpmParams, ScpmResult};
use scpm_graph::attributed::{AttributedGraph, AttributedGraphBuilder};
use scpm_quasiclique::SearchOrder;

/// Random attributed graph: planted dense blocks plus noise edges and a
/// small attribute universe with block-correlated attributes.
fn random_attributed(seed: u64) -> AttributedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.random_range(40..90);
    let mut b = AttributedGraphBuilder::new(n);
    let num_attrs = rng.random_range(4..8);
    let attr_ids: Vec<u32> = (0..num_attrs)
        .map(|i| b.intern_attr(&format!("a{i}")))
        .collect();

    // A few dense blocks.
    let blocks = rng.random_range(2..4);
    let mut cursor = 0usize;
    for _ in 0..blocks {
        let size = rng.random_range(5..10).min(n - cursor);
        let members: Vec<u32> = (cursor..cursor + size).map(|v| v as u32).collect();
        cursor += size;
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if rng.random::<f64>() < 0.8 {
                    b.add_edge(members[i], members[j]);
                }
            }
        }
        // Block attribute: one or two attributes shared by members.
        let a = attr_ids[rng.random_range(0..attr_ids.len())];
        for &v in &members {
            if rng.random::<f64>() < 0.9 {
                b.add_attr(v, a);
            }
        }
    }
    // Noise edges and attributes.
    for _ in 0..(n * 2) {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            b.add_edge(u, v);
        }
    }
    for v in 0..n as u32 {
        for &a in &attr_ids {
            if rng.random::<f64>() < 0.25 {
                b.add_attr(v, a);
            }
        }
    }
    b.build()
}

fn qualified_reports(r: &ScpmResult) -> Vec<(Vec<u32>, usize, i64, i64)> {
    let mut v: Vec<(Vec<u32>, usize, i64, i64)> = r
        .reports
        .iter()
        .filter(|rep| rep.qualified)
        .map(|rep| {
            let delta_key = if rep.delta_lb.is_infinite() {
                i64::MAX
            } else {
                (rep.delta_lb * 1e6) as i64
            };
            (
                rep.attrs.clone(),
                rep.support,
                (rep.epsilon * 1e9) as i64,
                delta_key,
            )
        })
        .collect();
    v.sort();
    v
}

fn patterns(r: &ScpmResult) -> Vec<(Vec<u32>, Vec<u32>)> {
    let mut v: Vec<(Vec<u32>, Vec<u32>)> = r
        .patterns
        .iter()
        .map(|p| (p.attrs.clone(), p.clique.vertices.clone()))
        .collect();
    v.sort();
    v
}

fn check_equivalence(seed: u64, params: ScpmParams) {
    let g = random_attributed(seed);
    let scpm = Scpm::new(&g, params.clone()).run();
    let naive = run_naive(&g, &params);
    assert_eq!(
        qualified_reports(&scpm),
        qualified_reports(&naive),
        "qualified sets differ (seed {seed})"
    );
    assert_eq!(
        patterns(&scpm),
        patterns(&naive),
        "patterns differ (seed {seed})"
    );
    // SCPM may examine fewer sets, never more.
    assert!(scpm.stats.attribute_sets_examined <= naive.stats.attribute_sets_examined);
}

#[test]
fn equivalence_baseline_params() {
    for seed in 0..8 {
        check_equivalence(
            seed,
            ScpmParams::new(5, 0.6, 4).with_eps_min(0.2).with_top_k(3),
        );
    }
}

#[test]
fn equivalence_with_delta_threshold() {
    for seed in 0..6 {
        check_equivalence(
            seed,
            ScpmParams::new(5, 0.5, 4)
                .with_eps_min(0.1)
                .with_delta_min(2.0)
                .with_top_k(2),
        );
    }
}

#[test]
fn equivalence_with_half_density() {
    for seed in 100..105 {
        check_equivalence(
            seed,
            ScpmParams::new(6, 0.5, 5).with_eps_min(0.15).with_top_k(4),
        );
    }
}

#[test]
fn equivalence_with_bfs_order() {
    for seed in 200..204 {
        check_equivalence(
            seed,
            ScpmParams::new(5, 0.6, 4)
                .with_eps_min(0.2)
                .with_top_k(3)
                .with_order(SearchOrder::Bfs),
        );
    }
}

#[test]
fn equivalence_no_thresholds() {
    // Without ε/δ thresholds both algorithms examine the same lattice, so
    // even the full report lists coincide.
    for seed in 300..303 {
        let g = random_attributed(seed);
        let params = ScpmParams::new(8, 0.6, 4).with_top_k(1);
        let scpm = Scpm::new(&g, params.clone()).run();
        let naive = run_naive(&g, &params);
        let all = |r: &ScpmResult| {
            let mut v: Vec<(Vec<u32>, usize)> = r
                .reports
                .iter()
                .map(|rep| (rep.attrs.clone(), rep.support))
                .collect();
            v.sort();
            v
        };
        assert_eq!(all(&scpm), all(&naive), "seed {seed}");
        assert_eq!(patterns(&scpm), patterns(&naive), "seed {seed}");
    }
}
