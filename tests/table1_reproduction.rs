//! End-to-end reproduction of Table 1: the complete structural correlation
//! pattern set of the Figure 1 example, including every column the paper
//! prints (pattern, size, γ, σ, ε).

use scpm_core::{Scpm, ScpmParams};
use scpm_graph::figure1::{figure1, paper_vertex};

/// One expected row of Table 1: (attribute names, vertex labels, size, γ,
/// σ, ε).
/// (attribute names, vertex labels, size, γ, σ, ε).
type Table1Row = (
    &'static [&'static str],
    &'static [u32],
    usize,
    f64,
    usize,
    f64,
);

const TABLE1: &[Table1Row] = &[
    (&["A"], &[6, 7, 8, 9, 10, 11], 6, 0.60, 11, 0.82),
    (&["A"], &[3, 4, 5, 6], 4, 1.0, 11, 0.82),
    (&["A"], &[3, 4, 6, 7], 4, 0.67, 11, 0.82),
    (&["A"], &[3, 5, 6, 7], 4, 0.67, 11, 0.82),
    (&["A"], &[3, 6, 7, 8], 4, 0.67, 11, 0.82),
    (&["B"], &[6, 7, 8, 9, 10, 11], 6, 0.60, 6, 1.0),
    (&["A", "B"], &[6, 7, 8, 9, 10, 11], 6, 0.60, 6, 1.0),
];

#[test]
fn full_table1_with_all_columns() {
    let graph = figure1();
    let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
    let result = Scpm::new(&graph, params).run();
    assert_eq!(result.patterns.len(), TABLE1.len(), "row count");

    for (names, labels, size, gamma, sigma, eps) in TABLE1 {
        let attrs: Vec<u32> = names.iter().map(|n| graph.attr_id(n).unwrap()).collect();
        let mut vertices: Vec<u32> = labels.iter().map(|&l| paper_vertex(l)).collect();
        vertices.sort_unstable();
        let pattern = result
            .patterns
            .iter()
            .find(|p| p.attrs == attrs && p.clique.vertices == vertices)
            .unwrap_or_else(|| panic!("missing Table 1 row ({names:?}, {labels:?})"));
        assert_eq!(pattern.clique.size(), *size);
        assert!(
            (pattern.clique.min_degree_ratio - gamma).abs() < 0.01,
            "γ of ({names:?}, {labels:?}): got {}",
            pattern.clique.min_degree_ratio
        );
        let report = result.report_for(&attrs).expect("report exists");
        assert_eq!(report.support, *sigma);
        assert!(
            (report.epsilon - eps).abs() < 0.01,
            "ε of {names:?}: got {}",
            report.epsilon
        );
    }
}

#[test]
fn table1_invariant_under_search_order() {
    use scpm_quasiclique::SearchOrder;
    let graph = figure1();
    let collect = |order| {
        let params = ScpmParams::new(3, 0.6, 4)
            .with_eps_min(0.5)
            .with_order(order);
        let mut rows: Vec<(Vec<u32>, Vec<u32>)> = Scpm::new(&graph, params)
            .run()
            .patterns
            .into_iter()
            .map(|p| (p.attrs, p.clique.vertices))
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(collect(SearchOrder::Dfs), collect(SearchOrder::Bfs));
}

#[test]
fn table1_via_prelude_facade() {
    use scpm_suite::prelude::*;
    let graph = figure1();
    let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
    let result = Scpm::new(&graph, params).run();
    assert_eq!(result.patterns.len(), 7);
}
