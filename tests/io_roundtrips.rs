//! End-to-end I/O: generated datasets must survive text and snapshot
//! round-trips with identical mining results, and corrupted inputs must
//! fail loudly rather than silently misparse.

use scpm_core::{Scpm, ScpmParams, ScpmResult};
use scpm_datasets::dblp_like;
use scpm_graph::io::{load_attributed, read_attributed, save_attributed, ParseError};
use scpm_graph::snapshot::{self, load_snapshot, save_snapshot, SnapshotError};
use scpm_graph::AttributedGraph;

fn mine(g: &AttributedGraph) -> ScpmResult {
    let params = ScpmParams::new(8, 0.5, 6)
        .with_eps_min(0.1)
        .with_top_k(2)
        .with_max_attrs(2);
    Scpm::new(g, params).run()
}

/// Attribute ids may be permuted by serialization; compare by name.
fn canonical_named(g: &AttributedGraph, r: &ScpmResult) -> Vec<(Vec<String>, usize, i64)> {
    let mut v: Vec<(Vec<String>, usize, i64)> = r
        .reports
        .iter()
        .filter(|rep| rep.qualified)
        .map(|rep| {
            let mut names: Vec<String> = rep
                .attrs
                .iter()
                .map(|&a| g.attr_name(a).to_string())
                .collect();
            names.sort();
            (names, rep.support, (rep.epsilon * 1e9).round() as i64)
        })
        .collect();
    v.sort();
    v
}

#[test]
fn text_roundtrip_preserves_mining_results() {
    let dataset = dblp_like(0.005, 19);
    let g = &dataset.graph;
    let dir = std::env::temp_dir().join("scpm_it_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.txt");
    save_attributed(g, &path).unwrap();
    let g2 = load_attributed(&path).unwrap();
    assert_eq!(g2.num_vertices(), g.num_vertices());
    assert_eq!(g2.num_edges(), g.num_edges());
    assert_eq!(
        canonical_named(g, &mine(g)),
        canonical_named(&g2, &mine(&g2))
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_roundtrip_preserves_mining_results() {
    let dataset = dblp_like(0.005, 23);
    let g = &dataset.graph;
    let dir = std::env::temp_dir().join("scpm_it_snap");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.snap");
    save_snapshot(g, &path).unwrap();
    let g2 = load_snapshot(&path).unwrap();
    assert_eq!(g2.num_vertices(), g.num_vertices());
    assert_eq!(g2.num_edges(), g.num_edges());
    assert_eq!(g2.num_attributes(), g.num_attributes());
    assert_eq!(
        canonical_named(g, &mine(g)),
        canonical_named(&g2, &mine(&g2))
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn snapshot_is_much_smaller_or_equal_and_identical_on_reload() {
    let dataset = dblp_like(0.005, 29);
    let g = &dataset.graph;
    let text = {
        let mut buf = Vec::new();
        scpm_graph::io::write_attributed(g, &mut buf).unwrap();
        buf
    };
    let snap = snapshot::encode(g);
    // Binary form carries the same information; it should not blow up
    // relative to text (names dominate both).
    assert!(
        snap.len() < text.len() * 2,
        "snapshot {} vs text {}",
        snap.len(),
        text.len()
    );
    let g2 = snapshot::decode(snap).unwrap();
    for v in g.graph().vertices() {
        assert_eq!(g.attributes_of(v), g2.attributes_of(v));
    }
}

#[test]
fn corrupted_text_inputs_fail_with_line_numbers() {
    let cases: &[(&str, usize)] = &[
        ("v 3\ne 0 9\n", 2),   // endpoint out of range
        ("v 3\na 9 red\n", 2), // vertex out of range
        ("v x\n", 1),          // bad count
        ("v 3\nv 4\n", 2),     // duplicate header
        ("e 0 1\n", 1),        // edge before header
        ("v 3\nz 0 1\n", 2),   // unknown directive
    ];
    for (text, line) in cases {
        match read_attributed(text.as_bytes()) {
            Err(ParseError::Syntax { line: l, .. }) => {
                assert_eq!(l, *line, "wrong line for {text:?}")
            }
            other => panic!("{text:?} gave {other:?}"),
        }
    }
}

#[test]
fn corrupted_snapshots_fail_closed() {
    use scpm_graph::snapshot::layout::{self, Section};

    let g = dblp_like(0.003, 31).graph;
    let raw = snapshot::encode(&g).to_vec();
    // Locate the csr-edges section through the v3 directory.
    let dir_at = layout::DIR_OFFSET + Section::CsrEdges.index() * layout::DIR_ENTRY_LEN;
    let e_off = u64::from_le_bytes(raw[dir_at + 8..dir_at + 16].try_into().unwrap()) as usize;
    let e_len = u64::from_le_bytes(raw[dir_at + 16..dir_at + 24].try_into().unwrap()) as usize;
    // Flip an endpoint in the middle of the edge section: the section
    // checksum catches it before the structural pass even looks.
    let mut bad = raw.clone();
    let off = e_off + (e_len / 8) * 4;
    bad[off..off + 4].copy_from_slice(&[0xFF; 4]);
    assert!(matches!(
        snapshot::decode(bytes::Bytes::from(bad.clone())),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
    // Even with the section checksum (and the header checksum that seals
    // the directory) forged to match, the structural layer still
    // range-checks the now-invalid edge endpoint.
    let sum = snapshot::fnv1a64(&bad[e_off..e_off + e_len]).to_le_bytes();
    bad[dir_at + 24..dir_at + 32].copy_from_slice(&sum);
    let mut h = snapshot::Fnv1a64::new();
    h.update(&bad[..layout::HEADER_CHECKSUM_OFFSET]);
    h.update(&bad[layout::DIR_OFFSET..layout::DIR_OFFSET + layout::DIR_LEN]);
    let at = layout::HEADER_CHECKSUM_OFFSET;
    bad[at..at + 8].copy_from_slice(&h.finish().to_le_bytes());
    assert!(matches!(
        snapshot::decode(bytes::Bytes::from(bad)),
        Err(SnapshotError::OutOfRange { .. })
    ));
    // Truncate anywhere: error, never panic (sampled; the graph proptests
    // sweep every cut on a smaller fixture).
    for cut in [0, 10, 13, raw.len() / 2, raw.len() - 1] {
        assert!(snapshot::decode(bytes::Bytes::from(raw[..cut].to_vec())).is_err());
    }
}

#[test]
fn stale_and_foreign_snapshots_fail_closed() {
    let g = dblp_like(0.003, 31).graph;
    // A version-1 file (pre-checksum layout) is stale, not silently read.
    let mut stale = snapshot::encode(&g).to_vec();
    stale[8..12].copy_from_slice(&1u32.to_le_bytes());
    assert!(matches!(
        snapshot::decode(bytes::Bytes::from(stale)),
        Err(SnapshotError::BadVersion(1))
    ));
    // Foreign files of any size fail at the magic.
    for foreign in [
        &b"GRPH0001 some other tool's graph dump format"[..],
        &b"v 3\ne 0 1\n"[..],
        &[0xFFu8; 128][..],
    ] {
        assert!(matches!(
            snapshot::decode(bytes::Bytes::from(foreign.to_vec())),
            Err(SnapshotError::BadMagic)
        ));
    }
}

#[test]
fn interchange_parser_error_paths() {
    use scpm_graph::io::RawSource;
    // Truncated edge line.
    let mut s = RawSource::new();
    let err = s.read_edge_list("0 1\n2\n".as_bytes()).unwrap_err();
    assert!(matches!(err, ParseError::Syntax { line: 2, .. }), "{err}");
    // Duplicate vertex row in an attribute table.
    let mut s = RawSource::new();
    let err = s
        .read_attr_table("0 db\n1 ml\n0 ir\n".as_bytes())
        .unwrap_err();
    assert!(matches!(err, ParseError::Syntax { line: 3, .. }), "{err}");
    assert!(err.to_string().contains("duplicate"), "{err}");
    // Unterminated quoted field.
    let mut s = RawSource::new();
    let err = s.read_attr_table("0 \"unclosed\n".as_bytes()).unwrap_err();
    assert!(err.to_string().contains("unterminated"), "{err}");
    // Unknown vertex references surface through strict ingest (exercised
    // end-to-end in tests/ingest_pipeline.rs).
}

#[test]
fn missing_files_surface_io_errors() {
    assert!(matches!(
        load_attributed("/nonexistent/scpm/graph.txt"),
        Err(ParseError::Io(_))
    ));
    assert!(matches!(
        load_snapshot("/nonexistent/scpm/graph.snap"),
        Err(SnapshotError::Io(_))
    ));
}
