//! Durable-serving integration suite: a `--data-dir` server must survive
//! an unclean exit with nothing lost — every acknowledged `POST /update`
//! is journaled ahead of the in-memory swap, so a restart replays the
//! journal into a byte-identical catalog without a recording mine.
//!
//! The per-fault-point atomicity proof lives in `tests/crash_recovery.rs`;
//! this suite exercises the server-level protocol: seed → update → abort
//! → open, graceful-stop checkpointing, the `durability` response and
//! stats surfaces, and the seed/recover guard rails.

use std::path::PathBuf;
use std::time::Duration;

use scpm_core::ScpmParams;
use scpm_graph::figure1::figure1;
use scpm_serve::{Client, DurabilityConfig, ServeConfig, Server};

fn table1_params() -> ScpmParams {
    ScpmParams::new(3, 0.6, 4)
        .with_eps_min(0.5)
        .with_top_k(5)
        .with_max_attrs(3)
}

fn tdir(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("scpm_serve_durability_{name}"));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn config(dir: &PathBuf, checkpoint_every: u64) -> ServeConfig {
    ServeConfig::new(table1_params(), 2)
        .with_read_timeout(Duration::from_secs(2))
        .with_durability(DurabilityConfig::new(dir).with_checkpoint_every(checkpoint_every))
}

const DELTA_1: &str = r#"{"add_vertices":1,"edges":[[0,11]],"attrs":[[11,"A"]]}"#;
const DELTA_2: &str = r#"{"edges":[[1,11]]}"#;

#[test]
fn unclean_exit_replays_the_journal_into_an_identical_catalog() {
    let dir = tdir("abort");
    // checkpoint_every=100: nothing checkpoints after the seed, so the
    // reopened server must recover purely by journal replay.
    let server = Server::start(figure1(), config(&dir, 100)).unwrap();
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(5));
    for (body, seq) in [(DELTA_1, 1u64), (DELTA_2, 2u64)] {
        let response = client.post("/update", body).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let result = response.result().unwrap();
        let durability = result.get("durability").expect("durability section");
        assert_eq!(
            durability.get("journaled_seq").and_then(|j| j.as_u64()),
            Some(seq)
        );
        assert_eq!(
            durability
                .get("checkpoint")
                .and_then(|c| c.as_str())
                .map(str::to_owned),
            Some("deferred".into())
        );
    }
    let before = server.catalog().full_json().render();
    // Unclean exit: no final checkpoint, exactly what a crash leaves.
    server.abort();

    let (server, report) = Server::open(config(&dir, 100)).unwrap();
    assert_eq!(report.generation, 2);
    assert_eq!(report.checkpoint_generation, 0);
    assert_eq!(report.replayed_deltas, 2);
    assert!(report.memo_replayed, "{:?}", report.memo_note);
    assert_eq!(report.snapshots_skipped, 0);
    let after = server.catalog().full_json().render();
    assert_eq!(before, after, "recovered catalog must be byte-identical");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_stop_checkpoints_so_reopen_replays_nothing() {
    let dir = tdir("graceful");
    let server = Server::start(figure1(), config(&dir, 100)).unwrap();
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(5));
    assert_eq!(client.post("/update", DELTA_1).unwrap().status, 200);
    let before = server.catalog().full_json().render();
    // Graceful exit: the shutdown checkpoint folds the journal away.
    server.stop();

    let (server, report) = Server::open(config(&dir, 100)).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.checkpoint_generation, 1, "shutdown checkpoint taken");
    assert_eq!(report.replayed_deltas, 0);
    assert!(report.memo_replayed, "{:?}", report.memo_note);
    assert_eq!(server.catalog().full_json().render(), before);
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn periodic_checkpoint_fires_on_the_configured_interval() {
    let dir = tdir("periodic");
    let server = Server::start(figure1(), config(&dir, 2)).unwrap();
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(5));
    let first = client.post("/update", DELTA_1).unwrap();
    let second = client.post("/update", DELTA_2).unwrap();
    let status = |response: &scpm_serve::Response| {
        response
            .result()
            .unwrap()
            .get("durability")
            .and_then(|d| d.get("checkpoint"))
            .and_then(|c| c.as_str())
            .map(str::to_owned)
    };
    assert_eq!(status(&first), Some("deferred".into()));
    assert_eq!(status(&second), Some("written".into()));
    // /stats reflects the durable position.
    let stats = client.get("/stats").unwrap();
    let durability = stats.result().unwrap().get("durability").cloned().unwrap();
    assert_eq!(
        durability.get("generation").and_then(|j| j.as_u64()),
        Some(2)
    );
    assert_eq!(
        durability.get("last_checkpoint").and_then(|j| j.as_u64()),
        Some(2)
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn in_memory_updates_report_no_durability_section() {
    let server = Server::start(
        figure1(),
        ServeConfig::new(table1_params(), 2).with_read_timeout(Duration::from_secs(2)),
    )
    .unwrap();
    let client = Client::new(server.addr()).with_timeout(Duration::from_secs(5));
    let response = client.post("/update", DELTA_1).unwrap();
    assert_eq!(response.status, 200);
    assert!(response.result().unwrap().get("durability").is_none());
    server.stop();
}

#[test]
fn seeding_an_initialized_directory_is_refused() {
    let dir = tdir("reseed");
    let server = Server::start(figure1(), config(&dir, 100)).unwrap();
    server.stop();
    let err = match Server::start(figure1(), config(&dir, 100)) {
        Ok(_) => panic!("reseeding an initialized directory must fail"),
        Err(e) => e,
    };
    assert!(err.contains("already initialized"), "{err}");
    // The refusal left the directory recoverable.
    let (server, report) = Server::open(config(&dir, 100)).unwrap();
    assert_eq!(report.generation, 0);
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_without_durability_config_is_refused() {
    let err = match Server::open(ServeConfig::new(table1_params(), 2)) {
        Ok(_) => panic!("open without a data dir must fail"),
        Err(e) => e,
    };
    assert!(err.contains("durability"), "{err}");
}
