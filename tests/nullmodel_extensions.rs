//! Cross-model null-model checks on realistic graphs: the binomial bound
//! of Theorem 2, the exact hypergeometric variant, the simulation
//! estimator and the empirical p-values must relate the way the theory
//! says.

use scpm_core::{
    AnalyticalModel, ExactModel, ExpectedCorrelation, Scpm, ScpmParams, SimulationModel,
};
use scpm_datasets::dblp_like;
use scpm_quasiclique::QcConfig;

#[test]
fn three_models_relate_correctly_on_dblp_like() {
    let dataset = dblp_like(0.01, 13);
    let g = dataset.graph.graph();
    let cfg = QcConfig::new(0.5, 5);
    let analytical = AnalyticalModel::new(g, &cfg);
    let exact = ExactModel::new(g, &cfg);
    let sim = SimulationModel::new(g, cfg, 15, 9);
    let n = g.num_vertices();
    // Stay in the paper's σ ≲ 10% regime: far beyond it the simulation
    // spends its time disproving membership for most of the graph (slow
    // in debug builds) without changing what this test checks.
    for frac in [40usize, 20, 10] {
        let sigma = n / frac;
        let a = analytical.expected(sigma);
        let e = exact.expected(sigma);
        let s = sim.expected(sigma);
        // Degree feasibility is necessary, not sufficient: both analytical
        // models upper-bound the simulated coverage (up to noise).
        let noise = 3.0 * s.std_dev / (s.runs as f64).sqrt() + 1e-9;
        assert!(
            s.mean <= a + noise,
            "σ={sigma}: sim {} > binomial {a}",
            s.mean
        );
        assert!(s.mean <= e + noise, "σ={sigma}: sim {} > exact {e}", s.mean);
        // Binomial and hypergeometric agree to first order away from σ≈n.
        assert!((a - e).abs() < 0.05, "σ={sigma}: binomial {a} vs exact {e}");
    }
}

#[test]
fn models_are_monotone_on_dataset_graph() {
    let dataset = dblp_like(0.005, 17);
    let g = dataset.graph.graph();
    let cfg = QcConfig::new(0.5, 5);
    let models: Vec<Box<dyn ExpectedCorrelation>> = vec![
        Box::new(AnalyticalModel::new(g, &cfg)),
        Box::new(ExactModel::new(g, &cfg)),
    ];
    let n = g.num_vertices();
    for (i, model) in models.iter().enumerate() {
        let mut prev = -1.0;
        for step in 1..=10 {
            let sigma = n * step / 10;
            let e = model.expected_epsilon(sigma);
            assert!(e >= prev - 1e-12, "model {i} not monotone at σ={sigma}");
            prev = e;
        }
    }
}

#[test]
fn planted_topics_get_small_p_values() {
    let dataset = dblp_like(0.01, 21);
    let graph = &dataset.graph;
    let cfg = QcConfig::new(0.5, 5);
    let params = ScpmParams::new(8, 0.5, 5)
        .with_eps_min(0.1)
        .with_top_k(1)
        .with_max_attrs(2);
    let scpm = Scpm::new(graph, params);
    let result = scpm.run();
    let Some(best) = result.top_by_delta(1).first().copied().cloned() else {
        panic!("expected at least one qualifying attribute set");
    };
    let runs = 29;
    let sim = SimulationModel::new(graph.graph(), cfg, runs, 5);
    let p = sim.p_value(best.epsilon, best.support);
    // The best set's coverage must beat every random draw: p = 1/(runs+1).
    assert!(
        (p - 1.0 / (runs as f64 + 1.0)).abs() < 1e-12,
        "top-δ attribute set should be extreme under the null (p = {p})"
    );
    // A zero-ε set is never significant.
    let p_null = sim.p_value(0.0, best.support);
    assert!((p_null - 1.0).abs() < 1e-12);
}

#[test]
fn delta_exact_at_least_delta_lb_when_binomial_oversmears() {
    // At σ = n the binomial model smears degree mass below z while the
    // exact model concentrates: max-exp(n) ≥ exact-exp(n) is not
    // guaranteed in general, but both must coincide with the degree tail
    // at σ = n.
    let dataset = dblp_like(0.005, 3);
    let g = dataset.graph.graph();
    let cfg = QcConfig::new(0.5, 5);
    let analytical = AnalyticalModel::new(g, &cfg);
    let exact = ExactModel::new(g, &cfg);
    let n = g.num_vertices();
    let z = cfg.min_required_degree();
    let tail = scpm_graph::degree::DegreeDistribution::from_graph(g).tail(z);
    assert!((exact.expected(n) - tail).abs() < 1e-9, "exact at σ=n");
    assert!(
        (analytical.expected(n) - tail).abs() < 1e-6,
        "binomial at σ=n"
    );
}
