//! Guards the workspace wiring itself: the `scpm_suite::prelude` façade
//! must re-export every layer, and the re-exports must be the same types
//! the member crates define (not parallel copies).

use scpm_suite::prelude::*;

#[test]
fn figure1_has_eleven_vertices() {
    let g = figure1();
    assert_eq!(g.num_vertices(), 11);
    assert_eq!(g.num_attributes(), 5);
}

#[test]
fn prelude_reexports_are_the_member_crate_types() {
    // Passing a prelude-built value to a fully-qualified member-crate API
    // only compiles if the re-export is the same type.
    let g: scpm_graph::AttributedGraph = figure1();
    let params: scpm_core::ScpmParams = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
    let result = scpm_core::Scpm::new(&g, params).run();
    assert_eq!(result.patterns.len(), 7);
}

#[test]
fn prelude_covers_every_layer() {
    // graph
    let mut b = AttributedGraphBuilder::new(3);
    let a0 = b.intern_attr("x");
    b.add_edge(0, 1);
    b.add_attr(0, a0);
    let g = b.build();
    assert_eq!(g.num_vertices(), 3);
    // quasiclique
    let cfg = QcConfig::new(0.5, 2);
    assert!(cfg.gamma > 0.0);
    let _ = SearchOrder::Dfs;
    // datasets
    let d = small_dblp_like(0.01, 7);
    assert!(d.graph.num_vertices() > 0);
    // core (re-exported via `scpm_core::*`)
    let _ = ScpmParams::new(2, 0.5, 3);
}

#[test]
fn prelude_exposes_parallel_driver_and_null_cache() {
    // The work-stealing driver, its configuration, and the shared
    // null-model cache are part of the façade surface.
    let g = figure1();
    let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
    let serial = Scpm::new(&g, params.clone()).run();
    let config = ParallelConfig::new(2).with_split_depth(DEFAULT_SPLIT_DEPTH);
    let parallel = run_parallel_with(&g, params.clone(), &config);
    assert_eq!(serial.reports, parallel.reports);

    let cache = std::sync::Arc::new(NullModelCache::new());
    let cached = Scpm::with_cache(&g, params, cache.clone()).run();
    assert_eq!(serial.reports, cached.reports);
    assert!(!cache.is_empty());
}
