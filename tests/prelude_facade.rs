//! Guards the workspace wiring itself: the `scpm_suite::prelude` façade
//! must re-export every layer, and the re-exports must be the same types
//! the member crates define (not parallel copies).

use scpm_suite::prelude::*;

#[test]
fn figure1_has_eleven_vertices() {
    let g = figure1();
    assert_eq!(g.num_vertices(), 11);
    assert_eq!(g.num_attributes(), 5);
}

#[test]
fn prelude_reexports_are_the_member_crate_types() {
    // Passing a prelude-built value to a fully-qualified member-crate API
    // only compiles if the re-export is the same type.
    let g: scpm_graph::AttributedGraph = figure1();
    let params: scpm_core::ScpmParams = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
    let result = scpm_core::Scpm::new(&g, params).run();
    assert_eq!(result.patterns.len(), 7);
}

#[test]
fn prelude_covers_every_layer() {
    // graph
    let mut b = AttributedGraphBuilder::new(3);
    let a0 = b.intern_attr("x");
    b.add_edge(0, 1);
    b.add_attr(0, a0);
    let g = b.build();
    assert_eq!(g.num_vertices(), 3);
    // quasiclique
    let cfg = QcConfig::new(0.5, 2);
    assert!(cfg.gamma > 0.0);
    let _ = SearchOrder::Dfs;
    // datasets
    let d = small_dblp_like(0.01, 7);
    assert!(d.graph.num_vertices() > 0);
    // core (re-exported via `scpm_core::*`)
    let _ = ScpmParams::new(2, 0.5, 3);
}
