//! Graph-analysis modules against the dataset generators: planted
//! communities must be visible to the k-core, clustering and component
//! machinery in the way the paper's real networks motivate.

use scpm_datasets::{dblp_like, DatasetSpec};
use scpm_graph::cluster::clustering;
use scpm_graph::components::Components;
use scpm_graph::generators::watts_strogatz;
use scpm_graph::kcore::CoreDecomposition;
use scpm_graph::stats::GraphSummary;
use scpm_graph::traversal::{bfs_distances, UNREACHABLE};

#[test]
fn planted_communities_live_in_deep_cores() {
    let dataset = dblp_like(0.01, 7);
    let g = dataset.graph.graph();
    let cores = CoreDecomposition::of(g);
    // A community of s ≥ 10 vertices with p_in ≈ 0.62 has expected
    // internal degree ≈ 0.62·(s−1) ≥ 5; its members' core numbers must
    // comfortably beat the background (BA with m = 2 gives degeneracy 2).
    let mut deep = 0usize;
    for members in &dataset.communities {
        let median = {
            let mut cs: Vec<u32> = members.iter().map(|&v| cores.core[v as usize]).collect();
            cs.sort_unstable();
            cs[cs.len() / 2]
        };
        if median >= 4 {
            deep += 1;
        }
    }
    assert!(
        deep * 10 >= dataset.communities.len() * 8,
        "only {deep} of {} communities are core-visible",
        dataset.communities.len()
    );
}

#[test]
fn dataset_clustering_beats_degree_matched_randomization() {
    let dataset = dblp_like(0.01, 9);
    let g = dataset.graph.graph();
    let planted = clustering(g);
    // A Watts–Strogatz graph at β = 1 is a degree-homogeneous random
    // baseline with similar mean degree.
    let mean_deg = (2 * g.num_edges()) as f64 / g.num_vertices() as f64;
    let k = ((mean_deg / 2.0).round() as usize * 2).max(2);
    let baseline = clustering(&watts_strogatz(g.num_vertices(), k, 1.0, 99));
    assert!(
        planted.average_local > 3.0 * baseline.average_local,
        "planted clustering {} vs randomized {}",
        planted.average_local,
        baseline.average_local
    );
}

#[test]
fn generated_graphs_are_mostly_connected() {
    let dataset = dblp_like(0.02, 11);
    let g = dataset.graph.graph();
    let comp = Components::of(g);
    let largest = comp.sizes().into_iter().max().unwrap();
    // Preferential attachment keeps the background connected; planted
    // edges only add to it.
    assert!(
        largest * 10 >= g.num_vertices() * 9,
        "largest component {largest} of {}",
        g.num_vertices()
    );
}

#[test]
fn bfs_agrees_with_components_on_all_specs() {
    for (spec, scale) in [
        (DatasetSpec::dblp(), 0.004),
        (DatasetSpec::lastfm(), 0.002),
        (DatasetSpec::citeseer(), 0.002),
    ] {
        let dataset = scpm_datasets::generate(&spec, scale, 1);
        let g = dataset.graph.graph();
        let comp = Components::of(g);
        let dist = bfs_distances(g, 0);
        for v in g.vertices() {
            assert_eq!(
                comp.same(0, v),
                dist[v as usize] != UNREACHABLE,
                "{}: vertex {v}",
                dataset.name
            );
        }
    }
}

#[test]
fn summary_is_internally_consistent_on_dataset() {
    let dataset = dblp_like(0.01, 13);
    let s = GraphSummary::of_attributed(&dataset.graph);
    assert_eq!(s.vertices, dataset.graph.num_vertices());
    assert_eq!(s.edges, dataset.graph.num_edges());
    assert!(s.largest_component <= s.vertices);
    assert!(s.components >= 1);
    assert!(s.degeneracy as usize <= s.max_degree);
    assert!((0.0..=1.0).contains(&s.transitivity));
    assert!((0.0..=1.0).contains(&s.average_clustering));
    assert!(s.mean_attrs_per_vertex > 0.0);
    // Degree sum identity.
    assert!((s.mean_degree - 2.0 * s.edges as f64 / s.vertices as f64).abs() < 1e-9);
}
