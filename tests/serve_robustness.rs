//! Robustness suite for `scpm serve`: hostile and malformed input must
//! produce structured JSON errors — never a panic, never a wedged worker.
//!
//! Directed cases cover every limit in the HTTP reader (oversized request
//! line, header flood, giant body, bad UTF-8, unsupported framing), the
//! service limits (connection cap → deterministic 503, blocked-write
//! timeout), and the parameter validators behind `POST /mine`. A proptest
//! fuzzer then throws
//! random byte soup and randomized HTTP-shaped requests at a shared live
//! server. After *every* hostile exchange the server must still answer
//! `GET /health` with the byte-exact golden — the "never wedged" check.
//!
//! Case count honors `PROPTEST_CASES` (CI pins it; default 256).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use scpm_core::ScpmParams;
use scpm_graph::figure1::figure1;
use scpm_serve::{Client, ServeConfig, Server};

const HEALTH_GOLDEN: &str = r#"{"result":{"status":"ok"},"error":null,"generation":0}"#;

fn table1_params() -> ScpmParams {
    ScpmParams::new(3, 0.6, 4)
        .with_eps_min(0.5)
        .with_top_k(5)
        .with_max_attrs(3)
}

/// One shared server for the whole suite (started on first use, torn down
/// with the test process). A short read timeout keeps trickle-style
/// attacks from slowing the run down.
fn server() -> &'static Server {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER.get_or_init(|| {
        let config =
            ServeConfig::new(table1_params(), 2).with_read_timeout(Duration::from_millis(500));
        Server::start(figure1(), config).expect("server failed to start")
    })
}

fn client() -> Client {
    Client::new(server().addr()).with_timeout(Duration::from_secs(5))
}

/// The wedge detector: the server must still answer a clean request.
fn assert_still_healthy(context: &str) {
    let response = client().get("/health").unwrap_or_else(|e| {
        panic!("server wedged after {context}: {e}");
    });
    assert_eq!(response.status, 200, "after {context}");
    assert_eq!(response.body, HEALTH_GOLDEN, "after {context}");
}

/// Sends raw bytes, expects a response with `status` and an error envelope
/// carrying `code`, and verifies the server survived.
fn assert_raw_error(payload: &[u8], status: u16, code: &str, context: &str) {
    let raw = client().raw(payload).expect(context);
    let text = String::from_utf8_lossy(&raw);
    assert!(
        text.starts_with(&format!("HTTP/1.1 {status} ")),
        "{context}: expected {status}, got {text:?}"
    );
    assert!(
        text.contains(&format!("\"code\":\"{code}\"")),
        "{context}: expected code {code}, got {text:?}"
    );
    assert_still_healthy(context);
}

#[test]
fn oversized_request_line_is_431() {
    let mut payload = b"GET /".to_vec();
    payload.extend(std::iter::repeat_n(b'a', 9 * 1024));
    payload.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    assert_raw_error(&payload, 431, "line_too_long", "oversized request line");
}

#[test]
fn header_flood_is_431() {
    let mut payload = b"GET /health HTTP/1.1\r\n".to_vec();
    for i in 0..100 {
        payload.extend_from_slice(format!("X-Flood-{i}: x\r\n").as_bytes());
    }
    payload.extend_from_slice(b"\r\n");
    assert_raw_error(&payload, 431, "too_many_headers", "header flood");
}

#[test]
fn declared_giant_body_is_413() {
    let payload = b"POST /mine HTTP/1.1\r\nContent-Length: 2000000\r\n\r\n";
    assert_raw_error(payload, 413, "payload_too_large", "2 MB declared body");
}

#[test]
fn transfer_encoding_is_501() {
    let payload = b"POST /mine HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    assert_raw_error(payload, 501, "not_implemented", "chunked transfer");
}

#[test]
fn unsupported_http_version_is_505() {
    let payload = b"GET /health HTTP/2.0\r\n\r\n";
    assert_raw_error(
        payload,
        505,
        "http_version_not_supported",
        "HTTP/2.0 request",
    );
}

#[test]
fn bad_utf8_request_line_is_400() {
    let payload = b"GET /he\xff\xfealth HTTP/1.1\r\n\r\n";
    assert_raw_error(payload, 400, "bad_request", "non-UTF-8 request line");
}

#[test]
fn bad_content_length_is_400() {
    let payload = b"POST /mine HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
    assert_raw_error(payload, 400, "bad_request", "non-numeric Content-Length");
}

#[test]
fn malformed_request_lines_are_400() {
    for payload in [
        &b"GARBAGE\r\n\r\n"[..],
        &b"GET /health\r\n\r\n"[..],
        &b"GET /health HTTP/1.1 EXTRA\r\n\r\n"[..],
        &b"G=T /health HTTP/1.1\r\n\r\n"[..],
        &b"\r\nGET /health HTTP/1.1\r\n\r\n"[..],
    ] {
        assert_raw_error(
            payload,
            400,
            "bad_request",
            &format!("malformed line {payload:?}"),
        );
    }
}

#[test]
fn truncated_requests_do_not_wedge() {
    // Half-closed mid-request: the server sees EOF and drops the
    // connection — any response (or none) is acceptable, a wedge is not.
    for payload in [
        &b""[..],
        &b"GET"[..],
        &b"GET /health HTTP/1.1\r\n"[..],
        &b"POST /mine HTTP/1.1\r\nContent-Length: 10\r\n\r\n{"[..],
    ] {
        let _ = client().raw(payload);
        assert_still_healthy(&format!("truncated request {payload:?}"));
    }
}

#[test]
fn slow_loris_times_out_without_wedging() {
    // Keep the write side open (no half-close) and send nothing more: the
    // server's read timeout must fire and release the worker.
    let mut stream = TcpStream::connect(server().addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(b"GET /hea").unwrap();
    let mut response = Vec::new();
    stream.read_to_end(&mut response).unwrap();
    let text = String::from_utf8_lossy(&response);
    assert!(
        text.starts_with("HTTP/1.1 408 "),
        "expected 408 after read timeout, got {text:?}"
    );
    assert!(text.contains("\"code\":\"timeout\""), "{text:?}");
    assert_still_healthy("slow-loris connection");
}

#[test]
fn connections_beyond_the_cap_get_a_deterministic_503() {
    // Dedicated server: two workers but a single admission slot.
    let config = ServeConfig::new(table1_params(), 2)
        .with_read_timeout(Duration::from_secs(2))
        .with_max_connections(1);
    let server = Server::start(figure1(), config).expect("start capped server");

    // Occupy the slot with a keep-alive connection: once its response is
    // fully read, the worker is parked in the next read, still admitted.
    let mut holder = TcpStream::connect(server.addr()).unwrap();
    holder
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    holder.write_all(b"GET /health HTTP/1.1\r\n\r\n").unwrap();
    let mut seen = Vec::new();
    let mut buf = [0u8; 4096];
    while !String::from_utf8_lossy(&seen).contains(HEALTH_GOLDEN) {
        let n = holder.read(&mut buf).expect("holder read");
        assert!(n > 0, "holder connection closed early: {seen:?}");
        seen.extend_from_slice(&buf[..n]);
    }

    // The slot is taken: the next connection is refused, deterministically.
    let refused = Client::new(server.addr())
        .with_timeout(Duration::from_secs(5))
        .get("/health")
        .expect("refused connection still gets a response");
    assert_eq!(refused.status, 503, "{}", refused.body);
    assert!(
        refused.body.contains("\"code\":\"saturated\""),
        "{}",
        refused.body
    );

    // Closing the holder frees the slot; the server must admit again.
    drop(holder);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if let Ok(response) = Client::new(server.addr())
            .with_timeout(Duration::from_secs(1))
            .get("/health")
        {
            if response.status == 200 {
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slot never freed after the holder closed"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.stop();
}

#[test]
fn blocked_response_writes_time_out_and_free_the_worker() {
    // Single worker, short write timeout: a client that floods pipelined
    // requests and never reads a byte fills both socket buffers until the
    // server's response write blocks. The write timeout must fire and
    // release the worker rather than wedge the server forever.
    let config = ServeConfig::new(table1_params(), 1)
        .with_read_timeout(Duration::from_millis(500))
        .with_write_timeout(Duration::from_millis(200));
    let server = Server::start(figure1(), config).expect("start single-worker server");

    let mut flood = TcpStream::connect(server.addr()).unwrap();
    flood
        .set_write_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    // Stop once our own send blocks: at that point the server has stopped
    // reading, which means its write side is already stalled.
    for _ in 0..100_000 {
        if flood.write_all(b"GET /catalog HTTP/1.1\r\n\r\n").is_err() {
            break;
        }
    }

    // With `flood` still open and unread, the worker must recover via its
    // write timeout and serve fresh connections again.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(response) = Client::new(server.addr())
            .with_timeout(Duration::from_secs(1))
            .get("/health")
        {
            if response.status == 200 && response.body == HEALTH_GOLDEN {
                break;
            }
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker never recovered from a blocked response write"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(flood);
    server.stop();
}

#[test]
fn invalid_mine_parameters_are_422_and_never_panic() {
    let client = client();
    // Each body hits a different validator; all must return a structured
    // 422 without disturbing the generation-0 catalog.
    for (body, fragment) in [
        (r#"{"gamma":0}"#, "`gamma` must be in (0, 1]"),
        (r#"{"gamma":1.5}"#, "`gamma` must be in (0, 1]"),
        (r#"{"gamma":"high"}"#, "`gamma` must be a finite number"),
        (r#"{"sigma_min":0}"#, "`sigma_min` must be at least 1"),
        (
            r#"{"sigma_min":-3}"#,
            "`sigma_min` must be a non-negative integer",
        ),
        (r#"{"min_size":0}"#, "`min_size` must be at least 1"),
        (r#"{"eps_min":1.5}"#, "`eps_min` must be in [0, 1]"),
        (r#"{"eps_min":-0.1}"#, "`eps_min` must be in [0, 1]"),
        (r#"{"delta_min":-1}"#, "`delta_min` must be non-negative"),
        (r#"{"top_k":0}"#, "`top_k` must be at least 1"),
        (
            r#"{"min_attrs":3,"max_attrs":2}"#,
            "`max_attrs` (2) must be at least `min_attrs` (3)",
        ),
        (r#"{"gamm":0.5}"#, "unknown parameter `gamm`"),
    ] {
        let response = client.post("/mine", body).expect(body);
        assert_eq!(response.status, 422, "{body} → {}", response.body);
        assert!(
            response.body.contains("\"code\":\"invalid_parameter\""),
            "{body} → {}",
            response.body
        );
        assert!(
            response.body.contains(fragment),
            "{body} → {}",
            response.body
        );
    }
    // Structurally invalid bodies are 400s.
    for body in ["[1,2,3]", "not json", "{\"gamma\":0.5", "\u{1f980}"] {
        let response = client.post("/mine", body).expect(body);
        assert_eq!(response.status, 400, "{body} → {}", response.body);
    }
    // Bad UTF-8 body with a correct Content-Length.
    let payload = b"POST /mine HTTP/1.1\r\nContent-Length: 4\r\n\r\n\xff\xfe\xfd\xfc";
    assert_raw_error(payload, 400, "bad_request", "non-UTF-8 mine body");
    // The catalog was never replaced by any of the rejected bodies.
    let response = client.get("/catalog").unwrap();
    assert_eq!(response.generation().unwrap(), 0);
    assert_still_healthy("invalid mine parameters");
}

/// Fragments the structured fuzzer splices into HTTP-shaped requests.
fn request_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("GET".to_string()),
        Just("POST".to_string()),
        Just("PATCH".to_string()),
        Just("G\u{0}T".to_string()),
        Just("/health".to_string()),
        Just("/catalog".to_string()),
        Just("/patterns?attrs=A,%ZZ".to_string()),
        Just("/top?k=99999999999999999999".to_string()),
        Just("/%00%ff".to_string()),
        Just("HTTP/1.1".to_string()),
        Just("HTTP/9.9".to_string()),
        Just("Content-Length: -1".to_string()),
        Just("Content-Length: 18446744073709551616".to_string()),
        Just("Connection: close".to_string()),
        Just(": no name".to_string()),
        Just("\r\n".to_string()),
        Just(" ".to_string()),
        Just("".to_string()),
    ]
}

proptest! {
    /// Random byte soup: whatever happens on the wire, the server answers
    /// the next clean request.
    #[test]
    fn random_bytes_never_wedge_the_server(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = client().raw(&bytes);
        let response = client().get("/health").map_err(|e| {
            proptest::test_runner::TestCaseError::fail(format!(
                "server wedged after {} fuzz bytes: {e}", bytes.len()
            ))
        })?;
        prop_assert_eq!(response.status, 200);
        prop_assert_eq!(response.body.as_str(), HEALTH_GOLDEN);
    }

    /// HTTP-shaped fuzz: random splices of plausible request fragments.
    /// These reach deeper into the parser than raw bytes (valid lines,
    /// weird combinations) and must be equally harmless.
    #[test]
    fn fuzzed_requests_never_wedge_the_server(
        parts in proptest::collection::vec(request_fragment(), 0..12),
        trailing_crlf in any::<bool>(),
    ) {
        let mut payload = parts.join(" ").into_bytes();
        if trailing_crlf {
            payload.extend_from_slice(b"\r\n\r\n");
        }
        let raw = client().raw(&payload);
        // Whatever came back (even nothing) must be a whole HTTP response
        // or silence — and the server must still be alive.
        if let Ok(bytes) = raw {
            if !bytes.is_empty() {
                prop_assert!(
                    bytes.starts_with(b"HTTP/1.1 "),
                    "non-HTTP bytes from server: {:?}",
                    String::from_utf8_lossy(&bytes)
                );
            }
        }
        let response = client().get("/health").map_err(|e| {
            proptest::test_runner::TestCaseError::fail(format!("server wedged: {e}"))
        })?;
        prop_assert_eq!(response.status, 200);
        prop_assert_eq!(response.body.as_str(), HEALTH_GOLDEN);
    }
}
