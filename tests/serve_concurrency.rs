//! Concurrency suite for `scpm serve`: reader threads hammer the catalog
//! endpoints while `POST /mine` re-mines and swaps generations underneath
//! them. The invariants under test:
//!
//! 1. **No torn reads** — every response body parses and is byte-identical
//!    to one of the two expected catalogs (never a mix).
//! 2. **Generation consistency** — the envelope's generation determines
//!    *which* catalog the response came from; body and generation always
//!    agree.
//! 3. **Post-swap byte-identity** — after the dust settles, the served
//!    catalog equals a fresh single-threaded batch `Scpm` run with the
//!    final parameters, byte for byte.
//!
//! The reader thread count comes from `SCPM_SERVE_TEST_THREADS`
//! (default 4), matching the CI serve end-to-end step.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use scpm_core::{Scpm, ScpmParams};
use scpm_graph::attributed::AttributedGraph;
use scpm_graph::figure1::figure1;
use scpm_serve::{Client, PatternCatalog, ServeConfig, Server};

/// Generation-parity scheme: even generations are mined with A, odd with B
/// (the writer overlays `eps_min` alternately, starting from gen 1 = B).
const EPS_A: f64 = 0.5;
const EPS_B: f64 = 0.0;

fn params(eps_min: f64) -> ScpmParams {
    ScpmParams::new(3, 0.6, 4)
        .with_eps_min(eps_min)
        .with_top_k(5)
        .with_max_attrs(3)
}

fn reader_threads() -> usize {
    std::env::var("SCPM_SERVE_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// The catalog JSON a fresh batch run with `params` would serve.
/// `full_json` excludes the generation, so the bytes depend only on the
/// parameters — that is exactly what makes cross-generation byte
/// comparison meaningful.
fn expected_catalog(graph: &AttributedGraph, params: &ScpmParams) -> String {
    let result = Scpm::new(graph, params.clone()).run();
    PatternCatalog::build(graph, params, result, 0)
        .full_json()
        .render()
}

#[test]
fn readers_never_observe_torn_catalogs_across_swaps() {
    let graph = figure1();
    let expected_a = expected_catalog(&graph, &params(EPS_A));
    let expected_b = expected_catalog(&graph, &params(EPS_B));
    assert_ne!(
        expected_a, expected_b,
        "the two parameter sets must produce distinguishable catalogs"
    );

    let server =
        Server::start(graph, ServeConfig::new(params(EPS_A), reader_threads() + 1)).unwrap();
    let addr = server.addr();
    let done = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let swaps_seen = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..reader_threads())
        .map(|_| {
            let done = Arc::clone(&done);
            let reads = Arc::clone(&reads);
            let swaps_seen = Arc::clone(&swaps_seen);
            let expected_a = expected_a.clone();
            let expected_b = expected_b.clone();
            std::thread::spawn(move || {
                let client = Client::new(addr);
                let mut last_generation = 0u64;
                while !done.load(Ordering::Acquire) {
                    let response = client.get("/catalog").expect("reader request failed");
                    assert_eq!(response.status, 200);
                    let generation = response.generation().expect("envelope generation");
                    let body = response.result().expect("envelope result").render();
                    // Invariant 1 + 2: the body is exactly the catalog of
                    // the generation the envelope claims — parity picks
                    // which parameter set mined it.
                    let expected = if generation.is_multiple_of(2) {
                        &expected_a
                    } else {
                        &expected_b
                    };
                    assert_eq!(
                        &body, expected,
                        "torn or mismatched catalog at generation {generation}"
                    );
                    if generation != last_generation {
                        swaps_seen.fetch_add(1, Ordering::Relaxed);
                        last_generation = generation;
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // The writer: re-mine with alternating parameters. Generation g is
    // mined with B when g is odd, A when even — matching the parity the
    // readers assert on.
    let writer_client = Client::new(addr);
    const REMINES: u64 = 20;
    for generation in 1..=REMINES {
        let eps = if generation % 2 == 1 { EPS_B } else { EPS_A };
        let body = format!("{{\"eps_min\":{eps}}}");
        let response = writer_client.post("/mine", &body).expect("re-mine failed");
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(response.generation().unwrap(), generation);
    }

    done.store(true, Ordering::Release);
    for reader in readers {
        reader.join().expect("reader thread panicked");
    }

    let total_reads = reads.load(Ordering::Relaxed);
    assert!(
        total_reads > 0,
        "readers must have exercised the server while swapping"
    );

    // Invariant 3: the settled catalog equals a fresh batch run with the
    // final parameters (REMINES is even → parameter set A).
    let response = writer_client.get("/catalog").unwrap();
    assert_eq!(response.generation().unwrap(), REMINES);
    assert_eq!(response.result().unwrap().render(), expected_a);

    server.stop();
    println!(
        "readers={} reads={total_reads} swaps_observed={}",
        reader_threads(),
        swaps_seen.load(Ordering::Relaxed)
    );
}

/// Concurrent `POST /mine` requests serialize through the mine lock:
/// every request gets its own generation, no generation is skipped or
/// duplicated, and the final catalog is complete.
#[test]
fn concurrent_remines_serialize_with_unique_generations() {
    let server = Server::start(figure1(), ServeConfig::new(params(EPS_A), 4)).unwrap();
    let addr = server.addr();

    let miners: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let client = Client::new(addr);
                // Alternate between the two parameter sets per thread.
                let eps = if i % 2 == 0 { EPS_A } else { EPS_B };
                let mut generations = Vec::new();
                for _ in 0..3 {
                    let body = format!("{{\"eps_min\":{eps}}}");
                    let response = client.post("/mine", &body).expect("re-mine failed");
                    assert_eq!(response.status, 200, "{}", response.body);
                    generations.push(response.generation().unwrap());
                }
                generations
            })
        })
        .collect();

    let mut all: Vec<u64> = miners
        .into_iter()
        .flat_map(|m| m.join().expect("miner thread panicked"))
        .collect();
    all.sort_unstable();
    assert_eq!(all, (1..=12).collect::<Vec<u64>>(), "generations {all:?}");

    // The winning (highest-generation) catalog is what is served now.
    let client = Client::new(addr);
    let response = client.get("/catalog").unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.generation().unwrap(), 12);
    server.stop();
}

/// Mixed query endpoints stay internally consistent during swaps: each
/// response's generation parity must agree with its payload. `/top` with
/// `eps_min` 0 sees more reports than with 0.5 only when C/D qualify —
/// instead of modeling each endpoint we just require that repeated reads
/// of the same generation return identical bytes.
#[test]
fn query_endpoints_are_stable_within_a_generation() {
    let server = Server::start(figure1(), ServeConfig::new(params(EPS_A), 4)).unwrap();
    let addr = server.addr();
    let client = Client::new(addr);

    let targets = [
        "/top?by=delta&k=5",
        "/patterns?attrs=A,B",
        "/patterns/covering?v=10",
        "/reports?delta_min=0.5",
    ];
    // Record the generation-0 bytes of every query endpoint.
    let before: Vec<String> = targets
        .iter()
        .map(|t| {
            let r = client.get(t).unwrap();
            assert_eq!(r.generation().unwrap(), 0, "{t}");
            r.body
        })
        .collect();

    // Swap to B and back to A; A's catalog must be reproduced exactly.
    for eps in [EPS_B, EPS_A] {
        let response = client
            .post("/mine", &format!("{{\"eps_min\":{eps}}}"))
            .unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
    }

    for (target, golden) in targets.iter().zip(&before) {
        let response = client.get(target).unwrap();
        assert_eq!(response.generation().unwrap(), 2, "{target}");
        // Same parameters → byte-identical payload; only the generation
        // stamp moved. Normalize it and compare whole envelopes.
        let normalized = response
            .body
            .replace("\"generation\":2", "\"generation\":0");
        assert_eq!(&normalized, golden, "{target} drifted across an A→B→A swap");
    }
    server.stop();
}
