//! The synthetic datasets must reproduce the phenomena the paper's case
//! studies rely on (§4.1): planted topics rank high on normalized
//! structural correlation while top-support generic attributes do not, and
//! SCPM recovers planted communities as patterns.

use scpm_core::{Scpm, ScpmParams};
use scpm_datasets::{dblp_like, small_dblp_like};
use scpm_graph::io::{read_attributed, write_attributed};

#[test]
fn topics_beat_generic_terms_on_delta() {
    let dataset = dblp_like(0.02, 42);
    let g = &dataset.graph;
    let sigma_min = 10;
    let params = ScpmParams::new(sigma_min, 0.5, 10)
        .with_max_attrs(1)
        .with_top_k(0);
    let result = Scpm::new(g, params).run();

    // Average δ_lb of planted-topic attributes vs. the top-10 support
    // attributes.
    let is_topic = |attrs: &[u32]| attrs.iter().any(|&a| g.attr_name(a).contains('*'));
    let topic_delta: Vec<f64> = result
        .reports
        .iter()
        .filter(|r| is_topic(&r.attrs) && r.delta_lb.is_finite())
        .map(|r| r.delta_lb)
        .collect();
    let top_support = result.top_by_support(10);
    assert!(!topic_delta.is_empty(), "no topics above σmin");
    let avg_topic = topic_delta.iter().sum::<f64>() / topic_delta.len() as f64;
    let avg_generic = top_support.iter().map(|r| r.delta_lb).sum::<f64>() / 10.0;
    assert!(
        avg_topic > 10.0 * avg_generic,
        "topics δ {avg_topic} vs generic δ {avg_generic}"
    );
}

#[test]
fn scpm_recovers_planted_communities() {
    let dataset = dblp_like(0.02, 42);
    let g = &dataset.graph;
    let params = ScpmParams::new(10, 0.5, 10)
        .with_eps_min(0.3)
        .with_top_k(3)
        .with_max_attrs(2);
    let result = Scpm::new(g, params).run();
    assert!(!result.patterns.is_empty());
    // Each pattern's vertex set must substantially overlap one planted
    // community (they are the only dense structures).
    let membership = {
        let mut m = vec![usize::MAX; g.num_vertices()];
        for (c, members) in dataset.communities.iter().enumerate() {
            for &v in members {
                m[v as usize] = c;
            }
        }
        m
    };
    for p in &result.patterns {
        let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &v in &p.clique.vertices {
            *counts.entry(membership[v as usize]).or_insert(0) += 1;
        }
        let (&best_comm, &overlap) = counts.iter().max_by_key(|(_, &c)| c).unwrap();
        assert!(
            best_comm != usize::MAX && overlap * 2 > p.clique.size(),
            "pattern of size {} has max community overlap {overlap}",
            p.clique.size()
        );
    }
}

#[test]
fn epsilon_of_topics_reflects_planted_density() {
    let dataset = small_dblp_like(0.02, 9);
    let g = &dataset.graph;
    // Find one topic attribute with support above threshold and dense
    // members; its ε must be positive and visible.
    let params = ScpmParams::new(10, 0.5, 10).with_max_attrs(1).with_top_k(0);
    let result = Scpm::new(g, params).run();
    let best_topic_eps = result
        .reports
        .iter()
        .filter(|r| r.attrs.iter().any(|&a| g.attr_name(a).contains('*')))
        .map(|r| r.epsilon)
        .fold(0.0f64, f64::max);
    assert!(
        best_topic_eps > 0.3,
        "strongest topic ε = {best_topic_eps}, planted signal too weak"
    );
}

#[test]
fn dataset_roundtrips_through_text_format() {
    let dataset = dblp_like(0.005, 4);
    let g = &dataset.graph;
    let mut buf = Vec::new();
    write_attributed(g, &mut buf).unwrap();
    let g2 = read_attributed(buf.as_slice()).unwrap();
    assert_eq!(g.num_vertices(), g2.num_vertices());
    assert_eq!(g.num_edges(), g2.num_edges());
    assert_eq!(g.num_attributes(), g2.num_attributes());

    // Mining results on the reloaded graph must be identical (modulo
    // attribute id relabeling, so compare by name).
    let params = ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.2)
        .with_top_k(2)
        .with_max_attrs(2);
    let name_rows = |g: &scpm_graph::AttributedGraph, r: &scpm_core::ScpmResult| {
        let mut rows: Vec<(Vec<String>, usize, i64)> = r
            .reports
            .iter()
            .map(|rep| {
                // Attribute ids are assigned in file order on reload, so
                // canonicalize each set by name.
                let mut names: Vec<String> = rep
                    .attrs
                    .iter()
                    .map(|&a| g.attr_name(a).to_string())
                    .collect();
                names.sort();
                (names, rep.support, (rep.epsilon * 1e9) as i64)
            })
            .collect();
        rows.sort();
        rows
    };
    let r1 = Scpm::new(g, params.clone()).run();
    let r2 = Scpm::new(&g2, params).run();
    assert_eq!(name_rows(g, &r1), name_rows(&g2, &r2));
}
