//! Pruning rules must be semantically inert: disabling Theorem 3 (vertex
//! pruning), Theorem 4 (ε bound), Theorem 5 (δ bound) or any quasi-clique
//! engine pruning must never change SCPM's output, only its cost.

use scpm_core::{Scpm, ScpmParams, ScpmPruneFlags, ScpmResult};
use scpm_datasets::dblp_like;
use scpm_graph::figure1::figure1;
use scpm_quasiclique::PruneFlags;

type ReportRows = Vec<(Vec<u32>, usize, i64, bool)>;
type PatternRows = Vec<(Vec<u32>, Vec<u32>)>;

fn canonical(r: &ScpmResult) -> (ReportRows, PatternRows) {
    let mut reports: Vec<(Vec<u32>, usize, i64, bool)> = r
        .reports
        .iter()
        .filter(|rep| rep.qualified)
        .map(|rep| {
            (
                rep.attrs.clone(),
                rep.support,
                (rep.epsilon * 1e9) as i64,
                rep.qualified,
            )
        })
        .collect();
    reports.sort();
    let mut patterns: Vec<(Vec<u32>, Vec<u32>)> = r
        .patterns
        .iter()
        .map(|p| (p.attrs.clone(), p.clique.vertices.clone()))
        .collect();
    patterns.sort();
    (reports, patterns)
}

fn scpm_flag_variants() -> Vec<ScpmPruneFlags> {
    let mut out = Vec::new();
    for vertex in [true, false] {
        for eps in [true, false] {
            for delta in [true, false] {
                out.push(ScpmPruneFlags {
                    vertex_pruning: vertex,
                    eps_pruning: eps,
                    delta_pruning: delta,
                });
            }
        }
    }
    out
}

#[test]
fn figure1_invariant_under_scpm_flag_combinations() {
    let g = figure1();
    let base = ScpmParams::new(3, 0.6, 4)
        .with_eps_min(0.5)
        .with_delta_min(0.5);
    let baseline = canonical(&Scpm::new(&g, base.clone()).run());
    for flags in scpm_flag_variants() {
        let mut params = base.clone();
        params.prune = flags;
        let got = canonical(&Scpm::new(&g, params).run());
        assert_eq!(got, baseline, "flags {flags:?}");
    }
}

#[test]
fn dataset_invariant_under_scpm_flag_combinations() {
    let dataset = dblp_like(0.01, 5);
    let g = &dataset.graph;
    let base = ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.2)
        .with_delta_min(1.0)
        .with_top_k(3)
        .with_max_attrs(2);
    let baseline = canonical(&Scpm::new(g, base.clone()).run());
    assert!(
        !baseline.0.is_empty(),
        "test needs a non-trivial qualifying output"
    );
    for flags in scpm_flag_variants() {
        let mut params = base.clone();
        params.prune = flags;
        let got = canonical(&Scpm::new(g, params).run());
        assert_eq!(got, baseline, "flags {flags:?}");
    }
}

#[test]
fn dataset_invariant_under_engine_flag_combinations() {
    let dataset = dblp_like(0.01, 9);
    let g = &dataset.graph;
    let base = ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.1)
        .with_top_k(3)
        .with_max_attrs(2);
    let baseline = canonical(&Scpm::new(g, base.clone()).run());
    // At dataset scale, keep at least one degree-based rule (feasibility or
    // bounds) active: with both off the set-enumeration tree is exponential
    // in the candidate count and the run would not finish in test time.
    // (The full 2^7 flag matrix, including all-off, is exercised on small
    // graphs by the quasiclique proptests.)
    for feasibility in [true, false] {
        for bounds in [true, false] {
            if !feasibility && !bounds {
                continue;
            }
            for flip in ["lookahead", "diameter2", "critical", "cover", "none"] {
                let mut params = base.clone();
                params.qc_prune = PruneFlags {
                    feasibility,
                    bounds,
                    lookahead: flip != "lookahead",
                    diameter2: flip != "diameter2",
                    critical: flip != "critical",
                    cover_vertex: flip != "cover",
                    covered_candidate: true,
                };
                let got = canonical(&Scpm::new(g, params).run());
                assert_eq!(
                    got, baseline,
                    "feasibility={feasibility} bounds={bounds} flipped={flip}"
                );
            }
        }
    }
}

#[test]
fn pruning_reduces_work() {
    let dataset = dblp_like(0.01, 5);
    let g = &dataset.graph;
    let base = ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.2)
        .with_delta_min(1.0)
        .with_top_k(3)
        .with_max_attrs(2);
    let pruned = Scpm::new(g, base.clone()).run();
    let mut no_prune = base.clone();
    no_prune.prune = ScpmPruneFlags {
        vertex_pruning: false,
        eps_pruning: false,
        delta_pruning: false,
    };
    let unpruned = Scpm::new(g, no_prune).run();
    assert!(
        pruned.stats.attribute_sets_examined <= unpruned.stats.attribute_sets_examined,
        "pruning must not increase examined sets"
    );
    assert!(
        pruned.stats.qc_nodes_coverage <= unpruned.stats.qc_nodes_coverage,
        "Theorem 3 must not increase coverage work"
    );
}
