//! The differential spine of the incremental miner: for every delta
//! stream, mining incrementally must produce a catalog **byte-identical**
//! to a full re-mine of the final graph — reports, patterns, and every
//! stats counter, across slice/bitset kernels and 1/2/4 scheduler
//! threads.
//!
//! The proptest generates a random base graph plus a random insert-only
//! delta stream (vertex/edge/attribute insertions, including no-op
//! duplicates of existing edges and assignments), applies the deltas one
//! at a time, and compares the chained incremental catalog JSON against a
//! fresh full mine after each step. A directed CLI chain drives the same
//! invariant through the actual `scpm update` binary against
//! `scpm mine` on the updated snapshot.
//!
//! Case count honors `PROPTEST_CASES` (CI pins it). Each case drives six
//! (representation, threads) chains with a full re-mine per step, so the
//! local default is 32 cases rather than the shim's 256.

use std::sync::Arc;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use scpm_core::{
    DirtySet, EvalMemo, IncrementalCtx, NullModelCache, ParallelConfig, Scpm, ScpmParams,
};
use scpm_graph::attributed::{AttributedGraph, AttributedGraphBuilder};
use scpm_graph::{DeltaOp, GraphDelta};
use scpm_quasiclique::Representation;
use scpm_serve::PatternCatalog;

const ATTR_NAMES: &[&str] = &["alpha", "beta", "gamma", "delta", "epsilon"];

/// Serializes a run into the byte-identity surface: the full catalog JSON
/// (params, reports, patterns, stats counters) at generation 0.
fn catalog_json(
    graph: &AttributedGraph,
    params: &ScpmParams,
    result: scpm_core::ScpmResult,
) -> String {
    PatternCatalog::build(graph, params, result, 0)
        .full_json()
        .render()
}

/// A from-scratch mine: fresh miner, fresh `exp(σ)` cache.
fn full_mine(graph: &AttributedGraph, params: &ScpmParams, config: &ParallelConfig) -> String {
    let result = Scpm::with_cache(graph, params.clone(), Arc::new(NullModelCache::new()))
        .run_scheduled(config);
    catalog_json(graph, params, result)
}

/// A recording mine: same output, but the evaluation memo is kept.
fn record_mine(
    graph: &AttributedGraph,
    params: &ScpmParams,
    config: &ParallelConfig,
) -> (String, EvalMemo) {
    let mut scpm = Scpm::with_cache(graph, params.clone(), Arc::new(NullModelCache::new()))
        .with_incremental(IncrementalCtx::recording());
    let result = scpm.run_scheduled(config);
    let (memo, _) = scpm.take_incremental().unwrap().into_parts();
    (catalog_json(graph, params, result), memo)
}

/// Drives one delta stream through the chained incremental path at one
/// (representation, threads) combination, asserting byte-identity with a
/// full re-mine after every step. Returns the total sets replayed.
fn assert_chain_identical(
    base: AttributedGraph,
    deltas: &[GraphDelta],
    mut params: ScpmParams,
    repr: Representation,
    threads: usize,
) -> Result<u64, TestCaseError> {
    params.repr = repr;
    let config = ParallelConfig::new(threads);
    let (recorded, mut memo) = record_mine(&base, &params, &config);
    // Recording must not perturb the run itself.
    prop_assert_eq!(
        &recorded,
        &full_mine(&base, &params, &config),
        "recording mode changed the base catalog (repr {:?}, {} threads)",
        repr,
        threads
    );
    let mut current = base;
    let mut total_reused = 0;
    for (step, delta) in deltas.iter().enumerate() {
        let applied = delta.apply(&current).unwrap();
        let dirty = DirtySet::from_delta(&applied.graph, &applied);
        let mut scpm = Scpm::with_cache(
            &applied.graph,
            params.clone(),
            Arc::new(NullModelCache::new()),
        )
        .with_incremental(IncrementalCtx::update(Arc::new(memo), dirty));
        let result = scpm.run_scheduled(&config);
        let ctx = scpm.take_incremental().unwrap();
        let stats = ctx.stats();
        let (new_memo, _) = ctx.into_parts();
        let incremental = catalog_json(&applied.graph, &params, result);
        let full = full_mine(&applied.graph, &params, &config);
        prop_assert_eq!(
            &incremental,
            &full,
            "step {} diverged (repr {:?}, {} threads, {} reused / {} live)",
            step,
            repr,
            threads,
            stats.reused,
            stats.reevaluated
        );
        total_reused += stats.reused;
        memo = new_memo;
        current = applied.graph;
    }
    Ok(total_reused)
}

/// A compact, deterministic description of one delta operation that is
/// materialized against whatever the graph's vertex count is at
/// application time (so generated streams are always well-formed).
#[derive(Clone, Debug)]
#[allow(clippy::enum_variant_names)] // mirrors scpm_graph::DeltaOp
enum OpSeed {
    AddVertices(u8),
    AddEdge(u16, u16),
    AddAttr(u16, u8),
}

fn materialize(seeds: &[OpSeed], mut bound: u32) -> GraphDelta {
    let mut ops = Vec::new();
    for seed in seeds {
        match *seed {
            OpSeed::AddVertices(k) => {
                let k = usize::from(k % 2) + 1;
                bound += k as u32;
                ops.push(DeltaOp::AddVertices(k));
            }
            OpSeed::AddEdge(x, y) => {
                if bound < 2 {
                    continue;
                }
                let u = u32::from(x) % bound;
                let mut v = u32::from(y) % bound;
                if u == v {
                    v = (u + 1) % bound;
                }
                ops.push(DeltaOp::AddEdge(u, v));
            }
            OpSeed::AddAttr(x, a) => {
                if bound == 0 {
                    continue;
                }
                let v = u32::from(x) % bound;
                let name = ATTR_NAMES[usize::from(a) % ATTR_NAMES.len()];
                ops.push(DeltaOp::AddAttr(v, name.to_string()));
            }
        }
    }
    GraphDelta { ops }
}

fn op_seed() -> impl Strategy<Value = OpSeed> {
    // The vendored shim's `prop_oneof!` is an unweighted uniform choice, so
    // bias toward edge/attribute insertions by listing them twice each.
    prop_oneof![
        any::<u8>().prop_map(OpSeed::AddVertices),
        (any::<u16>(), any::<u16>()).prop_map(|(x, y)| OpSeed::AddEdge(x, y)),
        (any::<u16>(), any::<u16>()).prop_map(|(x, y)| OpSeed::AddEdge(x, y)),
        (any::<u16>(), any::<u8>()).prop_map(|(x, a)| OpSeed::AddAttr(x, a)),
        (any::<u16>(), any::<u8>()).prop_map(|(x, a)| OpSeed::AddAttr(x, a)),
    ]
}

/// A random small attributed graph: `n` vertices, random edges, random
/// attribute assignments over a fixed 5-name alphabet. Duplicates in the
/// inputs are deduplicated by the builder, so every output is valid.
fn base_graph() -> impl Strategy<Value = AttributedGraph> {
    (6usize..16)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n as u32, 0..n as u32), 0..32),
                proptest::collection::vec((0..n as u32, 0..ATTR_NAMES.len()), 0..24),
            )
        })
        .prop_map(|(n, edges, attrs)| {
            let mut builder = AttributedGraphBuilder::new(n);
            for name in ATTR_NAMES {
                builder.intern_attr(name);
            }
            for (u, v) in edges {
                if u != v {
                    builder.add_edge(u, v);
                }
            }
            for (v, a) in attrs {
                builder.add_attr_named(v, ATTR_NAMES[a]);
            }
            builder.build()
        })
}

fn delta_stream() -> impl Strategy<Value = Vec<Vec<OpSeed>>> {
    proptest::collection::vec(proptest::collection::vec(op_seed(), 1..6), 1..4)
}

/// `PROPTEST_CASES` when set, else a bounded default — each case is a
/// six-combination differential sweep, far heavier than a typical
/// property.
fn bounded_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(bounded_cases()))]

    /// The invariant, across both kernel representations and 1/2/4
    /// scheduler threads: incremental catalog == full re-mine catalog,
    /// byte for byte, after every step of every delta stream.
    #[test]
    fn incremental_equals_full_remine(base in base_graph(), stream in delta_stream()) {
        let params = ScpmParams::new(2, 0.5, 3).with_top_k(2).with_max_attrs(3);
        // Materialize each delta against the vertex count it will apply to.
        let mut bound = base.num_vertices() as u32;
        let mut deltas = Vec::new();
        for seeds in &stream {
            let delta = materialize(seeds, bound);
            for op in &delta.ops {
                if let DeltaOp::AddVertices(k) = op {
                    bound += *k as u32;
                }
            }
            deltas.push(delta);
        }
        for repr in [Representation::Bitset, Representation::Slice] {
            for threads in [1usize, 2, 4] {
                // `apply` consumes nothing: rebuild the chain per combo so
                // each carries its own representation-specific memo.
                let rebuilt = AttributedGraph::clone(&base);
                assert_chain_identical(rebuilt, &deltas, params.clone(), repr, threads)?;
            }
        }
    }
}

/// Deltas that only append isolated vertices or duplicate existing
/// structure dirty nothing, and the incremental run replays every set.
#[test]
fn noop_and_isolated_deltas_replay_everything() {
    let base = scpm_graph::figure1::figure1();
    let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
    let config = ParallelConfig::new(1);
    let (_, memo) = record_mine(&base, &params, &config);
    let examined = Scpm::new(&base, params.clone())
        .run()
        .stats
        .attribute_sets_examined;
    // Append two isolated vertices and duplicate an existing edge and an
    // existing assignment.
    let delta = GraphDelta::parse("v 2\ne 0 1\na 0 A\n").unwrap();
    let applied = delta.apply(&base).unwrap();
    let dirty = DirtySet::from_delta(&applied.graph, &applied);
    assert!(dirty.is_empty(), "no-op delta must dirty nothing");
    let mut scpm = Scpm::with_cache(
        &applied.graph,
        params.clone(),
        Arc::new(NullModelCache::new()),
    )
    .with_incremental(IncrementalCtx::update(Arc::new(memo), dirty));
    let result = scpm.run_scheduled(&config);
    let stats = scpm.take_incremental().unwrap().stats();
    assert_eq!(
        stats.reevaluated, 0,
        "clean lattice must evaluate nothing live"
    );
    assert_eq!(stats.reused, examined, "every examined set must replay");
    assert_eq!(
        catalog_json(&applied.graph, &params, result),
        full_mine(&applied.graph, &params, &config)
    );
}

/// The CLI chain: `scpm update --json` must be byte-identical to
/// `scpm mine --json` on the updated snapshot, step after step, for both
/// kernel representations and a multi-threaded run.
#[test]
fn cli_update_chain_matches_cli_mine() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_scpm");
    let dir = std::env::temp_dir().join("scpm_incremental_cli_chain");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("g.snap");
    let next = dir.join("g2.snap");

    let run = |args: &[&str]| -> (String, bool) {
        let out = Command::new(bin).args(args).output().expect("spawn scpm");
        (
            String::from_utf8_lossy(&out.stdout).into_owned(),
            out.status.success(),
        )
    };

    let (_, ok) = run(&[
        "generate",
        "--dataset",
        "smalldblp",
        "--scale",
        "0.2",
        "--seed",
        "11",
        "--out",
        snap.to_str().unwrap(),
    ]);
    assert!(ok, "generate failed");

    // Three deltas: novel assignments on mined attributes, novel edges
    // (one inside a dense region), appended vertices wired back in.
    let deltas = [
        "a 0 data\na 1 data\ne 0 2\n",
        "v 2\ne 0 1\n",
        "e 3 5\na 4 queri\na 2 web\nv 1\n",
    ];
    for (step, text) in deltas.iter().enumerate() {
        let delta_path = dir.join(format!("d{step}.txt"));
        std::fs::write(&delta_path, text).unwrap();
        for (repr, threads) in [("bitset", "1"), ("slice", "1"), ("bitset", "4")] {
            let (inc, ok) = run(&[
                "update",
                "--snapshot",
                snap.to_str().unwrap(),
                "--delta",
                delta_path.to_str().unwrap(),
                "--sigma-min",
                "3",
                "--min-size",
                "4",
                "--repr",
                repr,
                "--threads",
                threads,
                "--out",
                next.to_str().unwrap(),
                "--json",
            ]);
            assert!(ok, "step {step} update failed ({repr}, {threads} threads)");
            let (full, ok) = run(&[
                "mine",
                "--snapshot",
                next.to_str().unwrap(),
                "--sigma-min",
                "3",
                "--min-size",
                "4",
                "--repr",
                repr,
                "--threads",
                threads,
                "--json",
            ]);
            assert!(ok, "step {step} mine failed ({repr}, {threads} threads)");
            assert_eq!(
                inc, full,
                "step {step} diverged ({repr}, {threads} threads)"
            );
        }
        // Advance the chain.
        std::fs::rename(&next, &snap).unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Degenerate graphs must flow through mine *and* update without panics:
/// zero edges (nothing can cover), a single vertex, and an attribute-free
/// graph. The differential invariant holds throughout.
#[test]
fn degenerate_graphs_mine_and_update() {
    let params = ScpmParams::new(1, 0.5, 2).with_top_k(2);
    let config = ParallelConfig::new(1);
    // Zero-edge graph with attributes: supports exist, ε is 0 everywhere.
    let mut builder = AttributedGraphBuilder::new(4);
    builder.intern_attr("x");
    for v in 0..3 {
        builder.add_attr_named(v, "x");
    }
    let zero_edge = builder.build();
    let (recorded, memo) = record_mine(&zero_edge, &params, &config);
    assert_eq!(recorded, full_mine(&zero_edge, &params, &config));
    // First edge ever + a novel assignment.
    let delta = GraphDelta::parse("e 0 1\na 3 x\n").unwrap();
    let applied = delta.apply(&zero_edge).unwrap();
    let dirty = DirtySet::from_delta(&applied.graph, &applied);
    let scpm = Scpm::with_cache(
        &applied.graph,
        params.clone(),
        Arc::new(NullModelCache::new()),
    )
    .with_incremental(IncrementalCtx::update(Arc::new(memo), dirty));
    let result = scpm.run_scheduled(&config);
    assert_eq!(
        catalog_json(&applied.graph, &params, result),
        full_mine(&applied.graph, &params, &config)
    );

    // Single vertex, no attributes, then grown by delta alone.
    let lonely = AttributedGraphBuilder::new(1).build();
    let (_, memo) = record_mine(&lonely, &params, &config);
    let delta = GraphDelta::parse("v 2\ne 0 1\ne 1 2\na 0 fresh\na 1 fresh\n").unwrap();
    let applied = delta.apply(&lonely).unwrap();
    let dirty = DirtySet::from_delta(&applied.graph, &applied);
    let scpm = Scpm::with_cache(
        &applied.graph,
        params.clone(),
        Arc::new(NullModelCache::new()),
    )
    .with_incremental(IncrementalCtx::update(Arc::new(memo), dirty));
    let result = scpm.run_scheduled(&config);
    assert_eq!(
        catalog_json(&applied.graph, &params, result),
        full_mine(&applied.graph, &params, &config)
    );
}

/// The zero-edge path through the actual CLI: `scpm mine --snapshot` and
/// `scpm update --snapshot` on an edgeless snapshot must both succeed
/// (this used to be an untested path).
#[test]
fn cli_handles_zero_edge_snapshot() {
    use std::process::Command;
    let bin = env!("CARGO_BIN_EXE_scpm");
    let dir = std::env::temp_dir().join("scpm_zero_edge_cli");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("edgeless.snap");
    let mut builder = AttributedGraphBuilder::new(5);
    builder.intern_attr("solo");
    for v in 0..4 {
        builder.add_attr_named(v, "solo");
    }
    scpm_graph::snapshot::save_snapshot(&builder.build(), &snap).unwrap();

    let mine = Command::new(bin)
        .args([
            "mine",
            "--snapshot",
            snap.to_str().unwrap(),
            "--sigma-min",
            "2",
            "--min-size",
            "2",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(
        mine.status.success(),
        "zero-edge mine failed: {}",
        String::from_utf8_lossy(&mine.stderr)
    );

    let delta_path = dir.join("d.txt");
    std::fs::write(&delta_path, "e 0 1\ne 1 2\n").unwrap();
    let update = Command::new(bin)
        .args([
            "update",
            "--snapshot",
            snap.to_str().unwrap(),
            "--delta",
            delta_path.to_str().unwrap(),
            "--sigma-min",
            "2",
            "--min-size",
            "2",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(
        update.status.success(),
        "zero-edge update failed: {}",
        String::from_utf8_lossy(&update.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}
