//! Protocol conformance suite for `scpm serve`: an in-process client drives
//! every endpoint over a real loopback socket and asserts **byte-exact**
//! JSON against golden responses on the Figure 1 graph with the Table 1
//! parameters (σmin=3, γ=0.6, min_size=4, εmin=0.5, top-k=5).
//!
//! The goldens are stable because the catalog JSON renderer is
//! deterministic (insertion-ordered keys, shortest-roundtrip floats) and
//! the miner is bit-identical at any thread count. The suite closes with
//! the ISSUE's acceptance check: the `GET /catalog` result payload is
//! byte-identical to `scpm mine --json` run as a separate batch process.

use std::path::PathBuf;
use std::process::Command;

use scpm_core::ScpmParams;
use scpm_graph::figure1::figure1;
use scpm_serve::{Client, Json, ServeConfig, Server};

/// Table 1 parameters, aligned with the `scpm` CLI defaults for
/// `--top-k` (5) and `--max-attrs` (3) so the batch binary mines the
/// identical catalog.
fn table1_params() -> ScpmParams {
    ScpmParams::new(3, 0.6, 4)
        .with_eps_min(0.5)
        .with_top_k(5)
        .with_max_attrs(3)
}

/// Starts a figure-1 server and hands `(server, client)` to the test body.
fn with_server(test: impl FnOnce(&Server, Client)) {
    let server = Server::start(figure1(), ServeConfig::new(table1_params(), 2))
        .expect("server failed to start");
    let client = Client::new(server.addr());
    test(&server, client);
    server.stop();
}

/// Asserts one GET round-trip byte-for-byte.
fn assert_get(client: &Client, target: &str, status: u16, golden: &str) {
    let response = client.get(target).expect(target);
    assert_eq!(response.status, status, "status of GET {target}");
    assert_eq!(response.body, golden, "body of GET {target}");
}

#[test]
fn health_is_byte_exact() {
    with_server(|_, client| {
        assert_get(
            &client,
            "/health",
            200,
            r#"{"result":{"status":"ok"},"error":null,"generation":0}"#,
        );
    });
}

#[test]
fn top_k_orderings_are_byte_exact() {
    with_server(|_, client| {
        assert_get(
            &client,
            "/top?by=delta&k=2",
            200,
            r#"{"result":{"by":"delta","k":2,"count":2,"reports":[{"attrs":["A","B"],"support":6,"covered":6,"epsilon":1,"delta_lb":1.8429319371727748,"qualified":true},{"attrs":["B"],"support":6,"covered":6,"epsilon":1,"delta_lb":1.8429319371727748,"qualified":true}]},"error":null,"generation":0}"#,
        );
        assert_get(
            &client,
            "/top?by=epsilon&k=2",
            200,
            r#"{"result":{"by":"epsilon","k":2,"count":2,"reports":[{"attrs":["A","B"],"support":6,"covered":6,"epsilon":1,"delta_lb":1.8429319371727748,"qualified":true},{"attrs":["B"],"support":6,"covered":6,"epsilon":1,"delta_lb":1.8429319371727748,"qualified":true}]},"error":null,"generation":0}"#,
        );
        // {A} has full support σ=11: the unique top-1 by support.
        assert_get(
            &client,
            "/top?by=support&k=1",
            200,
            r#"{"result":{"by":"support","k":1,"count":1,"reports":[{"attrs":["A"],"support":11,"covered":9,"epsilon":0.8181818181818182,"delta_lb":0.8181818181818182,"qualified":true}]},"error":null,"generation":0}"#,
        );
    });
}

#[test]
fn attribute_set_query_is_byte_exact() {
    with_server(|_, client| {
        // The paper's flagship pattern: ({A,B}, {5..10}), ε = 1.
        assert_get(
            &client,
            "/patterns?attrs=A,B",
            200,
            r#"{"result":{"attrs":["A","B"],"report":{"attrs":["A","B"],"support":6,"covered":6,"epsilon":1,"delta_lb":1.8429319371727748,"qualified":true},"count":1,"patterns":[{"attrs":["A","B"],"vertices":[5,6,7,8,9,10],"size":6,"gamma":0.6,"density":0.6}]},"error":null,"generation":0}"#,
        );
        // Attribute order and duplicates in the query must not matter.
        let canonical = client.get("/patterns?attrs=A,B").unwrap();
        for variant in ["/patterns?attrs=B,A", "/patterns?attrs=B,A,B,%20A"] {
            let response = client.get(variant).expect(variant);
            assert_eq!(response.body, canonical.body, "GET {variant}");
        }
    });
}

#[test]
fn covering_query_is_byte_exact() {
    with_server(|_, client| {
        // Vertex 1 is outside every quasi-clique; vertex 10 sits in the
        // dense right-hand community and is covered by all three σ≥3
        // qualifying sets.
        assert_get(
            &client,
            "/patterns/covering?v=1",
            200,
            r#"{"result":{"vertex":1,"count":0,"patterns":[]},"error":null,"generation":0}"#,
        );
        assert_get(
            &client,
            "/patterns/covering?v=10",
            200,
            r#"{"result":{"vertex":10,"count":3,"patterns":[{"attrs":["A"],"vertices":[5,6,7,8,9,10],"size":6,"gamma":0.6,"density":0.6},{"attrs":["B"],"vertices":[5,6,7,8,9,10],"size":6,"gamma":0.6,"density":0.6},{"attrs":["A","B"],"vertices":[5,6,7,8,9,10],"size":6,"gamma":0.6,"density":0.6}]},"error":null,"generation":0}"#,
        );
    });
}

#[test]
fn delta_threshold_query_is_byte_exact() {
    with_server(|_, client| {
        assert_get(
            &client,
            "/reports?delta_min=1.0",
            200,
            r#"{"result":{"delta_min":1,"count":2,"reports":[{"attrs":["B"],"support":6,"covered":6,"epsilon":1,"delta_lb":1.8429319371727748,"qualified":true},{"attrs":["A","B"],"support":6,"covered":6,"epsilon":1,"delta_lb":1.8429319371727748,"qualified":true}]},"error":null,"generation":0}"#,
        );
    });
}

#[test]
fn error_responses_are_byte_exact() {
    with_server(|_, client| {
        assert_get(
            &client,
            "/nope",
            404,
            r#"{"result":null,"error":{"code":"not_found","message":"unknown endpoint `/nope`"},"generation":0}"#,
        );
        assert_get(
            &client,
            "/top?by=bogus",
            422,
            r#"{"result":null,"error":{"code":"invalid_parameter","message":"invalid `by` value `bogus` (want delta|epsilon|support)"},"generation":0}"#,
        );
        assert_get(
            &client,
            "/top?k=0",
            422,
            r#"{"result":null,"error":{"code":"invalid_parameter","message":"k must be at least 1"},"generation":0}"#,
        );
        assert_get(
            &client,
            "/patterns?attrs=A,NOPE",
            422,
            r#"{"result":null,"error":{"code":"unknown_attribute","message":"unknown attribute `NOPE`"},"generation":0}"#,
        );
        assert_get(
            &client,
            "/patterns/covering?v=99",
            422,
            r#"{"result":null,"error":{"code":"invalid_parameter","message":"vertex 99 out of range (graph has 11 vertices)"},"generation":0}"#,
        );
        assert_get(
            &client,
            "/reports?delta_min=-1",
            422,
            r#"{"result":null,"error":{"code":"invalid_parameter","message":"delta_min must be a finite non-negative number, got -1"},"generation":0}"#,
        );
        // Wrong verb on a known path is 405, distinguishable from 404.
        let response = client.post("/health", "").unwrap();
        assert_eq!(response.status, 405);
        assert_eq!(
            response.body,
            r#"{"result":null,"error":{"code":"method_not_allowed","message":"POST is not supported on /health (use GET)"},"generation":0}"#,
        );
    });
}

#[test]
fn full_catalog_is_byte_exact() {
    with_server(|_, client| {
        assert_get(
            &client,
            "/catalog",
            200,
            r#"{"result":{"params":{"sigma_min":3,"gamma":0.6,"min_size":4,"eps_min":0.5,"delta_min":0,"top_k":5,"min_attrs":1,"max_attrs":3},"num_vertices":11,"num_attributes":5,"num_reports":5,"num_patterns":7,"reports":[{"attrs":["A"],"support":11,"covered":9,"epsilon":0.8181818181818182,"delta_lb":0.8181818181818182,"qualified":true},{"attrs":["C"],"support":3,"covered":0,"epsilon":0,"delta_lb":0,"qualified":false},{"attrs":["D"],"support":3,"covered":0,"epsilon":0,"delta_lb":0,"qualified":false},{"attrs":["B"],"support":6,"covered":6,"epsilon":1,"delta_lb":1.8429319371727748,"qualified":true},{"attrs":["A","B"],"support":6,"covered":6,"epsilon":1,"delta_lb":1.8429319371727748,"qualified":true}],"patterns":[{"attrs":["A"],"vertices":[5,6,7,8,9,10],"size":6,"gamma":0.6,"density":0.6},{"attrs":["A"],"vertices":[2,3,4,5],"size":4,"gamma":1,"density":1},{"attrs":["A"],"vertices":[2,3,5,6],"size":4,"gamma":0.6666666666666666,"density":0.8333333333333334},{"attrs":["A"],"vertices":[2,4,5,6],"size":4,"gamma":0.6666666666666666,"density":0.8333333333333334},{"attrs":["A"],"vertices":[2,5,6,7],"size":4,"gamma":0.6666666666666666,"density":0.8333333333333334},{"attrs":["B"],"vertices":[5,6,7,8,9,10],"size":6,"gamma":0.6,"density":0.6},{"attrs":["A","B"],"vertices":[5,6,7,8,9,10],"size":6,"gamma":0.6,"density":0.6}],"stats":{"attribute_sets_examined":5,"attribute_sets_qualified":3,"pruned_support":0,"pruned_apriori":0,"pruned_eps_bound":2,"pruned_delta_bound":0,"qc_nodes_coverage":27,"qc_nodes_topk":35,"qc_edge_tests":58,"qc_kernel_ops":1619,"qc_fused_ops":533,"qc_blocks_skipped":0,"qc_probes_elided":365,"qc_batch_ops":119}},"error":null,"generation":0}"#,
        );
    });
}

/// ISSUE acceptance check: the catalog served over the socket is
/// byte-identical to a fresh batch `scpm mine --json` run in a separate
/// process on the same snapshot and parameters.
#[test]
fn socket_catalog_matches_batch_mine_bytes() {
    let dir = std::env::temp_dir().join("scpm_serve_protocol");
    std::fs::create_dir_all(&dir).unwrap();
    let path: PathBuf = dir.join("figure1.txt");
    scpm_graph::io::save_attributed(&figure1(), &path).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_scpm"))
        .args([
            "mine",
            "--graph",
            path.to_str().unwrap(),
            "--sigma-min",
            "3",
            "--gamma",
            "0.6",
            "--min-size",
            "4",
            "--eps-min",
            "0.5",
            "--json",
        ])
        .output()
        .expect("failed to spawn scpm binary");
    assert!(
        out.status.success(),
        "batch mine failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let batch = String::from_utf8(out.stdout).unwrap();

    with_server(|_, client| {
        let response = client.get("/catalog").unwrap();
        assert_eq!(response.status, 200);
        let served = response.result().unwrap().render();
        assert_eq!(
            served,
            batch.trim_end(),
            "served catalog differs from batch `scpm mine --json`"
        );
    });
}

#[test]
fn keep_alive_pipelines_two_requests_on_one_connection() {
    with_server(|_, client| {
        // Two requests on one connection: the first keeps the connection
        // open, the second closes it. `raw` reads everything to EOF.
        let payload = b"GET /health HTTP/1.1\r\nHost: scpm\r\n\r\n\
                        GET /health HTTP/1.1\r\nHost: scpm\r\nConnection: close\r\n\r\n";
        let raw = client.raw(payload).unwrap();
        let text = String::from_utf8(raw).unwrap();
        assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
        assert_eq!(
            text.matches(r#"{"result":{"status":"ok"},"error":null,"generation":0}"#)
                .count(),
            2,
            "{text}"
        );
        assert!(text.contains("Connection: keep-alive"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
    });
}

#[test]
fn response_headers_frame_the_body() {
    with_server(|_, client| {
        let payload = b"GET /health HTTP/1.1\r\nHost: scpm\r\nConnection: close\r\n\r\n";
        let raw = client.raw(payload).unwrap();
        let text = String::from_utf8(raw).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").expect("no header separator");
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
        assert!(head.contains("Content-Type: application/json"), "{head}");
        let declared: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("no Content-Length")
            .trim()
            .parse()
            .unwrap();
        assert_eq!(declared, body.len(), "Content-Length must frame the body");
    });
}

/// Every success envelope is `{"result":…,"error":null,"generation":N}`
/// and every error envelope carries a structured `code` + `message`.
#[test]
fn envelopes_are_uniform_across_endpoints() {
    with_server(|_, client| {
        for target in [
            "/health",
            "/stats",
            "/catalog",
            "/patterns?attrs=A",
            "/patterns/covering?v=0",
            "/reports?delta_min=0",
            "/top",
        ] {
            let response = client.get(target).expect(target);
            assert_eq!(response.status, 200, "GET {target}");
            let envelope = response.json().unwrap();
            assert_eq!(
                envelope.keys(),
                vec!["result", "error", "generation"],
                "GET {target}"
            );
            assert_eq!(envelope.get("error"), Some(&Json::Null), "GET {target}");
            assert_eq!(response.generation().unwrap(), 0, "GET {target}");
        }
        for target in ["/nope", "/top?k=0"] {
            let response = client.get(target).expect(target);
            assert!(response.status >= 400, "GET {target}");
            let envelope = response.json().unwrap();
            assert_eq!(envelope.get("result"), Some(&Json::Null), "GET {target}");
            let error = envelope.get("error").expect("error field");
            assert!(error.get("code").is_some(), "GET {target}");
            assert!(error.get("message").is_some(), "GET {target}");
        }
    });
}

/// `/stats` is structural (counters move between runs), so it is checked
/// shape-wise rather than byte-wise — but the mining counters themselves
/// are deterministic and must match the golden run.
#[test]
fn stats_reports_all_sections() {
    with_server(|_, client| {
        let response = client.get("/stats").unwrap();
        assert_eq!(response.status, 200);
        let stats = response.result().unwrap();
        assert_eq!(
            stats.keys(),
            vec![
                "server",
                "catalog",
                "mining",
                "null_model_cache",
                "durability"
            ]
        );
        // In-memory serving reports no durability state.
        assert_eq!(stats.get("durability"), Some(&Json::Null));
        let server = stats.get("server").unwrap();
        assert_eq!(server.get("threads").and_then(Json::as_u64), Some(2));
        let catalog = stats.get("catalog").unwrap();
        assert_eq!(catalog.get("reports").and_then(Json::as_u64), Some(5));
        assert_eq!(catalog.get("patterns").and_then(Json::as_u64), Some(7));
        assert_eq!(catalog.get("generation").and_then(Json::as_u64), Some(0));
        let mining = stats.get("mining").unwrap();
        assert_eq!(
            mining.get("attribute_sets_examined").and_then(Json::as_u64),
            Some(5)
        );
        assert_eq!(
            mining.get("qc_kernel_ops").and_then(Json::as_u64),
            Some(1619)
        );
        // The batched-promotion counters are served alongside the classic
        // kernel figures; on Figure 1 the elided probes are exactly the
        // point probes the slice path would have issued at those sites.
        assert_eq!(
            mining.get("qc_probes_elided").and_then(Json::as_u64),
            Some(365)
        );
        assert_eq!(mining.get("qc_batch_ops").and_then(Json::as_u64), Some(119));
        let cache = stats.get("null_model_cache").unwrap();
        assert!(cache.get("entries").and_then(Json::as_u64).is_some());
    });
}
