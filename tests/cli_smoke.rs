//! End-to-end smoke tests of the `scpm` binary: every subcommand through a
//! real process, including the error paths' exit codes.

use std::path::PathBuf;
use std::process::{Command, Output};

fn scpm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scpm"))
        .args(args)
        .output()
        .expect("failed to spawn scpm binary")
}

fn temp_graph(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("scpm_cli_smoke");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.txt"));
    scpm_graph::io::save_attributed(&scpm_graph::figure1::figure1(), &path).unwrap();
    path
}

#[test]
fn no_arguments_prints_usage_and_exit_2() {
    let out = scpm(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_command_fails() {
    let out = scpm(&["transmogrify"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_graph_file_fails_cleanly() {
    let out = scpm(&["stats", "--graph", "/nonexistent/g.txt"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn mine_reproduces_table1_via_process() {
    let path = temp_graph("mine");
    let out = scpm(&[
        "mine",
        "--graph",
        path.to_str().unwrap(),
        "--sigma-min",
        "3",
        "--gamma",
        "0.6",
        "--min-size",
        "4",
        "--eps-min",
        "0.5",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top structural correlation"));
    assert!(stdout.contains("patterns"));
    // 7 qualifying pattern rows exist; the default limit shows them.
    assert!(stdout.contains("{A, B}"));
}

#[test]
fn mine_rejects_unknown_repr() {
    let path = temp_graph("badrepr");
    let out = scpm(&[
        "mine",
        "--graph",
        path.to_str().unwrap(),
        "--repr",
        "avx512",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid --repr `avx512`"), "{stderr}");
    // The hint lists every accepted value, including the gated one.
    assert!(stderr.contains("bitset|slice|simd"), "{stderr}");
}

#[test]
fn mine_repr_simd_gated_on_feature() {
    let path = temp_graph("simdrepr");
    let out = scpm(&["mine", "--graph", path.to_str().unwrap(), "--repr", "simd"]);
    // Cargo unifies features across the build graph, so this test sees
    // the same `simd` setting the spawned binary was compiled with.
    if scpm_graph::bitadj::simd_compiled() {
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(String::from_utf8_lossy(&out.stdout).contains("patterns"));
    } else {
        assert_eq!(out.status.code(), Some(1));
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("requires a build with the `simd` feature"),
            "{stderr}"
        );
        assert!(stderr.contains("cargo build --features simd"), "{stderr}");
    }
}

#[test]
fn induce_reports_epsilon_and_pvalue() {
    let path = temp_graph("induce");
    let out = scpm(&[
        "induce",
        "--graph",
        path.to_str().unwrap(),
        "--attrs",
        "A,B",
        "--gamma",
        "0.6",
        "--min-size",
        "4",
        "--pvalue-sims",
        "9",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ε = 1.0000"), "stdout: {stdout}");
    assert!(stdout.contains("empirical p-value"));
    assert!(stdout.contains("δ_lb"));
}

#[test]
fn induce_unknown_attribute_fails() {
    let path = temp_graph("induce_bad");
    let out = scpm(&[
        "induce",
        "--graph",
        path.to_str().unwrap(),
        "--attrs",
        "NOPE",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown attribute"));
}

#[test]
fn closed_lists_nonredundant_sets() {
    let path = temp_graph("closed");
    let out = scpm(&[
        "closed",
        "--graph",
        path.to_str().unwrap(),
        "--sigma-min",
        "3",
        "--max-attrs",
        "4",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("closed attribute sets"));
    // {A} is closed (σ=11, no superset matches); {B} is NOT closed: every
    // B-vertex also has A, so {A,B} subsumes it.
    assert!(stdout.contains("{A}"));
    assert!(stdout.contains("{A, B}"));
    assert!(
        !stdout.contains(" {B} "),
        "non-closed {{B}} listed: {stdout}"
    );
}

#[test]
fn serve_starts_answers_and_shuts_down_cleanly() {
    use std::io::{BufRead, BufReader};
    use std::process::Stdio;

    let path = temp_graph("serve");
    // Port 0 binds an ephemeral port; the listening line on stdout is the
    // hand-off telling us which one.
    let mut child = Command::new(env!("CARGO_BIN_EXE_scpm"))
        .args([
            "serve",
            "--graph",
            path.to_str().unwrap(),
            "--port",
            "0",
            "--threads",
            "2",
            "--sigma-min",
            "3",
            "--gamma",
            "0.6",
            "--min-size",
            "4",
            "--eps-min",
            "0.5",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("failed to spawn scpm serve");

    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr: std::net::SocketAddr = line
        .trim()
        .strip_prefix("scpm serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .parse()
        .expect("unparseable listen address");

    let client = scpm_serve::Client::new(addr);
    let health = client.get("/health").expect("health check failed");
    assert_eq!(health.status, 200);
    assert_eq!(
        health.body,
        r#"{"result":{"status":"ok"},"error":null,"generation":0}"#
    );
    // Table 1 catalog over the socket: 5 reports, 7 patterns.
    let stats = client.get("/stats").expect("stats failed");
    assert!(stats.body.contains("\"reports\":5"), "{}", stats.body);
    assert!(stats.body.contains("\"patterns\":7"), "{}", stats.body);

    // Clean shutdown over the ctrl channel, not a kill.
    let bye = client.post("/shutdown", "").expect("shutdown failed");
    assert_eq!(bye.status, 200);
    let status = child.wait().expect("serve process did not exit");
    assert_eq!(status.code(), Some(0), "serve exited uncleanly");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut stdout, &mut rest).unwrap();
    assert!(
        rest.contains("scpm serve: shut down cleanly"),
        "missing clean-shutdown line: {rest:?}"
    );
}

#[test]
fn serve_rejects_invalid_parameters_at_startup() {
    let path = temp_graph("serve_bad");
    let out = scpm(&[
        "serve",
        "--graph",
        path.to_str().unwrap(),
        "--port",
        "0",
        "--gamma",
        "7",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("gamma"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn generate_convert_nullmodel_pipeline() {
    let dir = std::env::temp_dir().join("scpm_cli_smoke_pipe");
    std::fs::create_dir_all(&dir).unwrap();
    let text = dir.join("g.txt");
    let snap = dir.join("g.snap");
    let out = scpm(&[
        "generate",
        "--dataset",
        "dblp",
        "--scale",
        "0.003",
        "--seed",
        "3",
        "--out",
        text.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = scpm(&[
        "convert",
        "--graph",
        text.to_str().unwrap(),
        "--out",
        snap.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    // Snapshot loads transparently everywhere a graph is accepted.
    let out = scpm(&[
        "nullmodel",
        "--graph",
        snap.to_str().unwrap(),
        "--points",
        "3",
        "--sims",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("max-exp"));
    std::fs::remove_dir_all(&dir).ok();
}
