//! End-to-end ingestion: an on-disk edge-list + attribute-table dataset,
//! pushed through `ingest → snapshot → mine`, must produce a report
//! byte-identical to mining the same graph constructed in memory — at the
//! library level and through the `scpm` binary.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use scpm_core::report::{render_patterns, render_top_tables};
use scpm_core::{run_parallel_with, ParallelConfig, Scpm, ScpmParams, ScpmResult};
use scpm_datasets::dblp_like;
use scpm_datasets::ingest::{
    canonicalize_attributes, ingest_files, IngestOptions, SourceFormat, UnknownVertexPolicy,
};
use scpm_graph::io::{write_attr_table, write_edge_list};
use scpm_graph::snapshot;
use scpm_graph::AttributedGraph;

fn params() -> ScpmParams {
    ScpmParams::new(8, 0.5, 6)
        .with_eps_min(0.1)
        .with_top_k(2)
        .with_max_attrs(2)
}

/// The rendered mining report (tables + patterns; the run summary carries
/// wall-clock timings and is compared separately, stripped).
fn report_of(g: &AttributedGraph, r: &ScpmResult) -> String {
    format!(
        "{}\n{}",
        render_top_tables(g, r, 10),
        render_patterns(g, r, 10)
    )
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scpm_it_ingest_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes `g` in the on-disk release shape (edge list + attribute table).
fn materialize(g: &AttributedGraph, dir: &Path) -> (PathBuf, PathBuf) {
    let edges = dir.join("g.edges");
    let attrs = dir.join("g.attrs");
    write_edge_list(g.graph(), std::fs::File::create(&edges).unwrap()).unwrap();
    write_attr_table(g, std::fs::File::create(&attrs).unwrap()).unwrap();
    (edges, attrs)
}

#[test]
fn on_disk_pipeline_is_byte_identical_to_in_memory() {
    let dir = workdir("lib");
    let graph = dblp_like(0.005, 17).graph;
    let (edges, attrs) = materialize(&graph, &dir);

    // Disk path: parse → normalize → snapshot round-trip → parallel mine.
    let ingested = ingest_files(
        SourceFormat::EdgeList,
        &edges,
        Some(&attrs),
        &IngestOptions::default(),
    )
    .unwrap();
    assert!(ingested.report.numeric_ids, "ids should pass through");
    let snap = dir.join("g.snap");
    snapshot::save_snapshot(&ingested.graph, &snap).unwrap();
    let loaded = snapshot::load_snapshot(&snap).unwrap();
    let mined_disk = run_parallel_with(&loaded, params(), &ParallelConfig::new(2));

    // In-memory path: canonical form of the very same graph, serial mine.
    let reference = canonicalize_attributes(&graph);
    let mined_mem = Scpm::new(&reference, params()).run();

    // Snapshots and reports are byte-identical.
    assert_eq!(
        snapshot::encode(&reference).as_ref(),
        snapshot::encode(&loaded).as_ref(),
        "snapshot bytes differ between disk and in-memory paths"
    );
    assert_eq!(
        report_of(&loaded, &mined_disk),
        report_of(&reference, &mined_mem),
        "mined reports differ between disk and in-memory paths"
    );
}

#[test]
fn adjacency_variant_ingests_to_the_same_graph() {
    let dir = workdir("adj");
    let graph = dblp_like(0.004, 11).graph;
    let (edges, attrs) = materialize(&graph, &dir);
    let adj = dir.join("g.adj");
    scpm_graph::io::write_adjacency(graph.graph(), std::fs::File::create(&adj).unwrap()).unwrap();

    let from_edges = ingest_files(
        SourceFormat::EdgeList,
        &edges,
        Some(&attrs),
        &IngestOptions::default(),
    )
    .unwrap();
    let from_adj = ingest_files(
        SourceFormat::Adjacency,
        &adj,
        Some(&attrs),
        &IngestOptions::default(),
    )
    .unwrap();
    assert_eq!(
        snapshot::encode(&from_edges.graph).as_ref(),
        snapshot::encode(&from_adj.graph).as_ref(),
        "edge-list and adjacency ingests disagree"
    );
    // The adjacency file lists every edge twice; normalization merged them.
    let parse = from_adj.report.parse.unwrap();
    assert_eq!(parse.duplicate_edges_merged, from_adj.report.edges);
}

#[test]
fn unified_format_ingests_equivalently() {
    let dir = workdir("unified");
    let graph = dblp_like(0.004, 13).graph;
    let unified = dir.join("g.scpm");
    scpm_graph::io::save_attributed(&graph, &unified).unwrap();
    let out = ingest_files(
        SourceFormat::Unified,
        &unified,
        None,
        &IngestOptions::default(),
    )
    .unwrap();
    assert_eq!(
        snapshot::encode(&out.graph).as_ref(),
        snapshot::encode(&canonicalize_attributes(&graph)).as_ref()
    );
}

#[test]
fn strict_vertex_mode_rejects_typos() {
    let dir = workdir("strict");
    std::fs::write(dir.join("g.edges"), "0 1\n1 2\n").unwrap();
    std::fs::write(dir.join("g.attrs"), "0 db\n99 ml\n").unwrap();
    let opts = IngestOptions {
        unknown_vertices: UnknownVertexPolicy::Error,
        ..IngestOptions::default()
    };
    let err = ingest_files(
        SourceFormat::EdgeList,
        &dir.join("g.edges"),
        Some(&dir.join("g.attrs")),
        &opts,
    )
    .unwrap_err();
    assert!(err.to_string().contains("99"), "{err}");
}

// ---- CLI-level pipeline ----

fn scpm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scpm"))
        .args(args)
        .output()
        .expect("failed to spawn scpm binary")
}

/// Mining stdout minus the run-summary line (it contains wall-clock time).
fn stdout_without_summary(out: &Output) -> String {
    assert!(
        out.status.success(),
        "scpm failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| !l.starts_with("examined="))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn cli_ingest_then_mine_snapshot_matches_in_memory_graph() {
    let dir = workdir("cli");
    let graph = dblp_like(0.005, 19).graph;
    let (edges, attrs) = materialize(&graph, &dir);

    // Disk path through the binary: ingest, then mine the snapshot.
    let ingested_snap = dir.join("ingested.snap");
    let out = scpm(&[
        "ingest",
        "--edges",
        edges.to_str().unwrap(),
        "--attrs",
        attrs.to_str().unwrap(),
        "--out",
        ingested_snap.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("numeric ids"), "{text}");
    assert!(text.contains("snapshot v3"), "{text}");

    // In-memory path: write the canonical graph's snapshot directly.
    let reference_snap = dir.join("reference.snap");
    snapshot::save_snapshot(&canonicalize_attributes(&graph), &reference_snap).unwrap();
    // The two snapshot files are byte-identical on disk.
    assert_eq!(
        std::fs::read(&ingested_snap).unwrap(),
        std::fs::read(&reference_snap).unwrap()
    );

    let mine_args = |snap: &Path| -> Vec<String> {
        vec![
            "mine".into(),
            "--snapshot".into(),
            snap.to_str().unwrap().into(),
            "--sigma-min".into(),
            "8".into(),
            "--min-size".into(),
            "6".into(),
            "--eps-min".into(),
            "0.1".into(),
            "--max-attrs".into(),
            "2".into(),
            "--top-k".into(),
            "2".into(),
        ]
    };
    let run = |snap: &Path| {
        let args = mine_args(snap);
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        stdout_without_summary(&scpm(&refs))
    };
    assert_eq!(
        run(&ingested_snap),
        run(&reference_snap),
        "CLI mining output differs between ingested and in-memory snapshots"
    );
}

#[test]
fn cli_ingest_error_paths_exit_nonzero() {
    let dir = workdir("cli_err");
    let edges = dir.join("g.edges");
    std::fs::write(&edges, "0 1\n1\n").unwrap(); // truncated second line
    let out = scpm(&[
        "ingest",
        "--edges",
        edges.to_str().unwrap(),
        "--out",
        dir.join("g.snap").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 2"), "{err}");

    // Stale snapshot (version 1 header) fails cleanly through mine.
    let graph = dblp_like(0.003, 7).graph;
    let mut raw = snapshot::encode(&graph).to_vec();
    raw[8..12].copy_from_slice(&1u32.to_le_bytes());
    let stale = dir.join("stale.snap");
    std::fs::write(&stale, &raw).unwrap();
    let out = scpm(&["mine", "--snapshot", stale.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("version 1"), "{err}");
}
