//! Three-way backend differential at the full-pipeline level: the
//! sorted-slice, scalar-bitset and SIMD-bitset representations must
//! produce byte-identical catalogs and identical counters under every
//! thread count. Complements the engine-level proptest
//! (`crates/quasiclique/tests/proptest_engine.rs`) by exercising the
//! parallel driver, the per-attribute-set reduction and the counter
//! plumbing through `ScpmStats::merge`.
//!
//! On a build without the `simd` feature, `Representation::Simd` is the
//! scalar bitset path by construction; the test runs (and must pass)
//! under both feature configurations — CI's feature-matrix job does
//! exactly that.

use scpm_core::{run_parallel_with, ParallelConfig, Scpm, ScpmParams, ScpmResult, ScpmStats};
use scpm_datasets::dblp_like;
use scpm_graph::figure1::figure1;
use scpm_graph::AttributedGraph;
use scpm_quasiclique::Representation;

/// Everything a run reports except wall-clock, as one comparable string.
fn fingerprint(r: &ScpmResult) -> String {
    format!("{:?}|{:?}", r.reports, r.patterns)
}

/// Counters with the wall-clock field neutralized for exact comparison.
fn counters(r: &ScpmResult) -> ScpmStats {
    let mut s = r.stats;
    s.elapsed = std::time::Duration::ZERO;
    s
}

fn sweep(g: &AttributedGraph, params: ScpmParams) {
    // The scalar bitset path is the reference everything else must hit.
    let reference = Scpm::new(g, params.clone().with_repr(Representation::Bitset)).run();
    let ref_print = fingerprint(&reference);
    let ref_stats = counters(&reference);
    assert!(
        ref_stats.qc_probes_elided > 0,
        "bitset run elided no probes — the batched kernels never engaged"
    );
    assert!(ref_stats.qc_batch_ops <= ref_stats.qc_kernel_ops);

    for threads in [1usize, 2, 4] {
        let config = ParallelConfig::new(threads);
        let mut per_repr: Vec<(Representation, ScpmStats)> = Vec::new();
        for repr in [
            Representation::Slice,
            Representation::Bitset,
            Representation::Simd,
        ] {
            let run = run_parallel_with(g, params.clone().with_repr(repr), &config);
            assert_eq!(
                fingerprint(&run),
                ref_print,
                "{repr:?} catalog diverges at {threads} threads"
            );
            let stats = counters(&run);
            // The semantic counters (tree shape, prune events, report and
            // pattern counts) never depend on representation or threads.
            assert_eq!(
                (stats.qc_nodes_coverage, stats.qc_nodes_topk),
                (ref_stats.qc_nodes_coverage, ref_stats.qc_nodes_topk),
                "{repr:?} search tree diverges at {threads} threads"
            );
            per_repr.push((repr, stats));
        }
        let slice = per_repr[0].1;
        // The batched promotion kernels exist only on the bitset path.
        assert_eq!(slice.qc_probes_elided, 0, "slice elided probes");
        assert_eq!(slice.qc_batch_ops, 0, "slice ran batched sweeps");
        // Scalar-bitset and SIMD-bitset agree on *every* counter — the
        // word-count work model is backend-independent — and on every
        // thread count the totals equal the serial reference (u64 sums
        // commute across the merge order).
        assert_eq!(per_repr[1].1, ref_stats, "bitset at {threads} threads");
        assert_eq!(per_repr[2].1, ref_stats, "simd at {threads} threads");
    }
}

#[test]
fn figure1_backends_and_threads_agree() {
    sweep(
        &figure1(),
        ScpmParams::new(3, 0.6, 4).with_eps_min(0.5).with_top_k(5),
    );
}

#[test]
fn planted_partition_backends_and_threads_agree() {
    let dataset = dblp_like(0.01, 21);
    sweep(
        &dataset.graph,
        ScpmParams::new(8, 0.5, 8)
            .with_eps_min(0.1)
            .with_top_k(3)
            .with_max_attrs(3),
    );
}
