//! Directed incremental-mining regressions on the paper's Figure 1 graph.
//!
//! Each test applies one hand-crafted delta whose effect on the Table-1
//! catalog is known in advance — a new pattern appears, an existing one
//! dies, only ε of a survivor moves, or nothing mined is touched at all —
//! and asserts three things:
//!
//! 1. **Dirty-set exactness**: `DirtySet::from_delta` marks exactly the
//!    attribute sets whose `V(S)` or `G(S)` changed (Theorems 3–5 justify
//!    leaving the rest untouched), no more and no fewer.
//! 2. **Catalog effect**: the predicted pattern-level change happened.
//! 3. **Byte-identity**: the incremental catalog equals a full re-mine.

use std::sync::Arc;

use scpm_core::{
    DirtySet, EvalMemo, IncrementalCtx, IncrementalStats, NullModelCache, ParallelConfig, Scpm,
    ScpmParams, ScpmResult,
};
use scpm_graph::attributed::AttributedGraph;
use scpm_graph::figure1::figure1;
use scpm_graph::GraphDelta;
use scpm_serve::PatternCatalog;

/// Table-1 parameters: σmin = 3, γmin = 0.6, min_size = 4, εmin = 0.5.
fn table1_params() -> ScpmParams {
    ScpmParams::new(3, 0.6, 4).with_eps_min(0.5)
}

fn catalog_json(graph: &AttributedGraph, params: &ScpmParams, result: ScpmResult) -> String {
    PatternCatalog::build(graph, params, result, 0)
        .full_json()
        .render()
}

fn full_mine(graph: &AttributedGraph, params: &ScpmParams) -> ScpmResult {
    Scpm::with_cache(graph, params.clone(), Arc::new(NullModelCache::new()))
        .run_scheduled(&ParallelConfig::new(1))
}

fn record_mine(graph: &AttributedGraph, params: &ScpmParams) -> (ScpmResult, EvalMemo) {
    let mut scpm = Scpm::with_cache(graph, params.clone(), Arc::new(NullModelCache::new()))
        .with_incremental(IncrementalCtx::recording());
    let result = scpm.run_scheduled(&ParallelConfig::new(1));
    let (memo, _) = scpm.take_incremental().unwrap().into_parts();
    (result, memo)
}

/// Applies `delta` to Figure 1, mines it incrementally off a recorded
/// memo, asserts byte-identity with a full re-mine, and returns the
/// updated graph, its result, the dirty set, and the incremental stats.
fn drive(delta: &str) -> (AttributedGraph, ScpmResult, DirtySet, IncrementalStats) {
    let base = figure1();
    let params = table1_params();
    let (_, memo) = record_mine(&base, &params);
    let applied = GraphDelta::parse(delta).unwrap().apply(&base).unwrap();
    let dirty = DirtySet::from_delta(&applied.graph, &applied);
    let mut scpm = Scpm::with_cache(
        &applied.graph,
        params.clone(),
        Arc::new(NullModelCache::new()),
    )
    .with_incremental(IncrementalCtx::update(
        Arc::new(memo),
        DirtySet::from_delta(&applied.graph, &applied),
    ));
    let result = scpm.run_scheduled(&ParallelConfig::new(1));
    let (_, stats) = scpm.take_incremental().unwrap().into_parts();
    assert_eq!(
        catalog_json(&applied.graph, &params, result.clone()),
        catalog_json(&applied.graph, &params, full_mine(&applied.graph, &params)),
        "incremental catalog diverged from full re-mine"
    );
    (applied.graph, result, dirty, stats)
}

/// Giving paper-vertex 4 attribute C and wiring edge 1–4 turns the C
/// vertices {1,3,4,6} into a γ=0.6 quasi-clique of size 4: a pattern that
/// did not exist in Table 1 is born. The dirty region is exactly the
/// sets containing C plus the subsets of F(1) ∩ F(4) = {A, C}.
#[test]
fn delta_creating_a_new_pattern() {
    let base = figure1();
    let params = table1_params();
    let base_result = full_mine(&base, &params);
    let c = base.attr_id("C").unwrap();
    let base_c = base_result.report_for(&[c]).unwrap();
    assert_eq!(base_c.epsilon, 0.0, "Figure 1 has ε({{C}}) = 0");
    assert!(!base_c.qualified);

    // Paper labels 4 and 1 are ids 3 and 0.
    let (graph, result, dirty, _) = drive("a 3 C\ne 0 3\n");

    let a = graph.attr_id("A").unwrap();
    let b = graph.attr_id("B").unwrap();
    let d = graph.attr_id("D").unwrap();
    // Exactly C is dirty by assignment; exactly one novel-edge cap {A, C}.
    assert_eq!(dirty.dirty_attr_ids(), vec![c]);
    assert_eq!(dirty.num_edge_caps(), 1);
    assert!(dirty.is_dirty(&[c]));
    assert!(dirty.is_dirty(&[a]), "edge 1-4 changes G({{A}})");
    assert!(dirty.is_dirty(&[a, c]));
    assert!(!dirty.is_dirty(&[b]), "B is untouched by this delta");
    assert!(!dirty.is_dirty(&[d]), "D gains no vertex and no edge");
    assert!(!dirty.is_dirty(&[a, b]));

    let new_c = result.report_for(&[c]).unwrap();
    assert_eq!(new_c.support, 4);
    assert_eq!(new_c.epsilon, 1.0, "all four C vertices are now covered");
    assert!(new_c.qualified);
    assert!(
        result.patterns.iter().any(|p| p.attrs == vec![c]),
        "a {{C}} pattern must be born"
    );
    assert!(
        result.patterns.len() > base_result.patterns.len(),
        "the catalog must grow"
    );
}

/// Appending seven isolated vertices that all carry B dilutes
/// ε({B}) = 6/6 down to 6/13 < εmin: the {B} pattern dies. The kill is
/// exactly scoped — the new vertices carry only B, so V({A,B}) is
/// unchanged and the {A,B} pattern survives. Only sets containing B are
/// dirty; there are no new edges, so no edge caps at all.
#[test]
fn delta_killing_an_existing_pattern() {
    let base = figure1();
    let params = table1_params();
    let base_result = full_mine(&base, &params);
    let b = base.attr_id("B").unwrap();
    let base_b = base_result.report_for(&[b]).unwrap();
    assert_eq!(
        base_b.epsilon, 1.0,
        "Figure 1(d): all six B vertices covered"
    );
    assert!(base_b.qualified);
    assert!(base_result.patterns.iter().any(|p| p.attrs == vec![b]));

    let delta = "v 7\n".to_string() + &(11..18).map(|v| format!("a {v} B\n")).collect::<String>();
    let (graph, result, dirty, _) = drive(&delta);

    let a = graph.attr_id("A").unwrap();
    assert_eq!(dirty.dirty_attr_ids(), vec![b]);
    assert_eq!(dirty.num_edge_caps(), 0, "no edges were inserted");
    assert!(dirty.is_dirty(&[b]));
    assert!(dirty.is_dirty(&[a, b]), "supersets of B are dirty");
    assert!(!dirty.is_dirty(&[a]), "V(A) and G(A) are unchanged");

    let new_b = result.report_for(&[b]).unwrap();
    assert_eq!(new_b.support, 13);
    assert!((new_b.epsilon - 6.0 / 13.0).abs() < 1e-12);
    assert!(!new_b.qualified, "ε({{B}}) = 6/13 < 0.5 disqualifies B");
    assert!(
        result.patterns.iter().all(|p| p.attrs != vec![b]),
        "the {{B}} pattern must die"
    );
    let ab_qualified = result.report_for(&[a, b]).map(|r| r.qualified);
    assert_eq!(
        ab_qualified,
        Some(true),
        "{{A,B}} keeps ε = 1: the kill must not leak to supersets"
    );
    assert!(result.patterns.len() < base_result.patterns.len());
}

/// One isolated vertex carrying A moves ε({A}) from 9/11 to 9/12 without
/// touching any quasi-clique: the survivor's ε changes, its patterns do
/// not. Only sets containing A are dirty.
#[test]
fn delta_changing_only_epsilon_of_a_survivor() {
    let base = figure1();
    let params = table1_params();
    let base_result = full_mine(&base, &params);
    let a = base.attr_id("A").unwrap();
    assert!((base_result.report_for(&[a]).unwrap().epsilon - 9.0 / 11.0).abs() < 1e-12);

    let (graph, result, dirty, _) = drive("v 1\na 11 A\n");

    let b = graph.attr_id("B").unwrap();
    let c = graph.attr_id("C").unwrap();
    assert_eq!(dirty.dirty_attr_ids(), vec![a]);
    assert_eq!(dirty.num_edge_caps(), 0);
    assert!(dirty.is_dirty(&[a]));
    assert!(dirty.is_dirty(&[a, b]));
    assert!(!dirty.is_dirty(&[b]));
    assert!(!dirty.is_dirty(&[b, c]));

    let new_a = result.report_for(&[a]).unwrap();
    assert_eq!(new_a.support, 12);
    assert!((new_a.epsilon - 9.0 / 12.0).abs() < 1e-12);
    assert!(new_a.qualified, "ε = 0.75 still clears εmin = 0.5");
    assert_eq!(
        result.patterns.len(),
        base_result.patterns.len(),
        "no quasi-clique changed, so no pattern may appear or die"
    );
    for (p, q) in result.patterns.iter().zip(&base_result.patterns) {
        assert_eq!(p.attrs, q.attrs);
        assert_eq!(p.clique.vertices, q.clique.vertices);
    }
}

/// An appended vertex with no attributes, wired to vertex 1, has an empty
/// attribute intersection with its endpoint: no mined set's `V(S)` or
/// `G(S)` changes, the dirty set is empty, and the update replays every
/// examined set without a single live evaluation.
#[test]
fn delta_touching_no_mined_attributes_dirties_nothing() {
    let base = figure1();
    let params = table1_params();
    let examined = full_mine(&base, &params).stats.attribute_sets_examined;

    let (_, result, dirty, stats) = drive("v 1\ne 11 0\n");

    assert!(dirty.is_empty(), "empty caps must be dropped entirely");
    assert_eq!(dirty.num_edge_caps(), 0);
    assert_eq!(stats.reevaluated, 0, "nothing may be evaluated live");
    assert_eq!(stats.reused, examined, "every examined set must replay");
    assert_eq!(result.patterns.len(), 7, "Table 1 is untouched");
}
