//! Crash-recovery differential harness — the durability proof layer.
//!
//! A fault-free run of a fixed workload (seed checkpoint → journaled
//! deltas → periodic checkpoints) counts every durability operation it
//! performs: file creates, payload writes, syncs, and renames. The
//! harness then re-runs the workload once per (operation index × fault
//! mode), injecting an I/O error, a short write, or a simulated crash at
//! exactly that operation, and asserts the store recovers to a
//! **committed prefix**: the graph is byte-identical (snapshot encoding)
//! to folding exactly the successfully-journaled deltas over the base,
//! and the recovered mining result is byte-identical to a from-scratch
//! mine of that graph. No fault point may lose an acknowledged delta,
//! resurrect an unacknowledged one, or leave the store unrecoverable.

use std::path::PathBuf;
use std::sync::Arc;

use scpm_core::{
    checkpoint_with, recover, replay_mine, DataDir, EvalMemo, IncrementalCtx, NullModelCache,
    ParallelConfig, Scpm, ScpmParams, ScpmResult, StoreError,
};
use scpm_graph::attributed::AttributedGraph;
use scpm_graph::figure1::figure1;
use scpm_graph::{snapshot, FaultInjector, FaultMode, FaultPlan, GraphDelta};

fn params() -> ScpmParams {
    ScpmParams::new(3, 0.6, 4)
        .with_eps_min(0.5)
        .with_top_k(5)
        .with_max_attrs(3)
}

fn tdir(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("scpm_crash_recovery_{name}"));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// The workload's delta stream. Every delta must apply cleanly over the
/// base graph extended by ANY subset of the deltas before it — a faulted
/// run skips the delta whose append failed (exactly as the server
/// refuses the update), so recovery replays an arbitrary committed
/// prefix. Vertex-adding deltas carry their own `v` directive and only
/// reference base vertices or the vertex they add.
const DELTAS: &[&str] = &[
    "a 0 XA\n",
    "v 1\ne 0 11\na 11 XC\n",
    "a 5 XB\n",
    "v 1\ne 1 11\n",
    "a 2 XD\n",
    "a 7 XE\n",
];

/// Checkpoint after this many newly committed deltas.
const CHECKPOINT_EVERY: usize = 2;

/// One recording mine (no fault points: mining is pure computation).
fn record_mine(
    graph: &AttributedGraph,
    p: &ScpmParams,
    config: &ParallelConfig,
) -> (ScpmResult, EvalMemo) {
    let cache = Arc::new(NullModelCache::new());
    let mut scpm =
        Scpm::with_cache(graph, p.clone(), cache).with_incremental(IncrementalCtx::recording());
    let result = scpm.run_scheduled(config);
    let (memo, _) = scpm
        .take_incremental()
        .expect("recording run keeps its context")
        .into_parts();
    (result, memo)
}

/// Outcome of one (possibly faulted) workload run.
struct Outcome {
    /// Indices into [`DELTAS`] whose journal append succeeded, in order.
    committed: Vec<usize>,
    /// Whether the simulated process died mid-workload.
    crashed: bool,
}

/// Runs the durable workload under `inj`: seed checkpoint at generation
/// 0, then append → apply each delta, checkpointing every
/// [`CHECKPOINT_EVERY`] commits and once more at graceful shutdown.
/// Mirrors the server's write-ahead discipline: a failed append means
/// the delta is refused (skipped entirely), a failed checkpoint only
/// means a longer replay, and a crash abandons the process on the spot.
fn run_workload(inj: &FaultInjector, dir: &DataDir, config: &ParallelConfig) -> Outcome {
    let p = params();
    let mut graph = figure1();
    let mut committed = Vec::new();
    let crashed = |c: Vec<usize>| Outcome {
        committed: c,
        crashed: true,
    };

    let (_, memo) = record_mine(&graph, &p, config);
    let mut journal = match checkpoint_with(inj, dir, 0, &graph, &memo, &p) {
        Ok(j) => j,
        // Seed failed: a real operator would see the startup error. A
        // crash here ends the process; an error leaves nothing durable.
        Err(_) => {
            return Outcome {
                committed,
                crashed: inj.crashed(),
            }
        }
    };
    let mut last_checkpoint = 0usize;

    for (i, text) in DELTAS.iter().enumerate() {
        let delta = GraphDelta::parse(text).expect("workload delta parses");
        match journal.append(&delta) {
            Ok(_) => {}
            Err(_) if inj.crashed() => return crashed(committed),
            // One-shot fault: the append rolled back, the delta is
            // refused, disk and memory still agree. Skip it.
            Err(_) => continue,
        }
        graph = delta.apply(&graph).expect("committed delta applies").graph;
        committed.push(i);

        if committed.len() - last_checkpoint >= CHECKPOINT_EVERY {
            let (_, memo) = record_mine(&graph, &p, config);
            match checkpoint_with(inj, dir, committed.len() as u64, &graph, &memo, &p) {
                Ok(j) => {
                    journal = j;
                    last_checkpoint = committed.len();
                }
                Err(_) if inj.crashed() => return crashed(committed),
                // Failed checkpoint: keep appending to the old journal;
                // recovery just replays more deltas.
                Err(_) => {}
            }
        }
    }

    // Graceful shutdown checkpoint (skipped when already at the tip).
    if last_checkpoint != committed.len() {
        let (_, memo) = record_mine(&graph, &p, config);
        match checkpoint_with(inj, dir, committed.len() as u64, &graph, &memo, &p) {
            Ok(_) => {}
            Err(_) if inj.crashed() => return crashed(committed),
            Err(_) => {}
        }
    }
    Outcome {
        committed,
        crashed: false,
    }
}

/// Asserts the directory recovers to exactly the committed prefix:
/// byte-identical graph, mining result byte-identical to a full re-mine.
fn verify_recovery(dir: &DataDir, committed: &[usize], config: &ParallelConfig, ctx: &str) {
    let state = match recover(dir) {
        Ok(state) => state,
        // Only a fault during the very first seed write may leave the
        // store uninitialized — nothing was ever acknowledged.
        Err(StoreError::Uninitialized) => {
            assert!(
                committed.is_empty(),
                "{ctx}: store lost {} committed deltas",
                committed.len()
            );
            return;
        }
        Err(e) => panic!("{ctx}: recovery failed: {e}"),
    };
    let recovered = replay_mine(state, &params(), config)
        .unwrap_or_else(|e| panic!("{ctx}: replay failed: {e}"));

    let mut expected = figure1();
    for &i in committed {
        expected = GraphDelta::parse(DELTAS[i])
            .unwrap()
            .apply(&expected)
            .expect("committed prefix applies")
            .graph;
    }
    assert_eq!(
        recovered.generation,
        committed.len() as u64,
        "{ctx}: recovered to the wrong generation"
    );
    assert!(
        snapshot::encode(&recovered.graph).as_ref() == snapshot::encode(&expected).as_ref(),
        "{ctx}: recovered graph is not the committed prefix"
    );

    // Differential check: the replayed mine must be byte-identical to a
    // from-scratch mine of the committed-prefix graph. (`ScpmStats`
    // carries wall-clock timing, so compare reports and patterns.)
    let (full, _) = record_mine(&expected, &params(), config);
    assert_eq!(
        format!("{:?}", recovered.result.reports),
        format!("{:?}", full.reports),
        "{ctx}: recovered reports differ from a full re-mine"
    );
    assert_eq!(
        format!("{:?}", recovered.result.patterns),
        format!("{:?}", full.patterns),
        "{ctx}: recovered patterns differ from a full re-mine"
    );
}

#[test]
fn every_reachable_fault_point_recovers_to_a_committed_prefix() {
    let config = ParallelConfig::new(2);

    // Pass 1 — fault-free, counting: establishes the happy path and the
    // number of reachable durability operations to sweep.
    let root = tdir("count");
    let dir = DataDir::open(&root).unwrap();
    let counter = FaultInjector::plan(FaultPlan {
        op_index: u64::MAX,
        mode: FaultMode::Error,
    });
    let outcome = run_workload(&counter, &dir, &config);
    assert!(!outcome.crashed);
    assert_eq!(outcome.committed.len(), DELTAS.len());
    verify_recovery(&dir, &outcome.committed, &config, "fault-free");
    let total_ops = counter.ops_seen();
    let _ = std::fs::remove_dir_all(&root);
    assert!(total_ops > 0, "workload exercised no durability operations");
    eprintln!("sweeping {total_ops} fault points x 3 modes");

    // Pass 2 — the sweep: every (operation × mode) pair.
    for mode in [FaultMode::Error, FaultMode::ShortWrite, FaultMode::Crash] {
        for k in 0..total_ops {
            let ctx = format!("{mode:?}@{k}");
            let root = tdir(&ctx);
            let dir = DataDir::open(&root).unwrap();
            let inj = FaultInjector::plan(FaultPlan { op_index: k, mode });
            let outcome = run_workload(&inj, &dir, &config);
            if matches!(mode, FaultMode::Crash) {
                assert!(
                    outcome.crashed || outcome.committed.len() == DELTAS.len(),
                    "{ctx}: crash plan neither fired nor finished"
                );
            }
            verify_recovery(&dir, &outcome.committed, &config, &ctx);
            let _ = std::fs::remove_dir_all(&root);
        }
    }
}

/// The environment hook drives the same injector the sweep uses: a
/// malformed spec must be rejected loudly, a well-formed one must parse
/// into the planned fault.
#[test]
fn fault_env_specs_parse_strictly() {
    assert!(FaultInjector::from_env().is_ok());
    // `from_env` reads SCPM_FAULT; exercising the parse paths directly
    // would race other tests via set_var, so only the unset path runs
    // here. The parse itself is covered in the graph crate's unit tests.
}
