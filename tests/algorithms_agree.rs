//! Cross-algorithm consistency: SCPM (DFS), SCPM (level-wise), SCORP and
//! the naive baseline must agree on qualifying attribute sets and emitted
//! patterns whenever their parameter semantics coincide.

use scpm_core::{run_naive, Scorp, Scpm, ScpmParams, ScpmResult};
use scpm_datasets::{citeseer_like, dblp_like};
use scpm_graph::figure1::figure1;

/// Qualified reports, canonicalized.
fn qualified(r: &ScpmResult) -> Vec<(Vec<u32>, usize, i64)> {
    let mut v: Vec<(Vec<u32>, usize, i64)> = r
        .reports
        .iter()
        .filter(|rep| rep.qualified)
        .map(|rep| {
            (
                rep.attrs.clone(),
                rep.support,
                (rep.epsilon * 1e9).round() as i64,
            )
        })
        .collect();
    v.sort();
    v
}

fn patterns(r: &ScpmResult) -> Vec<(Vec<u32>, Vec<u32>)> {
    let mut v: Vec<(Vec<u32>, Vec<u32>)> = r
        .patterns
        .iter()
        .map(|p| (p.attrs.clone(), p.clique.vertices.clone()))
        .collect();
    v.sort();
    v
}

#[test]
fn four_algorithms_agree_on_figure1() {
    let g = figure1();
    // δmin = 0 and k = ∞ puts all four algorithms on the same semantics.
    let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
    let dfs = Scpm::new(&g, params.clone()).run();
    let bfs = Scpm::new(&g, params.clone()).run_levelwise();
    let scorp = Scorp::new(&g, params.clone()).run();
    let naive = run_naive(&g, &params);

    let q = qualified(&dfs);
    assert_eq!(q, qualified(&bfs), "levelwise");
    assert_eq!(q, qualified(&scorp), "scorp");
    assert_eq!(q, qualified(&naive), "naive");

    let p = patterns(&dfs);
    assert_eq!(p, patterns(&bfs), "levelwise");
    assert_eq!(p, patterns(&scorp), "scorp");
    assert_eq!(p, patterns(&naive), "naive");
    assert_eq!(p.len(), 7, "Table 1 has seven rows");
}

#[test]
fn dfs_and_levelwise_agree_on_dblp_like() {
    let dataset = dblp_like(0.01, 3);
    let g = &dataset.graph;
    let params = ScpmParams::new(8, 0.5, 6)
        .with_eps_min(0.1)
        .with_delta_min(1.0)
        .with_top_k(3)
        .with_max_attrs(3);
    let scpm = Scpm::new(g, params);
    let dfs = scpm.run();
    let bfs = scpm.run_levelwise();
    assert_eq!(qualified(&dfs), qualified(&bfs));
    assert_eq!(patterns(&dfs), patterns(&bfs));
    // Level-wise may additionally prune via the Apriori subset check; it
    // must never examine *more* sets than DFS.
    assert!(bfs.stats.attribute_sets_examined <= dfs.stats.attribute_sets_examined);
}

#[test]
fn scorp_and_scpm_agree_when_semantics_coincide_on_citeseer_like() {
    let dataset = citeseer_like(0.005, 5);
    let g = &dataset.graph;
    // Unbounded k, δmin = 0: SCORP ≡ SCPM semantically.
    let params = ScpmParams::new(10, 0.5, 5)
        .with_eps_min(0.2)
        .with_max_attrs(2);
    let scorp = Scorp::new(g, params.clone()).run();
    let scpm = Scpm::new(g, params).run();
    assert_eq!(qualified(&scorp), qualified(&scpm));
    assert_eq!(patterns(&scorp), patterns(&scpm));
}

#[test]
fn topk_patterns_are_prefix_of_scorp_complete_enumeration() {
    let g = figure1();
    let base = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
    let complete = Scorp::new(&g, base.clone()).run();
    let top1 = Scpm::new(&g, base.with_top_k(1)).run();
    // Every top-k pattern appears in the complete enumeration.
    let all = patterns(&complete);
    for p in patterns(&top1) {
        assert!(all.contains(&p), "pattern {p:?} missing from SCORP output");
    }
    // And per attribute set the top-1 is the largest.
    for rep in complete.reports.iter().filter(|r| r.qualified) {
        let full: Vec<_> = complete.patterns_for(&rep.attrs);
        let best: Vec<_> = top1.patterns_for(&rep.attrs);
        assert_eq!(best.len(), 1, "{:?}", rep.attrs);
        let max_size = full.iter().map(|p| p.clique.size()).max().unwrap();
        assert_eq!(best[0].clique.size(), max_size, "{:?}", rep.attrs);
    }
}

#[test]
fn delta_threshold_separates_scpm_from_scorp() {
    let dataset = dblp_like(0.01, 11);
    let g = &dataset.graph;
    let base = ScpmParams::new(8, 0.5, 6)
        .with_eps_min(0.05)
        .with_top_k(2)
        .with_max_attrs(2);
    // A harsh δmin: SCPM filters to statistically significant sets only;
    // SCORP (which predates δ) keeps reporting by ε alone.
    let strict = base.clone().with_delta_min(1e6);
    let scpm = Scpm::new(g, strict.clone()).run();
    let scorp = Scorp::new(g, strict).run();
    let scpm_q = qualified(&scpm).len();
    let scorp_q = qualified(&scorp).len();
    assert!(
        scpm_q <= scorp_q,
        "δmin must only shrink SCPM's qualifying sets ({scpm_q} vs {scorp_q})"
    );
}
