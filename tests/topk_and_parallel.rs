//! Top-k consistency (§3.2.3) and parallel-driver equivalence on dataset
//! graphs: the work-stealing scheduler, the branch-level baseline, and the
//! shared null-model cache must all be invisible in the output.

use std::sync::Arc;

use proptest::prelude::*;
use scpm_core::{
    run_naive, run_parallel, run_parallel_branch_level, run_parallel_with, AnalyticalModel,
    NullModelCache, ParallelConfig, Scpm, ScpmParams, ScpmResult, DEFAULT_SPLIT_DEPTH,
};
use scpm_datasets::{dblp_like, lastfm_like};
use scpm_graph::generators::erdos_renyi::gnm;
use scpm_quasiclique::QcConfig;

fn pattern_rows(r: &ScpmResult) -> Vec<(Vec<u32>, Vec<u32>)> {
    let mut v: Vec<(Vec<u32>, Vec<u32>)> = r
        .patterns
        .iter()
        .map(|p| (p.attrs.clone(), p.clique.vertices.clone()))
        .collect();
    v.sort();
    v
}

#[test]
fn top_k_is_prefix_of_larger_k() {
    let dataset = dblp_like(0.01, 5);
    let g = &dataset.graph;
    let base = ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.2)
        .with_max_attrs(2);
    let run_k = |k: usize| Scpm::new(g, base.clone().with_top_k(k)).run();
    let k2 = run_k(2);
    let k5 = run_k(5);
    // For every qualifying attribute set, the k=2 patterns must be the two
    // best of the k=5 list.
    for rep in k2.reports.iter().filter(|r| r.qualified) {
        let p2: Vec<_> = k2.patterns_for(&rep.attrs);
        let p5: Vec<_> = k5.patterns_for(&rep.attrs);
        assert!(p2.len() <= 2);
        assert!(p5.len() >= p2.len(), "k=5 returned fewer than k=2");
        for (a, b) in p2.iter().zip(p5.iter()) {
            assert_eq!(a.clique.size(), b.clique.size(), "{:?}", rep.attrs);
            assert!(
                (a.clique.min_degree_ratio - b.clique.min_degree_ratio).abs() < 1e-12,
                "{:?}",
                rep.attrs
            );
        }
    }
}

#[test]
fn top_k_matches_naive_ranking() {
    let dataset = dblp_like(0.01, 7);
    let g = &dataset.graph;
    let params = ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.2)
        .with_top_k(3)
        .with_max_attrs(2);
    let scpm = Scpm::new(g, params.clone()).run();
    let naive = run_naive(g, &params);
    assert_eq!(pattern_rows(&scpm), pattern_rows(&naive));
}

#[test]
fn patterns_are_quasi_cliques_of_induced_graphs() {
    use scpm_graph::induced::InducedSubgraph;
    use scpm_quasiclique::QcConfig;
    let dataset = lastfm_like(0.005, 3);
    let g = &dataset.graph;
    let params = ScpmParams::new(8, 0.5, 5)
        .with_eps_min(0.1)
        .with_top_k(4)
        .with_max_attrs(2);
    let result = Scpm::new(g, params).run();
    let cfg = QcConfig::new(0.5, 5);
    assert!(!result.patterns.is_empty(), "expected some patterns");
    for p in &result.patterns {
        // Q ⊆ V(S).
        let vs = g.vertices_with_all(&p.attrs);
        assert!(
            p.clique
                .vertices
                .iter()
                .all(|v| vs.binary_search(v).is_ok()),
            "pattern vertices outside V(S)"
        );
        // Q satisfies the degree property inside G(S).
        let sub = InducedSubgraph::extract(g.graph(), &vs);
        let locals: Vec<u32> = p
            .clique
            .vertices
            .iter()
            .map(|&v| sub.to_local(v).unwrap())
            .collect();
        let mut sorted = locals.clone();
        sorted.sort_unstable();
        assert!(
            cfg.is_quasi_clique(&sub.graph, &sorted),
            "pattern is not a quasi-clique of G(S)"
        );
    }
}

/// Byte-level fingerprint of everything a run reports (the counters are
/// compared separately because `elapsed` is wall-clock).
fn fingerprint(r: &ScpmResult) -> String {
    format!("{:?}|{:?}", r.reports, r.patterns)
}

#[test]
fn determinism_sweep_on_planted_partition_graph() {
    // The synthetic DBLP stand-in is a planted-partition graph (dense
    // attribute-correlated communities over a preferential-attachment
    // background) with a skewed attribute-support distribution — the
    // workload where work stealing actually redistributes subtrees.
    let dataset = dblp_like(0.01, 21);
    let g = &dataset.graph;
    let params = ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.1)
        .with_top_k(3)
        .with_max_attrs(3);
    let serial = Scpm::new(g, params.clone()).run();
    let reference = fingerprint(&serial);
    for threads in [1usize, 2, 4, 8] {
        for split_depth in [0usize, DEFAULT_SPLIT_DEPTH] {
            let config = ParallelConfig::new(threads).with_split_depth(split_depth);
            let run = run_parallel_with(g, params.clone(), &config);
            assert_eq!(
                fingerprint(&run),
                reference,
                "threads {threads}, split_depth {split_depth}"
            );
            let mut stats = run.stats;
            stats.elapsed = serial.stats.elapsed;
            assert_eq!(
                stats, serial.stats,
                "threads {threads}, split_depth {split_depth}"
            );
        }
    }
    // The retained branch-level baseline is a third independent driver.
    let legacy = run_parallel_branch_level(g, params.clone(), 4);
    assert_eq!(fingerprint(&legacy), reference, "branch-level baseline");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// The shared null-model cache is transparent: a cached model returns
    /// exactly the values a fresh uncached evaluation produces, for any
    /// graph, quasi-clique configuration, and support.
    #[test]
    fn shared_null_cache_equals_uncached_model(
        seed in 0u64..1_000,
        sigma in 0usize..=80,
        gamma_tenths in 1usize..=10,
        min_size in 2usize..8,
    ) {
        let g = gnm(80, 240, seed);
        let cfg = QcConfig::new(gamma_tenths as f64 / 10.0, min_size);
        let cache = Arc::new(NullModelCache::new());
        let shared_a = AnalyticalModel::new(&g, &cfg).with_cache(cache.clone());
        let shared_b = AnalyticalModel::new(&g, &cfg).with_cache(cache.clone());
        let fresh = AnalyticalModel::new(&g, &cfg);

        let first = shared_a.expected(sigma);
        prop_assert_eq!(first, fresh.expected_uncached(sigma));
        // A second model on the same cache sees the identical value, and
        // the lookup is served from the memo.
        let hits_before = cache.hits();
        prop_assert_eq!(shared_b.expected(sigma), first);
        prop_assert!(cache.hits() > hits_before);
        prop_assert_eq!(cache.misses(), 1);
    }
}

#[test]
fn parallel_equals_serial_on_dataset() {
    let dataset = dblp_like(0.01, 21);
    let g = &dataset.graph;
    let params = ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.1)
        .with_top_k(3)
        .with_max_attrs(3);
    let serial = Scpm::new(g, params.clone()).run();
    for threads in [2, 4, 8] {
        let parallel = run_parallel(g, params.clone(), threads);
        assert_eq!(
            pattern_rows(&serial),
            pattern_rows(&parallel),
            "threads {threads}"
        );
        // Identical report lists, same order (branch-ordered merge).
        let s: Vec<_> = serial.reports.iter().map(|r| r.attrs.clone()).collect();
        let p: Vec<_> = parallel.reports.iter().map(|r| r.attrs.clone()).collect();
        assert_eq!(s, p, "threads {threads}");
    }
}
