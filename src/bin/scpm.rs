//! `scpm` — command-line interface for structural correlation pattern
//! mining.
//!
//! ```text
//! scpm ingest    --edges e.txt [--attrs a.txt] --out g.snap
//!                [--format auto|edgelist|adjacency|unified]
//!                [--ids auto|intern|numeric] [--self-loops drop|error]
//!                [--strict-vertices] [--raw-attr-order] [--top N]
//!                [--memory-budget BYTES]
//! scpm mine      --graph g.txt | --snapshot g.snap
//!                [--sigma-min N] [--gamma F] [--min-size N]
//!                [--eps-min F] [--delta-min F] [--top-k N] [--order dfs|bfs]
//!                [--min-attrs N] [--max-attrs N] [--threads N] [--split-depth N]
//!                [--algo scpm|levelwise|scorp|naive] [--repr bitset|slice|simd] [--limit N]
//!                [--json] [--mmap] [--memory-budget BYTES]
//! scpm update    --graph g.txt | --snapshot g.snap --delta d.txt
//!                [--out g2.snap] [--json] [+ the mine thresholds]
//! scpm serve     --graph g.txt | --snapshot g.snap [--port N] [--host H]
//!                [--threads N] [--split-depth N] [+ the mine thresholds]
//!                [--data-dir DIR] [--checkpoint-every N]
//! scpm recover   DIR [--threads N] [+ the mine thresholds]
//! scpm induce    --graph g.txt --attrs name,name [--dot out.dot]
//!                [--gamma F] [--min-size N] [--pvalue-sims N] [--seed N]
//! scpm generate  --dataset dblp|lastfm|citeseer|smalldblp [--scale F]
//!                [--seed N] --out g.txt|g.snap
//! scpm stats     --graph g.txt | --edges e.txt [--attrs a.txt]
//! scpm nullmodel --graph g.txt [--gamma F] [--min-size N] [--points N]
//!                [--sims N] [--seed N]
//! scpm convert   --graph g.txt --out g.snap   (and vice versa)
//! ```
//!
//! Graph files ending in `.snap` use the versioned binary snapshot format
//! (`scpm_graph::snapshot`); anything else uses the unified text format
//! (`scpm_graph::io`). `scpm ingest` additionally reads the split
//! interchange shapes real datasets ship in — edge lists, adjacency lists
//! and vertex→attribute tables — all specified in `docs/DATASETS.md`.

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

use std::sync::Arc;

use scpm_core::report::{render_patterns, render_summary, render_top_tables};
use scpm_core::{
    empirical_p_value, run_naive, run_parallel_with, AnalyticalModel, DirtySet, ExactModel,
    IncrementalCtx, NullModelCache, ParallelConfig, Scorp, Scpm, ScpmParams, SimulationModel,
    DEFAULT_SPLIT_DEPTH,
};
use scpm_datasets::ingest::{
    detect_format, ingest_files, IdPolicy, IngestOptions, SelfLoopPolicy, SourceFormat,
    UnknownVertexPolicy,
};
use scpm_datasets::{ingest_files_external, DatasetSpec, ExternalOptions};
use scpm_graph::io::{load_attributed, save_attributed, write_dot};
use scpm_graph::snapshot::{load_snapshot, save_snapshot};
use scpm_graph::stats::GraphSummary;
use scpm_graph::{AttributedGraph, GraphDelta};
use scpm_quasiclique::{QcConfig, Representation, SearchOrder};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // `scpm recover DIR` takes its data directory positionally; rewrite
    // it into the uniform `--data-dir DIR` shape before flag parsing.
    let rest: Vec<String> =
        if command == "recover" && rest.first().is_some_and(|a| !a.starts_with("--")) {
            std::iter::once("--data-dir".to_string())
                .chain(rest.iter().cloned())
                .collect()
        } else {
            rest.to_vec()
        };
    let flags = match Flags::parse(&rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "ingest" => ingest(&flags),
        "mine" => mine(&flags),
        "update" => update(&flags),
        "serve" => serve(&flags),
        "recover" => recover_cmd(&flags),
        "induce" => induce(&flags),
        "generate" => generate(&flags),
        "stats" => stats(&flags),
        "nullmodel" => nullmodel(&flags),
        "convert" => convert(&flags),
        "closed" => closed(&flags),
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  scpm ingest    --edges <file> [--attrs <file>] --out <file.snap>
                 [--format auto|edgelist|adjacency|unified]
                 [--ids auto|intern|numeric] [--self-loops drop|error]
                 [--strict-vertices] [--raw-attr-order] [--top N]
                 [--memory-budget BYTES]   (bounded-memory external pass)
  scpm mine      --graph <file> | --snapshot <file.snap>
                 [--sigma-min N] [--gamma F] [--min-size N]
                 [--eps-min F] [--delta-min F] [--top-k N] [--order dfs|bfs]
                 [--min-attrs N] [--max-attrs N] [--threads N] [--split-depth N]
                 [--algo scpm|levelwise|scorp|naive] [--repr bitset|slice|simd] [--limit N]
                 [--json] [--mmap] [--memory-budget BYTES]   (zero-copy out-of-core mine)
  scpm update    --graph <file> | --snapshot <file.snap> --delta <file>
                 [--out <file>[.snap]] [--json] [+ the mine thresholds]
  scpm serve     --graph <file> | --snapshot <file.snap> [--port N] [--host H]
                 [--threads N] [--split-depth N] [+ the mine thresholds]
                 [--data-dir <dir>] [--checkpoint-every N]
  scpm recover   <dir> [--threads N] [+ the mine thresholds]
  scpm induce    --graph <file> --attrs name,name [--dot <file>]
                 [--gamma F] [--min-size N] [--pvalue-sims N] [--seed N]
  scpm generate  --dataset dblp|lastfm|citeseer|smalldblp [--scale F] [--seed N]
                 --out <file>[.snap]
  scpm stats     --graph <file> | --edges <file> [--attrs <file>] [--format F]
  scpm nullmodel --graph <file> [--gamma F] [--min-size N] [--points N]
                 [--sims N] [--seed N] [--max-frac F]
  scpm convert   --graph <file> --out <file>
  scpm closed    --graph <file> [--sigma-min N] [--max-attrs N] [--limit N]

formats: see docs/DATASETS.md for the byte-level grammars";

/// Minimal `--flag value` parser (boolean flags take no value).
struct Flags {
    values: HashMap<String, String>,
    bools: Vec<String>,
}

const BOOL_FLAGS: &[&str] = &["naive", "strict-vertices", "raw-attr-order", "json", "mmap"];

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut values = HashMap::new();
        let mut bools = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("expected --flag, got `{arg}`"));
            };
            if BOOL_FLAGS.contains(&name) {
                bools.push(name.to_string());
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            values.insert(name.to_string(), value.clone());
            i += 2;
        }
        Ok(Flags { values, bools })
    }

    fn str(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn required(&self, name: &str) -> Result<&str, String> {
        self.str(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.str(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{name} `{v}`")),
        }
    }

    fn flag(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }
}

/// Loads a graph by extension: `.snap` = binary snapshot, else text.
fn load_any(path: &str) -> Result<AttributedGraph, String> {
    if path.ends_with(".snap") {
        load_snapshot(path).map_err(|e| format!("loading {path}: {e}"))
    } else {
        load_attributed(path).map_err(|e| format!("loading {path}: {e}"))
    }
}

/// Saves a graph by extension: `.snap` = binary snapshot, else text.
fn save_any(g: &AttributedGraph, path: &str) -> Result<(), String> {
    if path.ends_with(".snap") {
        save_snapshot(g, path).map_err(|e| format!("writing {path}: {e}"))
    } else {
        save_attributed(g, path).map_err(|e| format!("writing {path}: {e}"))
    }
}

/// Resolves the graph input: `--graph <file>` (format by extension) or
/// `--snapshot <file>` (strictly the binary snapshot format, no guessing).
fn load(flags: &Flags) -> Result<AttributedGraph, String> {
    match (flags.str("graph"), flags.str("snapshot")) {
        (Some(_), Some(_)) => Err("--graph and --snapshot are mutually exclusive".into()),
        (Some(path), None) => load_any(path),
        (None, Some(path)) => load_snapshot(path).map_err(|e| format!("loading {path}: {e}")),
        (None, None) => Err("--graph (or --snapshot) is required".into()),
    }
}

/// Parses the shared ingest flags into [`IngestOptions`].
fn ingest_opts_from(flags: &Flags) -> Result<IngestOptions, String> {
    let id_policy = match flags.str("ids").unwrap_or("auto") {
        "auto" => IdPolicy::Auto,
        "intern" => IdPolicy::Intern,
        "numeric" => IdPolicy::Numeric,
        other => {
            return Err(format!(
                "invalid --ids `{other}` (want auto|intern|numeric)"
            ))
        }
    };
    let self_loops = match flags.str("self-loops").unwrap_or("drop") {
        "drop" => SelfLoopPolicy::Drop,
        "error" => SelfLoopPolicy::Error,
        other => return Err(format!("invalid --self-loops `{other}` (want drop|error)")),
    };
    Ok(IngestOptions {
        id_policy,
        self_loops,
        unknown_vertices: if flags.flag("strict-vertices") {
            UnknownVertexPolicy::Error
        } else {
            UnknownVertexPolicy::Allow
        },
        canonical_attrs: !flags.flag("raw-attr-order"),
        top_attributes: flags.num("top", 10usize)?,
    })
}

/// Parses `--format`, defaulting to extension-based auto-detection.
fn format_from(flags: &Flags, structure: &Path) -> Result<SourceFormat, String> {
    match flags.str("format").unwrap_or("auto") {
        "auto" => Ok(detect_format(structure)),
        "edgelist" => Ok(SourceFormat::EdgeList),
        "adjacency" => Ok(SourceFormat::Adjacency),
        "unified" => Ok(SourceFormat::Unified),
        other => Err(format!(
            "invalid --format `{other}` (want auto|edgelist|adjacency|unified)"
        )),
    }
}

/// Runs the ingest pipeline shared by `scpm ingest` and raw-file `scpm
/// stats`: parse, normalize, report.
fn ingest_from_flags(flags: &Flags) -> Result<scpm_datasets::Ingested, String> {
    let structure = flags.required("edges")?;
    let structure = Path::new(structure);
    let format = format_from(flags, structure)?;
    let attrs = flags.str("attrs").map(Path::new);
    let opts = ingest_opts_from(flags)?;
    ingest_files(format, structure, attrs, &opts).map_err(|e| e.to_string())
}

/// Parses a byte count with an optional `k`/`m`/`g` suffix (powers of
/// 1024), e.g. `--memory-budget 256m`.
fn parse_bytes(text: &str) -> Result<usize, String> {
    let lower = text.to_ascii_lowercase();
    let (digits, shift) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(d) => (
            d,
            match lower.as_bytes()[lower.len() - 1] {
                b'k' => 10,
                b'm' => 20,
                _ => 30,
            },
        ),
        None => (lower.as_str(), 0),
    };
    let base: usize = digits
        .parse()
        .map_err(|_| format!("invalid byte count `{text}` (want e.g. 1048576, 64m, 2g)"))?;
    base.checked_shl(shift)
        .filter(|&v| v >> shift == base)
        .ok_or_else(|| format!("byte count `{text}` overflows"))
}

fn ingest(flags: &Flags) -> Result<(), String> {
    let out = flags.required("out")?;
    // A memory budget routes through the bounded-memory external pass,
    // which writes the snapshot itself (spill/merge, byte-identical to
    // the in-memory path — see crates/datasets/src/external.rs).
    if let Some(budget) = flags.str("memory-budget") {
        let budget = parse_bytes(budget)?;
        let structure = Path::new(flags.required("edges")?);
        let format = format_from(flags, structure)?;
        let attrs = flags.str("attrs").map(Path::new);
        let opts = ingest_opts_from(flags)?;
        let ext = ExternalOptions {
            memory_budget: budget,
            temp_dir: None,
        };
        let report = ingest_files_external(format, structure, attrs, &opts, &ext, Path::new(out))
            .map_err(|e| e.to_string())?;
        print!("{report}");
        let bytes = std::fs::metadata(out)
            .map_err(|e| format!("statting {out}: {e}"))?
            .len();
        println!(
            "wrote {out}: snapshot v{} ({} bytes, fnv1a-checksummed, external pass ≤ {budget} B buffers)",
            scpm_graph::snapshot::VERSION,
            bytes
        );
        return Ok(());
    }
    let ingested = ingest_from_flags(flags)?;
    print!("{}", ingested.report);
    let bytes = scpm_graph::snapshot::encode(&ingested.graph);
    // Atomic (temp → sync → rename): an interrupted ingest never leaves
    // a torn snapshot where a good one stood.
    scpm_graph::write_atomic(Path::new(out), &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: snapshot v{} ({} bytes, fnv1a-checksummed)",
        scpm_graph::snapshot::VERSION,
        bytes.len()
    );
    Ok(())
}

fn params_from(flags: &Flags) -> Result<ScpmParams, String> {
    let order = match flags.str("order").unwrap_or("dfs") {
        "dfs" => SearchOrder::Dfs,
        "bfs" => SearchOrder::Bfs,
        other => return Err(format!("invalid --order `{other}` (want dfs|bfs)")),
    };
    // Hot-loop representation A/B switch (docs/PERFORMANCE.md): results
    // are identical, only kernel costs differ.
    let repr = match flags.str("repr").unwrap_or("bitset") {
        "bitset" => Representation::Bitset,
        "slice" => Representation::Slice,
        // `simd` is only honored when the kernels were compiled in;
        // silently degrading to scalar would make perf A/B runs lie.
        "simd" if scpm_graph::bitadj::simd_compiled() => Representation::Simd,
        "simd" => {
            return Err("--repr simd requires a build with the `simd` feature \
                 (rebuild with `cargo build --features simd`)"
                .into())
        }
        other => return Err(format!("invalid --repr `{other}` (want bitset|slice|simd)")),
    };
    // Validate up front: QcConfig panics on out-of-range values, and a
    // CLI should fail with exit 1, not a panic.
    let gamma = flags.num("gamma", 0.5f64)?;
    if !(gamma > 0.0 && gamma <= 1.0) {
        return Err(format!("--gamma must be in (0, 1], got {gamma}"));
    }
    let min_size = flags.num("min-size", 5usize)?;
    if min_size == 0 {
        return Err("--min-size must be at least 1".into());
    }
    Ok(
        ScpmParams::new(flags.num("sigma-min", 10usize)?, gamma, min_size)
            .with_eps_min(flags.num("eps-min", 0.0f64)?)
            .with_delta_min(flags.num("delta-min", 0.0f64)?)
            .with_top_k(flags.num("top-k", 5usize)?)
            .with_min_attrs(flags.num("min-attrs", 1usize)?)
            .with_max_attrs(flags.num("max-attrs", 3usize)?)
            .with_order(order)
            .with_repr(repr),
    )
}

/// `scpm mine --mmap`: the out-of-core path. The snapshot is mapped
/// zero-copy, the null model comes from the mapped CSR offsets, and the
/// attribute lattice is mined segment by segment under `--memory-budget`
/// (see `scpm_core::segments`). Output — text tables or the `--json`
/// catalog — is byte-identical to the in-memory `scpm mine` on the same
/// snapshot and parameters.
fn mine_mmap(flags: &Flags) -> Result<(), String> {
    let path = flags
        .str("snapshot")
        .ok_or("--mmap requires --snapshot (the zero-copy path reads the binary format)")?;
    if flags.str("graph").is_some() {
        return Err("--mmap and --graph are mutually exclusive".into());
    }
    if flags.flag("naive") || flags.str("algo").is_some_and(|a| a != "scpm") {
        return Err("--mmap supports only the default scpm algorithm".into());
    }
    if flags.num("threads", 1usize)? > 1 {
        return Err("--mmap is single-threaded (segments bound memory, not cores)".into());
    }
    let params = params_from(flags)?;
    let budget = parse_bytes(flags.str("memory-budget").unwrap_or("64m"))?;
    let snap =
        scpm_graph::MappedSnapshot::open(path).map_err(|e| format!("mapping {path}: {e}"))?;
    let result = scpm_core::mine_mapped(&snap, params.clone(), budget)
        .map_err(|e| format!("mining {path}: {e}"))?;
    // A names-only stand-in graph: rendering and the catalog need vertex
    // count and attribute names, never edges or assignments.
    let mut b = scpm_graph::AttributedGraphBuilder::new(snap.num_vertices());
    for a in 0..snap.num_attributes() as u32 {
        b.intern_attr(
            snap.attr_name(a)
                .map_err(|e| format!("reading {path}: {e}"))?,
        );
    }
    let names = b.build();
    if flags.flag("json") {
        let catalog = scpm_serve::PatternCatalog::build(&names, &params, result, 0);
        println!("{}", catalog.full_json().render());
        return Ok(());
    }
    let limit = flags.num("limit", 10usize)?;
    println!("{}", render_top_tables(&names, &result, limit));
    println!("patterns (best {limit}):");
    println!("{}", render_patterns(&names, &result, limit));
    println!("{}", render_summary(&result));
    Ok(())
}

fn mine(flags: &Flags) -> Result<(), String> {
    if flags.flag("mmap") {
        return mine_mmap(flags);
    }
    let graph = load(flags)?;
    let params = params_from(flags)?;
    let catalog_params = params.clone();
    let limit = flags.num("limit", 10usize)?;
    let threads = flags.num("threads", 1usize)?;
    // Work-stealing task granularity; deeper splits expose more stealable
    // subtrees on skewed lattices (docs/PARALLELISM.md).
    let split_depth = flags.num("split-depth", DEFAULT_SPLIT_DEPTH)?;
    let algo = if flags.flag("naive") {
        "naive"
    } else {
        flags.str("algo").unwrap_or("scpm")
    };
    let result = match algo {
        "naive" => run_naive(&graph, &params),
        "scorp" => Scorp::new(&graph, params).run(),
        "levelwise" => Scpm::new(&graph, params).run_levelwise(),
        "scpm" => {
            if threads > 1 {
                let config = ParallelConfig::new(threads).with_split_depth(split_depth);
                run_parallel_with(&graph, params, &config)
            } else {
                Scpm::new(&graph, params).run()
            }
        }
        other => {
            return Err(format!(
                "invalid --algo `{other}` (want scpm|levelwise|scorp|naive)"
            ))
        }
    };
    if flags.flag("json") {
        // The catalog dump: byte-identical to what `scpm serve` answers
        // on GET /catalog for the same graph and parameters (the
        // conformance suite enforces this).
        let catalog = scpm_serve::PatternCatalog::build(&graph, &catalog_params, result, 0);
        println!("{}", catalog.full_json().render());
        return Ok(());
    }
    println!("{}", render_top_tables(&graph, &result, limit));
    println!("patterns (best {limit}):");
    println!("{}", render_patterns(&graph, &result, limit));
    println!("{}", render_summary(&result));
    Ok(())
}

/// `scpm update`: apply an insert-only delta to a graph and re-mine it
/// *incrementally* — a recording mine of the base graph fills the
/// evaluation memo, the delta's dirty region is computed from its novel
/// effects, and the updated graph is mined with clean lattice nodes
/// replayed from the memo. The output (and in particular the `--json`
/// catalog) is byte-identical to `scpm mine` on the updated graph; see
/// docs/INCREMENTAL.md for the argument and `tests/incremental_vs_full.rs`
/// for the differential proof.
fn update(flags: &Flags) -> Result<(), String> {
    let base = load(flags)?;
    let params = params_from(flags)?;
    let delta_path = flags.required("delta")?;
    let text =
        std::fs::read_to_string(delta_path).map_err(|e| format!("reading {delta_path}: {e}"))?;
    let delta = GraphDelta::parse(&text).map_err(|e| format!("{delta_path}: {e}"))?;
    let applied = delta
        .apply(&base)
        .map_err(|e| format!("{delta_path}: {e}"))?;
    let threads = flags.num("threads", 1usize)?;
    let split_depth = flags.num("split-depth", DEFAULT_SPLIT_DEPTH)?;
    let config = ParallelConfig::new(threads).with_split_depth(split_depth);

    // Generation 0: record the evaluation memo on the base graph. (The
    // serve layer keeps this memo alive across updates; the CLI rebuilds
    // it from the snapshot.)
    let mut recorder = Scpm::with_cache(&base, params.clone(), Arc::new(NullModelCache::new()))
        .with_incremental(IncrementalCtx::recording());
    recorder.run_scheduled(&config);
    let (memo, _) = recorder
        .take_incremental()
        .expect("recording run keeps its context")
        .into_parts();

    // Generation 1: replay every clean lattice node against the updated
    // graph. The null-model cache is fresh — exp(σ) is a function of the
    // graph, and the graph changed.
    let dirty = DirtySet::from_delta(&applied.graph, &applied);
    let dirty_summary = (dirty.dirty_attr_ids().len(), dirty.num_edge_caps());
    let mut miner = Scpm::with_cache(
        &applied.graph,
        params.clone(),
        Arc::new(NullModelCache::new()),
    )
    .with_incremental(IncrementalCtx::update(Arc::new(memo), dirty));
    let result = miner.run_scheduled(&config);
    let incr = miner
        .take_incremental()
        .expect("update run keeps its context")
        .stats();

    if let Some(out) = flags.str("out") {
        save_any(&applied.graph, out)?;
    }
    if flags.flag("json") {
        // Byte-identical to `scpm mine --json` on the updated graph.
        let catalog = scpm_serve::PatternCatalog::build(&applied.graph, &params, result, 0);
        println!("{}", catalog.full_json().render());
        return Ok(());
    }
    println!(
        "applied {delta_path}: +{} vertices, +{} novel edges, +{} novel attribute assignments",
        applied.added_vertices,
        applied.novel_edges.len(),
        applied.novel_attrs.len()
    );
    println!(
        "dirty region: {} attributes with novel assignments, {} novel-edge attribute caps",
        dirty_summary.0, dirty_summary.1
    );
    println!(
        "incremental mine: {} sets replayed, {} evaluated live ({} kernel ops reused / {} live)",
        incr.reused, incr.reevaluated, incr.reused_kernel_ops, incr.live_kernel_ops
    );
    println!("{}", render_summary(&result));
    Ok(())
}

/// `scpm serve`: mine once, publish the catalog over HTTP/1.1, and block
/// until a `POST /shutdown` arrives (the ctrl channel). With
/// `--data-dir`, serving is crash-safe (docs/DURABILITY.md): an
/// uninitialized directory is seeded from `--graph`/`--snapshot`, an
/// initialized one is recovered — snapshot plus journal replay — with no
/// graph input needed. SIGTERM keeps its default process-kill semantics;
/// a durable server journals every update ahead of applying it, so an
/// unclean exit costs only a journal replay on the next start.
fn serve(flags: &Flags) -> Result<(), String> {
    let params = params_from(flags)?;
    let host = flags.str("host").unwrap_or("127.0.0.1");
    let port = flags.num("port", 7474u16)?;
    let threads = flags.num("threads", 4usize)?;
    let split_depth = flags.num("split-depth", DEFAULT_SPLIT_DEPTH)?;
    let mut config =
        scpm_serve::ServeConfig::new(params, threads).with_addr(format!("{host}:{port}"));
    config.split_depth = split_depth;

    let server = match flags.str("data-dir") {
        None => scpm_serve::Server::start(load(flags)?, config)?,
        Some(dir) => {
            let injector = scpm_graph::FaultInjector::from_env()?;
            let durability = scpm_serve::DurabilityConfig::new(dir)
                .with_checkpoint_every(flags.num("checkpoint-every", 8u64)?)
                .with_injector(injector);
            let initialized = scpm_core::DataDir::open(dir)
                .map_err(|e| format!("opening data directory {dir}: {e}"))?
                .is_initialized();
            config = config.with_durability(durability);
            if initialized {
                let (server, report) = scpm_serve::Server::open(config)?;
                println!(
                    "recovered {dir}: generation {} (checkpoint {}, {} deltas replayed, {})",
                    report.generation,
                    report.checkpoint_generation,
                    report.replayed_deltas,
                    if report.memo_replayed {
                        "memo replayed".to_string()
                    } else {
                        report
                            .memo_note
                            .unwrap_or_else(|| "recording mine".to_string())
                    }
                );
                if report.snapshots_skipped > 0 {
                    println!(
                        "recovered {dir}: fell back past {} corrupt snapshot(s)",
                        report.snapshots_skipped
                    );
                }
                if let Some(bytes) = report.torn_bytes_dropped {
                    println!("recovered {dir}: repaired a torn journal tail ({bytes} bytes)");
                }
                server
            } else {
                println!("seeding data directory {dir} at generation 0");
                scpm_serve::Server::start(load(flags)?, config)?
            }
        }
    };
    let catalog = server.catalog();
    // The listening line is machine-read by the smoke tests (port 0 binds
    // an ephemeral port); keep its shape stable.
    println!("scpm serve listening on http://{}", server.addr());
    println!(
        "catalog generation 0: {} reports, {} patterns ({} workers; POST /shutdown to stop)",
        catalog.result().reports.len(),
        catalog.result().patterns.len(),
        threads.max(1)
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.join();
    println!("scpm serve: shut down cleanly");
    Ok(())
}

/// `scpm recover DIR`: inspect a data directory offline — recover the
/// newest good snapshot, replay the journal through the incremental
/// path, and report what a durable `scpm serve` restart would load.
/// Read-only: no checkpoint is written. Exits nonzero when the directory
/// cannot be recovered (operator intervention needed).
fn recover_cmd(flags: &Flags) -> Result<(), String> {
    let dir_path = flags.required("data-dir")?;
    let params = params_from(flags)?;
    let threads = flags.num("threads", 1usize)?;
    let split_depth = flags.num("split-depth", DEFAULT_SPLIT_DEPTH)?;
    let dir = scpm_core::DataDir::open(dir_path)
        .map_err(|e| format!("opening data directory {dir_path}: {e}"))?;
    let state = scpm_core::recover(&dir).map_err(|e| format!("recovering {dir_path}: {e}"))?;
    println!(
        "{dir_path}: snapshot generation {}, {} journaled delta(s) to replay",
        state.base_generation,
        state.deltas.len()
    );
    for (g, e) in &state.snapshot_errors {
        println!("  skipped corrupt snapshot generation {g}: {e}");
    }
    if let Some(torn) = &state.repaired {
        println!(
            "  repaired torn journal tail: {} bytes dropped (log valid to {})",
            torn.dropped_bytes, torn.valid_len
        );
    }
    let config = ParallelConfig::new(threads).with_split_depth(split_depth);
    let mine = scpm_core::replay_mine(state, &params, &config)
        .map_err(|e| format!("replaying {dir_path}: {e}"))?;
    if mine.memo_replayed {
        println!(
            "  memo replayed: {} sets reused, {} evaluated live",
            mine.incremental.reused, mine.incremental.reevaluated
        );
    } else {
        println!(
            "  {}",
            mine.memo_note
                .unwrap_or_else(|| "memo unusable; ran a recording mine".into())
        );
    }
    println!(
        "recovered generation {}: {} vertices, {} edges, {} reports, {} patterns",
        mine.generation,
        mine.graph.num_vertices(),
        mine.graph.num_edges(),
        mine.result.reports.len(),
        mine.result.patterns.len()
    );
    Ok(())
}

fn induce(flags: &Flags) -> Result<(), String> {
    let graph = load(flags)?;
    let names: Vec<&str> = flags.required("attrs")?.split(',').collect();
    let mut attrs = Vec::new();
    for name in names {
        attrs.push(
            graph
                .attr_id(name)
                .ok_or_else(|| format!("unknown attribute `{name}`"))?,
        );
    }
    let vertices = graph.vertices_with_all(&attrs);
    println!(
        "V({}) has {} vertices",
        graph.format_attr_set(&attrs),
        vertices.len()
    );
    let gamma = flags.num("gamma", 0.5f64)?;
    let min_size = flags.num("min-size", 5usize)?;
    let params = ScpmParams::new(1, gamma, min_size);
    let scpm = Scpm::new(&graph, params);
    let out = scpm.engine().epsilon(&vertices, None);
    println!(
        "ε = {:.4} ({} covered vertices)",
        out.epsilon,
        out.covered.len()
    );
    let sigma = vertices.len();
    let cfg = QcConfig::new(gamma, min_size);
    let analytical = AnalyticalModel::new(graph.graph(), &cfg);
    let exact = ExactModel::new(graph.graph(), &cfg);
    println!(
        "δ_lb = {:.4}  δ_exact = {:.4}",
        analytical.normalize(out.epsilon, sigma),
        exact.normalize(out.epsilon, sigma)
    );
    let sims = flags.num("pvalue-sims", 0usize)?;
    if sims > 0 {
        let seed = flags.num("seed", 42u64)?;
        let p = empirical_p_value(graph.graph(), &cfg, sigma, out.epsilon, sims, seed);
        println!("empirical p-value ({sims} sims): {p:.5}");
    }
    if let Some(path) = flags.str("dot") {
        // Plain (non-atomic) create is fine here: the DOT file is a
        // throwaway visualization, never read back by any tool in the
        // workspace, so a torn write costs a re-run, not state.
        let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        write_dot(&graph, &vertices, &out.covered, file).map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

fn generate(flags: &Flags) -> Result<(), String> {
    let spec = match flags.required("dataset")? {
        "dblp" => DatasetSpec::dblp(),
        "lastfm" => DatasetSpec::lastfm(),
        "citeseer" => DatasetSpec::citeseer(),
        "smalldblp" => DatasetSpec::small_dblp(),
        other => return Err(format!("unknown dataset `{other}`")),
    };
    let scale = flags.num("scale", 0.02f64)?;
    let seed = flags.num("seed", 42u64)?;
    let out = flags.required("out")?;
    let dataset = scpm_datasets::generate(&spec, scale, seed);
    save_any(&dataset.graph, out)?;
    println!(
        "wrote {out}: {} vertices, {} edges, {} attributes ({} planted communities)",
        dataset.graph.num_vertices(),
        dataset.graph.num_edges(),
        dataset.graph.num_attributes(),
        dataset.communities.len()
    );
    Ok(())
}

fn stats(flags: &Flags) -> Result<(), String> {
    // Either a ready graph (--graph/--snapshot) or raw interchange files
    // (--edges [--attrs]) statted through the ingest pipeline.
    if flags.str("edges").is_some()
        && (flags.str("graph").is_some() || flags.str("snapshot").is_some())
    {
        return Err("--edges and --graph/--snapshot are mutually exclusive".into());
    }
    let graph = if flags.str("edges").is_some() {
        let ingested = ingest_from_flags(flags)?;
        // The support list below covers the frequency head; print the
        // normalization counters only.
        let mut report = ingested.report;
        report.top_attributes.clear();
        print!("{report}");
        ingested.graph
    } else {
        load(flags)?
    };
    print!("{}", GraphSummary::of_attributed(&graph));
    let mut supports: Vec<(usize, u32)> =
        graph.attributes().map(|a| (graph.support(a), a)).collect();
    supports.sort_unstable_by(|a, b| b.cmp(a));
    println!("top attributes by support:");
    for (support, a) in supports.into_iter().take(10) {
        println!("  {:<24} {}", graph.attr_name(a), support);
    }
    Ok(())
}

fn nullmodel(flags: &Flags) -> Result<(), String> {
    let graph = load(flags)?;
    let g = graph.graph();
    let cfg = QcConfig::new(flags.num("gamma", 0.5f64)?, flags.num("min-size", 5usize)?);
    let points = flags.num("points", 10usize)?.max(2);
    let sims = flags.num("sims", 20usize)?;
    let seed = flags.num("seed", 42u64)?;
    // Sweep σ up to this fraction of |V| (the paper's figures stop near
    // 10%; beyond ~25% the simulation spends its time disproving
    // membership for the bulk of the graph).
    let max_frac = flags.num("max-frac", 0.25f64)?.clamp(0.001, 1.0);
    let n = g.num_vertices();
    if n < 2 {
        return Err("graph too small for a support sweep".into());
    }
    let analytical = AnalyticalModel::new(g, &cfg);
    let exact = ExactModel::new(g, &cfg);
    let sim = SimulationModel::new(g, cfg, sims, seed);
    println!("σ         max-exp      exact-exp    sim-exp      sim-std");
    for i in 1..=points {
        let sigma = ((n as f64 * max_frac) as usize * i) / points;
        let s = sim.expected(sigma);
        println!(
            "{:<9} {:<12.6} {:<12.6} {:<12.6} {:<12.6}",
            sigma,
            analytical.expected(sigma),
            exact.expected(sigma),
            s.mean,
            s.std_dev
        );
    }
    Ok(())
}

fn convert(flags: &Flags) -> Result<(), String> {
    let graph = load(flags)?;
    let out = flags.required("out")?;
    save_any(&graph, out)?;
    println!(
        "wrote {out}: {} vertices, {} edges, {} attributes",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_attributes()
    );
    Ok(())
}

/// Lists closed frequent attribute sets — attribute sets whose induced
/// vertex set no proper superset reproduces. Two attribute sets with equal
/// `V(S)` yield identical SCPM rows, so the closed sets are the
/// non-redundant mining targets.
fn closed(flags: &Flags) -> Result<(), String> {
    let graph = load(flags)?;
    let cfg = scpm_itemset::EclatConfig {
        min_support: flags.num("sigma-min", 10usize)?,
        max_size: flags.num("max-attrs", 3usize)?,
    };
    let limit = flags.num("limit", 20usize)?;
    let mut sets = scpm_itemset::closed_itemsets(&graph, &cfg);
    let total = sets.len();
    sets.sort_by(|a, b| {
        b.support()
            .cmp(&a.support())
            .then_with(|| a.items.cmp(&b.items))
    });
    println!(
        "{total} closed attribute sets (showing {})",
        limit.min(total)
    );
    for c in sets.iter().take(limit) {
        println!(
            "  {:<48} σ={}",
            graph.format_attr_set(&c.items),
            c.support()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Flags, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        Flags::parse(&owned)
    }

    #[test]
    fn parses_values_and_bools() {
        let f = parse(&["--graph", "g.txt", "--sigma-min", "20", "--naive"]).unwrap();
        assert_eq!(f.required("graph").unwrap(), "g.txt");
        assert_eq!(f.num("sigma-min", 0usize).unwrap(), 20);
        assert!(f.flag("naive"));
        assert!(!f.flag("other"));
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse(&["--graph"]).is_err());
        assert!(parse(&["graph", "g.txt"]).is_err());
    }

    #[test]
    fn defaults_apply() {
        let f = parse(&[]).unwrap();
        assert_eq!(f.num("top-k", 5usize).unwrap(), 5);
        assert!(f.required("graph").is_err());
    }

    #[test]
    fn params_builder_respects_flags() {
        let f = parse(&[
            "--sigma-min",
            "50",
            "--gamma",
            "0.7",
            "--min-size",
            "6",
            "--eps-min",
            "0.2",
            "--order",
            "bfs",
            "--top-k",
            "3",
        ])
        .unwrap();
        let p = params_from(&f).unwrap();
        assert_eq!(p.sigma_min, 50);
        assert!((p.quasi_clique.gamma - 0.7).abs() < 1e-12);
        assert_eq!(p.quasi_clique.min_size, 6);
        assert_eq!(p.k, 3);
        assert_eq!(p.search_order, SearchOrder::Bfs);
    }

    #[test]
    fn rejects_invalid_order() {
        let f = parse(&["--order", "sideways"]).unwrap();
        assert!(params_from(&f).is_err());
    }

    #[test]
    fn rejects_invalid_algo() {
        let dir = std::env::temp_dir().join("scpm_cli_algo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.txt");
        save_attributed(&scpm_graph::figure1::figure1(), &path).unwrap();
        let f = parse(&["--graph", path.to_str().unwrap(), "--algo", "quantum"]).unwrap();
        assert!(mine(&f).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn all_algorithms_run_on_figure1() {
        let dir = std::env::temp_dir().join("scpm_cli_algos");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.txt");
        save_attributed(&scpm_graph::figure1::figure1(), &path).unwrap();
        for algo in ["scpm", "levelwise", "scorp", "naive"] {
            let f = parse(&[
                "--graph",
                path.to_str().unwrap(),
                "--sigma-min",
                "3",
                "--gamma",
                "0.6",
                "--min-size",
                "4",
                "--eps-min",
                "0.5",
                "--algo",
                algo,
            ])
            .unwrap();
            mine(&f).unwrap_or_else(|e| panic!("algo {algo}: {e}"));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ingest_then_mine_snapshot() {
        let dir = std::env::temp_dir().join("scpm_cli_ingest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("tiny.edges");
        let attrs = dir.join("tiny.attrs");
        // A 4-clique of `db` vertices plus a pendant, with noise.
        std::fs::write(&edges, "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n3 4\n4 4\n0 1\n").unwrap();
        std::fs::write(&attrs, "0 db\n1 db\n2 db\n3 db ml\n4 ml\n").unwrap();
        let snap = dir.join("tiny.snap");
        let f = parse(&[
            "--edges",
            edges.to_str().unwrap(),
            "--attrs",
            attrs.to_str().unwrap(),
            "--out",
            snap.to_str().unwrap(),
        ])
        .unwrap();
        ingest(&f).unwrap();
        let f = parse(&[
            "--snapshot",
            snap.to_str().unwrap(),
            "--sigma-min",
            "3",
            "--gamma",
            "0.6",
            "--min-size",
            "4",
        ])
        .unwrap();
        mine(&f).unwrap();
        // --snapshot refuses non-snapshot files.
        let f = parse(&["--snapshot", edges.to_str().unwrap()]).unwrap();
        assert!(load(&f).is_err());
        // --graph + --snapshot is ambiguous.
        let f = parse(&[
            "--graph",
            edges.to_str().unwrap(),
            "--snapshot",
            snap.to_str().unwrap(),
        ])
        .unwrap();
        assert!(load(&f).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_bytes_accepts_suffixes() {
        assert_eq!(parse_bytes("1048576").unwrap(), 1 << 20);
        assert_eq!(parse_bytes("64k").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("64M").unwrap(), 64 << 20);
        assert_eq!(parse_bytes("2g").unwrap(), 2 << 30);
        assert!(parse_bytes("lots").is_err());
        assert!(parse_bytes("9999999999999999999g").is_err());
    }

    #[test]
    fn budgeted_ingest_and_mmap_mine_match_in_memory() {
        let dir = std::env::temp_dir().join("scpm_cli_oocore_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("g.edges");
        let attrs = dir.join("g.attrs");
        std::fs::write(&edges, "0 1\n0 2\n0 3\n1 2\n1 3\n2 3\n3 4\n").unwrap();
        std::fs::write(&attrs, "0 db\n1 db\n2 db\n3 db ml\n4 ml\n").unwrap();
        let (snap_a, snap_b) = (dir.join("inmem.snap"), dir.join("ext.snap"));
        let base = [
            "--edges",
            edges.to_str().unwrap(),
            "--attrs",
            attrs.to_str().unwrap(),
            "--out",
        ];
        let mut in_mem: Vec<&str> = base.to_vec();
        in_mem.push(snap_a.to_str().unwrap());
        ingest(&parse(&in_mem).unwrap()).unwrap();
        let mut external: Vec<&str> = base.to_vec();
        external.extend([snap_b.to_str().unwrap(), "--memory-budget", "1"]);
        ingest(&parse(&external).unwrap()).unwrap();
        assert_eq!(
            std::fs::read(&snap_a).unwrap(),
            std::fs::read(&snap_b).unwrap(),
            "budgeted ingest must be byte-identical"
        );
        // The out-of-core mine accepts the snapshot and runs end to end.
        let f = parse(&[
            "--snapshot",
            snap_b.to_str().unwrap(),
            "--mmap",
            "--memory-budget",
            "1k",
            "--sigma-min",
            "3",
            "--gamma",
            "0.6",
            "--min-size",
            "4",
        ])
        .unwrap();
        mine(&f).unwrap();
        // --mmap needs the binary format and exactly the scpm algorithm.
        let f = parse(&["--graph", snap_b.to_str().unwrap(), "--mmap"]).unwrap();
        assert!(mine(&f).is_err());
        let f = parse(&[
            "--snapshot",
            snap_b.to_str().unwrap(),
            "--mmap",
            "--algo",
            "naive",
        ])
        .unwrap();
        assert!(mine(&f).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ingest_flag_validation() {
        let f = parse(&["--ids", "sideways"]).unwrap();
        assert!(ingest_opts_from(&f).is_err());
        let f = parse(&["--self-loops", "keep"]).unwrap();
        assert!(ingest_opts_from(&f).is_err());
        let f = parse(&["--format", "yaml"]).unwrap();
        assert!(format_from(&f, Path::new("g.txt")).is_err());
        let f = parse(&[]).unwrap();
        assert_eq!(
            format_from(&f, Path::new("g.adj")).unwrap(),
            SourceFormat::Adjacency
        );
        let f = parse(&["--strict-vertices", "--raw-attr-order"]).unwrap();
        let opts = ingest_opts_from(&f).unwrap();
        assert_eq!(opts.unknown_vertices, UnknownVertexPolicy::Error);
        assert!(!opts.canonical_attrs);
    }

    #[test]
    fn stats_accepts_raw_files() {
        let dir = std::env::temp_dir().join("scpm_cli_stats_raw");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("g.edges");
        std::fs::write(&edges, "0 1\n1 2\n").unwrap();
        let f = parse(&["--edges", edges.to_str().unwrap()]).unwrap();
        stats(&f).unwrap();
        // Raw files and ready graphs are mutually exclusive inputs.
        let f = parse(&[
            "--edges",
            edges.to_str().unwrap(),
            "--graph",
            edges.to_str().unwrap(),
        ])
        .unwrap();
        assert!(stats(&f).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_stats_nullmodel_convert_roundtrip() {
        let dir = std::env::temp_dir().join("scpm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        let f = parse(&[
            "--dataset",
            "dblp",
            "--scale",
            "0.003",
            "--seed",
            "1",
            "--out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        generate(&f).unwrap();
        let f2 = parse(&["--graph", path.to_str().unwrap()]).unwrap();
        stats(&f2).unwrap();
        let f3 = parse(&[
            "--graph",
            path.to_str().unwrap(),
            "--sigma-min",
            "10",
            "--min-size",
            "8",
            "--max-attrs",
            "2",
        ])
        .unwrap();
        mine(&f3).unwrap();
        let f4 = parse(&[
            "--graph",
            path.to_str().unwrap(),
            "--points",
            "4",
            "--sims",
            "3",
        ])
        .unwrap();
        nullmodel(&f4).unwrap();
        // Text → snapshot → text conversion preserves counts.
        let snap = dir.join("tiny.snap");
        let f5 = parse(&[
            "--graph",
            path.to_str().unwrap(),
            "--out",
            snap.to_str().unwrap(),
        ])
        .unwrap();
        convert(&f5).unwrap();
        let f6 = parse(&["--graph", snap.to_str().unwrap()]).unwrap();
        stats(&f6).unwrap();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&snap).ok();
    }
}
