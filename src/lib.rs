//! Workspace façade for the SCPM reproduction.
//!
//! Re-exports the public APIs of every crate so that examples and
//! integration tests can use a single dependency:
//!
//! ```
//! use scpm_suite::prelude::*;
//!
//! let g = figure1();
//! assert_eq!(g.num_vertices(), 11);
//! ```
//!
//! The remainder of this page is the project README; its Rust snippet runs
//! as a doc-test, keeping the README quickstart compiling verbatim.
#![doc = include_str!("../README.md")]
#![warn(missing_docs)]

pub use scpm_core as core;
pub use scpm_datasets as datasets;
pub use scpm_graph as graph;
pub use scpm_itemset as itemset;
pub use scpm_quasiclique as quasiclique;

/// Commonly used items, importable with a single `use`.
pub mod prelude {
    pub use scpm_core::*;
    pub use scpm_datasets::{
        citeseer_like, dblp_like, ingest_cached, ingest_files, lastfm_like, small_dblp_like,
        IngestOptions, Ingested, SourceFormat,
    };
    pub use scpm_graph::figure1::figure1;
    pub use scpm_graph::{
        AttributedGraph, AttributedGraphBuilder, CsrGraph, GraphBuilder, RawSource,
    };
    pub use scpm_quasiclique::{QcConfig, Representation, SearchOrder};
}
