//! Property tests for the ingestion pipeline: for *any* generated
//! attributed graph, the cycle
//!
//! ```text
//! graph → write (edge list + attr table) → parse → normalize
//!       → snapshot encode → decode → write again → parse again
//! ```
//!
//! is a fixed point — every stage reproduces the same canonical graph,
//! byte-for-byte at the snapshot level.

use proptest::prelude::*;
use scpm_datasets::external::{ingest_files_external, ExternalOptions};
use scpm_datasets::ingest::{
    canonicalize_attributes, ingest_files, ingest_source, IngestOptions, SourceFormat,
};
use scpm_graph::io::source::RawSource;
use scpm_graph::io::{write_attr_table, write_edge_list};
use scpm_graph::snapshot;
use scpm_graph::AttributedGraphBuilder;

/// A raw graph draw: vertex count, edge rows, and (vertex, attr) rows.
type RawRows = (usize, Vec<(u32, u32)>, Vec<(u32, u32)>);

/// Strategy: a random attributed graph with adversarial attribute names
/// (separators, quotes, unicode) and possibly isolated vertices.
fn graph_strategy() -> impl Strategy<Value = RawRows> {
    (2usize..=24).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        let pair = (0..n as u32, 0u32..10);
        (
            Just(n),
            proptest::collection::vec(edge, 0..(n * 2)),
            proptest::collection::vec(pair, 0..(n * 3)),
        )
    })
}

const NAMES: [&str; 10] = [
    "plain",
    "two words",
    "comma,sep",
    "quo\"te",
    "tab\there",
    "naïve-töken",
    "*topic*",
    "UPPER",
    "0numeric",
    "db",
];

proptest! {
    #[test]
    fn parse_encode_decode_write_is_a_fixed_point(
        (n, edges, pairs) in graph_strategy(),
    ) {
        // Build an arbitrary graph (names interned in arbitrary order, so
        // canonicalization has real work to do).
        let mut b = AttributedGraphBuilder::new(n);
        for (u, v) in &edges { if u != v { b.add_edge(*u, *v); } }
        for name in NAMES { b.intern_attr(name); }
        for (v, a) in &pairs { b.add_attr(*v, *a); }
        let g = b.build();
        let canonical = canonicalize_attributes(&g);

        // Pass 1: write → parse → normalize.
        let ingest = |graph: &scpm_graph::AttributedGraph| {
            let mut edge_buf = Vec::new();
            write_edge_list(graph.graph(), &mut edge_buf).unwrap();
            let mut attr_buf = Vec::new();
            write_attr_table(graph, &mut attr_buf).unwrap();
            let mut src = RawSource::new();
            src.read_edge_list(edge_buf.as_slice()).unwrap();
            src.read_attr_table(attr_buf.as_slice()).unwrap();
            ingest_source(src, "prop", &IngestOptions::default()).unwrap().graph
        };
        let once = ingest(&g);
        let (snap_once, snap_canonical) = (snapshot::encode(&once), snapshot::encode(&canonical));
        prop_assert_eq!(
            snap_once.as_ref(),
            snap_canonical.as_ref(),
            "ingest(write(g)) != canonical(g)"
        );

        // Snapshot round-trip in the middle.
        let decoded = snapshot::decode(&snap_once).unwrap();

        // Pass 2: write → parse → normalize again — the fixed point.
        let twice = ingest(&decoded);
        let snap_twice = snapshot::encode(&twice);
        prop_assert_eq!(
            snap_twice.as_ref(),
            snap_once.as_ref(),
            "second write/parse cycle drifted"
        );
    }

    #[test]
    fn external_ingest_is_byte_identical_to_in_memory(
        (n, edges, pairs) in graph_strategy(),
        budget in prop_oneof![Just(1usize), Just(512), Just(1 << 20)],
        case in 0u64..u64::MAX,
    ) {
        // The bounded-memory external pass must produce the same snapshot
        // bytes and the same report as the buffering path, for any source
        // and any budget (tiny budgets just mean more spill runs).
        let mut b = AttributedGraphBuilder::new(n);
        for (u, v) in &edges { if u != v { b.add_edge(*u, *v); } }
        for name in NAMES { b.intern_attr(name); }
        for (v, a) in &pairs { b.add_attr(*v, *a); }
        let g = b.build();

        let dir = std::env::temp_dir()
            .join("scpm_proptest_external")
            .join(format!("case-{case:016x}"));
        std::fs::create_dir_all(&dir).unwrap();
        let edges_path = dir.join("g.txt");
        let attrs_path = dir.join("g.attrs");
        let mut edge_buf = Vec::new();
        write_edge_list(g.graph(), &mut edge_buf).unwrap();
        std::fs::write(&edges_path, &edge_buf).unwrap();
        let mut attr_buf = Vec::new();
        write_attr_table(&g, &mut attr_buf).unwrap();
        std::fs::write(&attrs_path, &attr_buf).unwrap();

        let opts = IngestOptions::default();
        let reference = ingest_files(
            SourceFormat::EdgeList, &edges_path, Some(&attrs_path), &opts,
        ).unwrap();
        let ref_snap = dir.join("reference.snap");
        snapshot::save_snapshot(&reference.graph, &ref_snap).unwrap();

        let ext_snap = dir.join("external.snap");
        let report = ingest_files_external(
            SourceFormat::EdgeList,
            &edges_path,
            Some(&attrs_path),
            &opts,
            &ExternalOptions { memory_budget: budget, temp_dir: None },
            &ext_snap,
        ).unwrap();

        let (a, b) = (
            std::fs::read(&ref_snap).unwrap(),
            std::fs::read(&ext_snap).unwrap(),
        );
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(a, b, "external snapshot bytes diverge");
        prop_assert_eq!(report.to_string(), reference.report.to_string());
    }

    #[test]
    fn ingest_report_counters_are_consistent(
        (n, edges, pairs) in graph_strategy(),
    ) {
        // Feed the raw rows (duplicates, self-loops and all) straight into
        // the normalizer and check the arithmetic: kept + merged = seen.
        let mut src = RawSource::new();
        let mut edge_text = String::new();
        for (u, v) in &edges {
            edge_text.push_str(&format!("{u} {v}\n"));
        }
        src.read_edge_list(edge_text.as_bytes()).unwrap();
        let mut attr_text = String::new();
        for v in 0..n as u32 {
            attr_text.push_str(&format!("{v}"));
            for (pv, a) in &pairs {
                if *pv == v {
                    attr_text.push_str(&format!(" a{a}"));
                }
            }
            attr_text.push('\n');
        }
        src.read_attr_table(attr_text.as_bytes()).unwrap();

        let self_loops = edges.iter().filter(|(u, v)| u == v).count();
        prop_assert_eq!(src.self_loops, self_loops);
        let out = ingest_source(src, "prop", &IngestOptions::default()).unwrap();
        let parse = out.report.parse.clone().unwrap();
        prop_assert_eq!(parse.self_loops_dropped, self_loops);
        prop_assert_eq!(
            out.report.edges + parse.duplicate_edges_merged + self_loops,
            edges.len()
        );
        prop_assert_eq!(
            out.report.pairs + parse.duplicate_pairs_merged,
            pairs.len()
        );
        prop_assert_eq!(out.report.vertices, n);
        prop_assert_eq!(out.graph.num_edges(), out.report.edges);
    }
}
