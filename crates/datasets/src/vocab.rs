//! Vocabularies used to name synthetic attributes after the paper's
//! datasets, so example output reads like the paper's tables (stemmed title
//! terms for DBLP, artists for LastFm, abstract terms for CiteSeer).

/// Stemmed paper-title terms, ordered roughly by corpus frequency (the
/// high-support generic terms of Table 2 first).
pub const DBLP_TERMS: &[&str] = &[
    "base", "system", "us", "model", "data", "network", "imag", "queri", "web", "search",
    "algorithm", "analysi", "design", "perform", "applic", "approach", "structur", "process",
    "comput", "distribut", "time", "method", "gener", "dynam", "learn", "optim", "control",
    "inform", "adapt", "program", "parallel", "object", "orient", "softwar", "architectur",
    "servic", "manag", "evalu", "effici", "real", "code", "logic", "graph", "pattern", "mine",
    "cluster", "classif", "index", "stream", "xml", "databas", "rank", "grid", "environ",
    "simul", "chip", "file", "internet", "wireless", "mobil", "secur", "agent", "fuzzi",
    "neural", "genet", "robot", "video", "visual", "languag", "formal", "verif", "test",
    "fault", "toler", "schedul", "cach", "memori", "processor", "circuit", "signal", "filter",
    "detect", "estim", "predict", "recognit", "retriev", "semant", "ontolog", "knowledg",
    "decis", "support", "interact", "user", "interfac", "multimedia", "compress", "encod",
    "protocol", "rout", "sensor", "hoc", "channel", "alloc", "power", "energi", "embed",
];

/// Music artists, ordered by popularity (the top-σ column of Table 3).
pub const LASTFM_ARTISTS: &[&str] = &[
    "Radiohead", "Coldplay", "Beatles", "R Peppers", "Nirvana", "T Killers", "Muse", "Oasis",
    "F Fighters", "P Floyd", "Metallica", "DC for Cutie", "Beck", "The Shins", "Linkin Park",
    "Green Day", "U2", "Placebo", "Depeche Mode", "Daft Punk", "Gorillaz", "Blur", "R.E.M.",
    "The Cure", "Queen", "Led Zeppelin", "Arctic Monkeys", "The Strokes", "Interpol",
    "Bloc Party", "Franz Ferdinand", "Kaiser Chiefs", "The Kooks", "Keane", "Travis",
    "Snow Patrol", "Editors", "White Stripes", "Kings of Leon", "Arcade Fire", "Modest Mouse",
    "S Stevens", "Wilco", "Of Montreal", "Beirut", "Decemberists", "N Hotel", "F Lips",
    "A Collective", "BS Scene", "NM Hotel", "Spoon", "Van Morrison", "Bob Dylan", "Neil Young",
    "Iron & Wine", "Bon Iver", "Fleet Foxes", "Grizzly Bear", "The National", "Sigur Ros",
    "Mogwai", "Explosions", "GY!BE", "Tortoise", "Aphex Twin", "Boards of Canada", "Autechre",
    "Squarepusher", "Burial", "Four Tet", "Caribou", "Pantha du Prince", "M83", "Air",
    "Massive Attack", "Portishead", "Tricky", "UNKLE", "DJ Shadow", "RJD2", "Blockhead",
];

/// Stemmed abstract terms for the citation network (Table 4's vocabulary).
pub const CITESEER_TERMS: &[&str] = &[
    "system", "paper", "base", "result", "model", "us", "approach", "perform", "propos",
    "algorithm", "present", "problem", "method", "network", "data", "design", "implement",
    "applic", "develop", "comput", "structur", "gener", "time", "process", "program",
    "analysi", "distribut", "parallel", "object", "languag", "logic", "queri", "optim",
    "memori", "cach", "instruct", "processor", "architectur", "compil", "schedul", "thread",
    "sensor", "hoc", "rout", "wireless", "node", "protocol", "ad", "mobil", "channel",
    "energi", "power", "secur", "crypto", "agent", "learn", "classif", "cluster", "mine",
    "index", "databas", "transact", "concurr", "lock", "recoveri", "stream", "web", "search",
    "rank", "retriev", "document", "semant", "xml", "graph", "tree", "hash", "sort", "string",
    "automata", "verif", "proof", "theorem", "formal", "specif", "test", "fault", "toler",
    "replic", "consist", "commit", "consensus", "byzantin", "gossip", "overlay", "peer",
];

/// Two-word research-topic labels for planted DBLP communities (the kind of
/// attribute sets that dominate the top-ε/top-δ columns of Table 2).
pub const DBLP_TOPICS: &[&str] = &[
    "grid", "applic", "search", "rank", "queri", "xml", "data", "stream", "chip", "system",
    "dynam", "simul", "environ", "grid2", "perform", "file", "structur", "index", "search2",
    "mine", "us2", "xml2", "perform2", "distribut", "parallel", "model2", "internet",
    "process2", "databas", "base2", "analysi2", "web2", "servic2", "cach2", "memori2",
    "rout2", "wireless2", "sensor2", "cluster2", "learn2",
];

/// Topic labels for CiteSeer communities.
pub const CITESEER_TOPICS: &[&str] = &[
    "network", "sensor", "hoc", "rout", "node", "wireless", "protocol", "ad", "memori",
    "cach", "optim", "queri", "program", "logic", "perform", "instruct", "web2", "search2",
    "learn2", "classif2", "secur2", "crypto2", "replic2", "consensus2", "stream2", "index2",
    "graph2", "tree2", "compil2", "thread2", "lock2", "commit2", "peer2", "overlay2",
    "agent2", "formal2", "verif2", "fault2", "toler2", "gossip2",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabularies_are_nonempty_and_unique() {
        for vocab in [DBLP_TERMS, LASTFM_ARTISTS, CITESEER_TERMS, DBLP_TOPICS, CITESEER_TOPICS] {
            assert!(vocab.len() >= 30);
            let set: std::collections::HashSet<&&str> = vocab.iter().collect();
            assert_eq!(set.len(), vocab.len(), "duplicate entries");
        }
    }

    #[test]
    fn paper_table_terms_present() {
        assert!(DBLP_TERMS.contains(&"grid"));
        assert!(DBLP_TERMS.contains(&"rank"));
        assert!(LASTFM_ARTISTS.contains(&"Radiohead"));
        assert!(LASTFM_ARTISTS.contains(&"S Stevens"));
        assert!(CITESEER_TERMS.contains(&"wireless"));
        assert!(CITESEER_TERMS.contains(&"cach"));
    }
}
