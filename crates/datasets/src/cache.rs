//! Snapshot-backed dataset caches.
//!
//! Bench-scale synthetic graphs take seconds to generate and real datasets
//! take seconds to parse; the experiment harness and examples ask for the
//! same inputs over and over. Two cache families share one storage format
//! (the versioned binary snapshot of `scpm_graph::snapshot`):
//!
//! * [`load_or_generate`] keys a snapshot by a synthetic `(spec, scale,
//!   seed)` triple;
//! * [`ingest_cached`] keys a snapshot by a [`source_fingerprint`] — an
//!   FNV-1a hash over the source files' bytes, the normalization options,
//!   and the snapshot format version, so edited sources, changed options
//!   and stale format revisions all miss cleanly.
//!
//! Corrupt, stale-version, or foreign cache entries are never trusted:
//! decoding validates magic, version, and checksum, and any failure
//! regenerates the entry. Cache-key semantics are documented in
//! `docs/DATASETS.md`.
//!
//! Only the attributed graph is cached — planted-community ground truth
//! is cheap to regenerate and callers that need it should call
//! [`crate::generate`] directly.

use std::path::{Path, PathBuf};

use scpm_graph::attributed::AttributedGraph;
use scpm_graph::snapshot::{fnv1a64, load_snapshot, save_snapshot, VERSION};

use crate::ingest::{ingest_files, IdPolicy, IngestError, IngestOptions, SourceFormat};
use crate::synthetic::{generate, DatasetSpec};

/// The cache file for a `(spec, scale, seed)` triple under `dir`.
pub fn cache_path(dir: &Path, spec: &DatasetSpec, scale: f64, seed: u64) -> PathBuf {
    // Scale is embedded with fixed precision so path equality matches
    // value equality for the scales in practical use.
    dir.join(format!("{}-s{:.6}-seed{}.snap", spec.name, scale, seed))
}

/// Loads the cached snapshot for `(spec, scale, seed)` or generates the
/// dataset and writes the cache. Corrupt or unreadable cache entries are
/// regenerated (and overwritten), never trusted.
pub fn load_or_generate(
    dir: impl AsRef<Path>,
    spec: &DatasetSpec,
    scale: f64,
    seed: u64,
) -> std::io::Result<AttributedGraph> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = cache_path(dir, spec, scale, seed);
    if let Ok(graph) = load_snapshot(&path) {
        return Ok(graph);
    }
    let dataset = generate(spec, scale, seed);
    if let Err(e) = save_snapshot(&dataset.graph, &path) {
        // A failed cache write is not fatal — the caller still gets the
        // freshly generated graph — but a permissions problem should not
        // pass silently either.
        eprintln!("warning: could not write dataset cache {path:?}: {e}");
    }
    Ok(dataset.graph)
}

fn options_fingerprint_bytes(format: SourceFormat, opts: &IngestOptions) -> [u8; 5] {
    [
        match format {
            SourceFormat::EdgeList => 0,
            SourceFormat::Adjacency => 1,
            SourceFormat::Unified => 2,
        },
        match opts.id_policy {
            IdPolicy::Auto => 0,
            IdPolicy::Intern => 1,
            IdPolicy::Numeric => 2,
        },
        matches!(opts.self_loops, crate::ingest::SelfLoopPolicy::Error) as u8,
        matches!(
            opts.unknown_vertices,
            crate::ingest::UnknownVertexPolicy::Error
        ) as u8,
        opts.canonical_attrs as u8,
    ]
}

/// Content fingerprint of an ingest request: hashes every source file's
/// length and bytes, the normalization options, and the snapshot format
/// [`VERSION`]. Any change to any of those yields a different key.
pub fn source_fingerprint(
    format: SourceFormat,
    paths: &[&Path],
    opts: &IngestOptions,
) -> std::io::Result<u64> {
    let mut acc = Vec::new();
    acc.extend_from_slice(&VERSION.to_le_bytes());
    acc.extend_from_slice(&options_fingerprint_bytes(format, opts));
    for path in paths {
        let data = std::fs::read(path)?;
        acc.extend_from_slice(&(data.len() as u64).to_le_bytes());
        acc.extend_from_slice(&fnv1a64(&data).to_le_bytes());
    }
    Ok(fnv1a64(&acc))
}

/// The cache file for an ingest fingerprint under `dir`.
pub fn ingest_cache_path(dir: &Path, label: &str, fingerprint: u64) -> PathBuf {
    dir.join(format!("{label}-{fingerprint:016x}.snap"))
}

/// Loads the cached snapshot for an on-disk dataset or ingests the files
/// and writes the cache. Returns the graph and whether it was a cache hit.
///
/// On a hit the parse-time [`crate::ingest::IngestReport`] is not
/// reconstructed (the counters only exist during a real parse); callers
/// that need the report should call [`ingest_files`] directly.
pub fn ingest_cached(
    dir: impl AsRef<Path>,
    format: SourceFormat,
    structure: &Path,
    attrs: Option<&Path>,
    opts: &IngestOptions,
) -> Result<(AttributedGraph, bool), IngestError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut paths = vec![structure];
    paths.extend(attrs);
    let fingerprint = source_fingerprint(format, &paths, opts)?;
    let label = crate::ingest::label_of(structure);
    let path = ingest_cache_path(dir, &label, fingerprint);
    if let Ok(graph) = load_snapshot(&path) {
        return Ok((graph, true));
    }
    let out = ingest_files(format, structure, attrs, opts)?;
    save_snapshot(&out.graph, &path)?;
    Ok((out.graph, false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scpm_ds_cache_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn generates_then_reloads_identically() {
        let dir = temp_dir("roundtrip");
        let spec = DatasetSpec::dblp();
        let first = load_or_generate(&dir, &spec, 0.003, 5).unwrap();
        assert!(cache_path(&dir, &spec, 0.003, 5).exists());
        let second = load_or_generate(&dir, &spec, 0.003, 5).unwrap();
        assert_eq!(first.num_vertices(), second.num_vertices());
        assert_eq!(first.num_edges(), second.num_edges());
        assert_eq!(first.num_attributes(), second.num_attributes());
        for v in first.graph().vertices() {
            assert_eq!(first.attributes_of(v), second.attributes_of(v));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_parameters_get_distinct_entries() {
        let dir = temp_dir("keys");
        let spec = DatasetSpec::dblp();
        let a = cache_path(&dir, &spec, 0.003, 5);
        let b = cache_path(&dir, &spec, 0.004, 5);
        let c = cache_path(&dir, &spec, 0.003, 6);
        let d = cache_path(&dir, &DatasetSpec::lastfm(), 0.003, 5);
        let all = [&a, &b, &c, &d];
        for (i, x) in all.iter().enumerate() {
            for y in all.iter().skip(i + 1) {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn ingest_cache_hits_and_invalidates_on_content_change() {
        let dir = temp_dir("ingest");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("g.txt");
        let attrs = dir.join("g.attrs");
        std::fs::write(&edges, "0 1\n1 2\n").unwrap();
        std::fs::write(&attrs, "0 red\n2 blue\n").unwrap();
        let opts = IngestOptions::default();
        let cache = dir.join("cache");
        let (g1, hit1) =
            ingest_cached(&cache, SourceFormat::EdgeList, &edges, Some(&attrs), &opts).unwrap();
        assert!(!hit1);
        let (g2, hit2) =
            ingest_cached(&cache, SourceFormat::EdgeList, &edges, Some(&attrs), &opts).unwrap();
        assert!(hit2);
        assert_eq!(
            scpm_graph::snapshot::encode(&g1).as_ref(),
            scpm_graph::snapshot::encode(&g2).as_ref()
        );
        // Editing a source file misses the cache and picks up the change.
        std::fs::write(&attrs, "0 red\n2 green\n").unwrap();
        let (g3, hit3) =
            ingest_cached(&cache, SourceFormat::EdgeList, &edges, Some(&attrs), &opts).unwrap();
        assert!(!hit3);
        assert!(g3.attr_id("green").is_some());
        // Changing options also misses.
        let strict = IngestOptions {
            id_policy: IdPolicy::Intern,
            ..IngestOptions::default()
        };
        let (_, hit4) = ingest_cached(
            &cache,
            SourceFormat::EdgeList,
            &edges,
            Some(&attrs),
            &strict,
        )
        .unwrap();
        assert!(!hit4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_is_regenerated() {
        let dir = temp_dir("corrupt");
        let spec = DatasetSpec::dblp();
        std::fs::create_dir_all(&dir).unwrap();
        let path = cache_path(&dir, &spec, 0.003, 7);
        std::fs::write(&path, b"not a snapshot").unwrap();
        let graph = load_or_generate(&dir, &spec, 0.003, 7).unwrap();
        assert!(graph.num_vertices() >= 300);
        // The cache was overwritten with a valid snapshot.
        assert!(load_snapshot(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
