//! Snapshot-backed dataset cache.
//!
//! Bench-scale synthetic graphs take seconds to generate; the experiment
//! harness and examples ask for the same `(spec, scale, seed)` triples
//! over and over. [`load_or_generate`] keys a binary snapshot
//! (`scpm_graph::snapshot`) by those parameters and reloads it in
//! milliseconds on later calls.
//!
//! Only the attributed graph is cached — planted-community ground truth
//! is cheap to regenerate and callers that need it should call
//! [`crate::generate`] directly.

use std::path::{Path, PathBuf};

use scpm_graph::attributed::AttributedGraph;
use scpm_graph::snapshot::{load_snapshot, save_snapshot};

use crate::synthetic::{generate, DatasetSpec};

/// The cache file for a `(spec, scale, seed)` triple under `dir`.
pub fn cache_path(dir: &Path, spec: &DatasetSpec, scale: f64, seed: u64) -> PathBuf {
    // Scale is embedded with fixed precision so path equality matches
    // value equality for the scales in practical use.
    dir.join(format!("{}-s{:.6}-seed{}.snap", spec.name, scale, seed))
}

/// Loads the cached snapshot for `(spec, scale, seed)` or generates the
/// dataset and writes the cache. Corrupt or unreadable cache entries are
/// regenerated (and overwritten), never trusted.
pub fn load_or_generate(
    dir: impl AsRef<Path>,
    spec: &DatasetSpec,
    scale: f64,
    seed: u64,
) -> std::io::Result<AttributedGraph> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = cache_path(dir, spec, scale, seed);
    if let Ok(graph) = load_snapshot(&path) {
        return Ok(graph);
    }
    let dataset = generate(spec, scale, seed);
    if let Err(e) = save_snapshot(&dataset.graph, &path) {
        // A failed cache write is not fatal — the caller still gets the
        // freshly generated graph — but a permissions problem should not
        // pass silently either.
        eprintln!("warning: could not write dataset cache {path:?}: {e}");
    }
    Ok(dataset.graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scpm_ds_cache_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn generates_then_reloads_identically() {
        let dir = temp_dir("roundtrip");
        let spec = DatasetSpec::dblp();
        let first = load_or_generate(&dir, &spec, 0.003, 5).unwrap();
        assert!(cache_path(&dir, &spec, 0.003, 5).exists());
        let second = load_or_generate(&dir, &spec, 0.003, 5).unwrap();
        assert_eq!(first.num_vertices(), second.num_vertices());
        assert_eq!(first.num_edges(), second.num_edges());
        assert_eq!(first.num_attributes(), second.num_attributes());
        for v in first.graph().vertices() {
            assert_eq!(first.attributes_of(v), second.attributes_of(v));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn distinct_parameters_get_distinct_entries() {
        let dir = temp_dir("keys");
        let spec = DatasetSpec::dblp();
        let a = cache_path(&dir, &spec, 0.003, 5);
        let b = cache_path(&dir, &spec, 0.004, 5);
        let c = cache_path(&dir, &spec, 0.003, 6);
        let d = cache_path(&dir, &DatasetSpec::lastfm(), 0.003, 5);
        let all = [&a, &b, &c, &d];
        for (i, x) in all.iter().enumerate() {
            for y in all.iter().skip(i + 1) {
                assert_ne!(x, y);
            }
        }
    }

    #[test]
    fn corrupt_cache_is_regenerated() {
        let dir = temp_dir("corrupt");
        let spec = DatasetSpec::dblp();
        std::fs::create_dir_all(&dir).unwrap();
        let path = cache_path(&dir, &spec, 0.003, 7);
        std::fs::write(&path, b"not a snapshot").unwrap();
        let graph = load_or_generate(&dir, &spec, 0.003, 7).unwrap();
        assert!(graph.num_vertices() >= 300);
        // The cache was overwritten with a valid snapshot.
        assert!(load_snapshot(&path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
