//! Bounded-memory **external ingestion**: normalize on-disk sources into a
//! v3 snapshot without ever materializing the edge or pair streams in
//! memory.
//!
//! The in-memory path (`ingest::ingest_files` + `save_snapshot`) buffers
//! every edge and vertex-attribute pair, sorts them, and encodes the
//! snapshot from a built [`AttributedGraph`]. That is the right call for
//! datasets that fit; it is the wrong call for the paper-scale networks the
//! out-of-core CI job exercises. This module reproduces the normalization
//! **byte-for-byte** (the differential tests and the `out-of-core` CI job
//! enforce it) with a classic two-pass external-sort plan:
//!
//! 1. **Pass 1 — survey.** Stream-parse every source file through
//!    [`StreamingSource`], discarding records: this builds the vertex and
//!    attribute interners, the structural marks, and the self-loop count in
//!    `O(V + A)` memory. The id policy, relabeling map, attribute
//!    canonicalization order, and vertex count `n` all fall out here.
//! 2. **Pass 2 — spill.** Re-parse the same files (interning is
//!    first-appearance-deterministic, so ids reproduce exactly), relabel
//!    each record immediately, and push it into a [`RunSpiller`]: a
//!    fixed-capacity buffer that sorts, dedups and spills to a temporary
//!    run file every time it fills. Each undirected edge is pushed as
//!    *both* directed copies, so the merged `(src, dst)` stream is exactly
//!    the CSR neighbor order; pairs are spilled twice, keyed `(v, a)` for
//!    the forward table and `(a, v)` for the inverted index.
//! 3. **Merge.** K-way merge-dedup of each run set (fan-in capped, with
//!    intermediate merge passes when a tiny budget produces many runs)
//!    streams the section payloads into temp files while counting degrees
//!    and duplicates.
//! 4. **Assemble.** With all counts known, compute the v3
//!    [`layout`](scpm_graph::snapshot::layout), stream the payloads into
//!    the final file (hashing each section with
//!    [`Fnv1a64`](scpm_graph::snapshot::Fnv1a64) on the way through), patch
//!    the directory and header checksums, fsync, and rename into place —
//!    the same atomicity contract as `write_snapshot_atomic`.
//!
//! The memory budget bounds the *record buffers* — the `O(m + p)` part
//! that makes in-memory ingestion scale with the data. The interners,
//! offset arrays and structural marks are `O(V + A)` and deliberately stay
//! in memory: they are the same order as (and in practice smaller than)
//! the token tables any correct normalizer must hold to relabel at all.

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use scpm_graph::io::source::{canonical_numeric, StreamingSource};
use scpm_graph::io::ParseError;
use scpm_graph::snapshot::layout::{self, Counts, Section, DIR_OFFSET, SECTIONS};
use scpm_graph::snapshot::Fnv1a64;

use crate::ingest::{
    label_of, IdPolicy, IngestError, IngestOptions, IngestReport, ParseCounters, SelfLoopPolicy,
    SourceFormat, UnknownVertexPolicy,
};

/// Knobs for one external ingest run.
#[derive(Clone, Debug)]
pub struct ExternalOptions {
    /// Budget, in bytes, for the sort/spill record buffers. Small budgets
    /// produce more runs and more merge passes, never wrong answers; the
    /// floor is a few pages so degenerate budgets still make progress.
    pub memory_budget: usize,
    /// Where to put spill runs and section temp files. Defaults to a
    /// scratch directory next to the output snapshot.
    pub temp_dir: Option<PathBuf>,
}

impl Default for ExternalOptions {
    fn default() -> Self {
        ExternalOptions {
            memory_budget: 64 << 20,
            temp_dir: None,
        }
    }
}

/// Minimum record capacity of a spill buffer, whatever the budget says:
/// below this the run count explodes without saving measurable memory.
const MIN_BUFFER_RECORDS: usize = 4096;

/// Maximum merge fan-in; beyond this, runs are reduced in intermediate
/// passes so the merge's own buffers stay bounded.
const MAX_FANIN: usize = 64;

/// Per-run read-buffer size during merges.
const RUN_READ_BUF: usize = 64 << 10;

/// Ingests on-disk files straight into a v3 snapshot at `out`, holding at
/// most `ext.memory_budget` bytes of record buffers. The snapshot is
/// byte-identical to `save_snapshot(&ingest_files(...)?.graph, out)` and
/// the returned report is identical to the in-memory path's report.
///
/// The unified single-file format carries an explicit vertex universe and
/// ships only at toy scale, so it takes the in-memory path regardless of
/// budget; edge lists and adjacency lists (the shapes real releases use)
/// run the external plan.
pub fn ingest_files_external(
    format: SourceFormat,
    structure: &Path,
    attrs: Option<&Path>,
    opts: &IngestOptions,
    ext: &ExternalOptions,
    out: &Path,
) -> Result<IngestReport, IngestError> {
    if format == SourceFormat::Unified {
        let ingested = crate::ingest::ingest_files(format, structure, attrs, opts)?;
        scpm_graph::snapshot::save_snapshot(&ingested.graph, out)?;
        return Ok(ingested.report);
    }
    let label = label_of(structure);

    // ---- Pass 1: survey (interners, structural marks, self-loops). ----
    let mut survey = StreamingSource::new();
    let mut sink = |_rec: (u32, u32)| Ok(());
    parse_structure(format, structure, &mut survey, &mut sink)?;
    if let Some(attrs) = attrs {
        let file = File::open(attrs)?;
        survey.read_attr_table(file, &mut |_p| Ok(()))?;
    }

    if survey.self_loops > 0 && opts.self_loops == SelfLoopPolicy::Error {
        return Err(IngestError::SelfLoops {
            count: survey.self_loops,
        });
    }
    let attr_only = (0..survey.vertices.len() as u32)
        .filter(|&v| !survey.is_structural(v))
        .count();
    if opts.unknown_vertices == UnknownVertexPolicy::Error {
        if let Some(v) = (0..survey.vertices.len() as u32).find(|&v| !survey.is_structural(v)) {
            return Err(IngestError::UnknownVertex {
                token: survey.vertices.name(v).to_string(),
            });
        }
    }

    // Vertex relabeling decision — the same rules as `ingest_source`.
    let distinct = survey.vertices.len();
    let numeric_ok = survey.vertices.all_numeric();
    let dense_enough = (survey.vertices.max_numeric() as usize) < 2 * distinct + 1024;
    let use_numeric = match opts.id_policy {
        IdPolicy::Intern => false,
        IdPolicy::Auto => distinct > 0 && numeric_ok && dense_enough,
        IdPolicy::Numeric => {
            if let Some(bad) = survey
                .vertices
                .names()
                .iter()
                .find(|t| canonical_numeric(t).is_none())
            {
                return Err(IngestError::NonNumericId { token: bad.clone() });
            }
            true
        }
    };
    let (vertex_map, n): (Option<Vec<u32>>, usize) = if use_numeric {
        let map: Vec<u32> = survey
            .vertices
            .names()
            .iter()
            .map(|t| canonical_numeric(t).expect("checked numeric"))
            .collect();
        let n = if distinct == 0 {
            0
        } else {
            survey.vertices.max_numeric() as usize + 1
        };
        (Some(map), n)
    } else {
        (None, distinct)
    };

    // Attribute canonicalization (lexicographic by name), as in
    // `ingest_source`: every interned attribute has support ≥ 1, so none
    // are dropped.
    let num_attrs = survey.attributes.len();
    let mut attr_order: Vec<u32> = (0..num_attrs as u32).collect();
    if opts.canonical_attrs {
        attr_order.sort_by(|&a, &b| survey.attributes.name(a).cmp(survey.attributes.name(b)));
    }
    let mut attr_map = vec![0u32; num_attrs];
    for (new, &old) in attr_order.iter().enumerate() {
        attr_map[old as usize] = new as u32;
    }

    // ---- Pass 2: relabel + spill sorted runs. ----
    let scratch = match &ext.temp_dir {
        Some(d) => d.clone(),
        None => {
            let parent = out.parent().unwrap_or(Path::new("."));
            parent.join(format!(
                "{}.oocore-tmp",
                out.file_name().and_then(|s| s.to_str()).unwrap_or("snap")
            ))
        }
    };
    std::fs::create_dir_all(&scratch)?;
    let result: Result<IngestReport, IngestError> = (|| {
        let cap = (ext.memory_budget / 2 / 8).max(MIN_BUFFER_RECORDS);
        let relabel = |v: u32| -> u32 { vertex_map.as_ref().map_or(v, |m| m[v as usize]) };

        let mut edge_runs = RunSpiller::new(&scratch, "edges", cap)?;
        let mut pair_runs = RunSpiller::new(&scratch, "pairs-va", cap / 2)?;
        let mut inv_runs = RunSpiller::new(&scratch, "pairs-av", cap / 2)?;

        let mut replay = StreamingSource::new();
        {
            let mut edge_sink = |(u, v): (u32, u32)| {
                let (u, v) = (relabel(u), relabel(v));
                edge_runs.push((u, v)).map_err(ParseError::Io)?;
                edge_runs.push((v, u)).map_err(ParseError::Io)?;
                Ok(())
            };
            parse_structure(format, structure, &mut replay, &mut edge_sink)?;
        }
        if let Some(attrs) = attrs {
            let file = File::open(attrs)?;
            replay.read_attr_table(file, &mut |(v, a)| {
                let rec = (relabel(v), attr_map[a as usize]);
                pair_runs.push(rec).map_err(ParseError::Io)?;
                inv_runs.push((rec.1, rec.0)).map_err(ParseError::Io)?;
                Ok(())
            })?;
        }
        let self_loops = replay.self_loops;
        debug_assert_eq!(self_loops, survey.self_loops);

        // ---- Merge each run set into its section payload temp files. ----
        // Edges: grouped by source vertex, the dedup'd `(src, dst)` stream
        // *is* the concatenated sorted neighbor lists.
        let edge_raw = edge_runs.raw_records();
        let mut degrees = vec![0u64; n];
        let edges_tmp = scratch.join("csr_edges.payload");
        let unique_directed;
        {
            let mut w = BufWriter::new(File::create(&edges_tmp)?);
            let runs = edge_runs.finish()?;
            unique_directed = merge_runs(runs, &scratch, "edges", |(u, v)| {
                degrees[u as usize] += 1;
                w.write_all(&v.to_le_bytes())
            })?;
            w.flush()?;
        }
        debug_assert_eq!(unique_directed % 2, 0, "directed edge copies must pair up");
        let m = unique_directed / 2;
        let duplicate_edges = ((edge_raw - unique_directed) / 2) as usize;
        let csr_offsets = prefix_sum(&degrees);

        // Forward pairs: grouped by vertex.
        let pair_raw = pair_runs.raw_records();
        let mut attr_degrees = vec![0u64; n];
        let pairs_tmp = scratch.join("vertex_attrs.payload");
        let unique_pairs;
        {
            let mut w = BufWriter::new(File::create(&pairs_tmp)?);
            let runs = pair_runs.finish()?;
            unique_pairs = merge_runs(runs, &scratch, "pairs-va", |(v, a)| {
                attr_degrees[v as usize] += 1;
                w.write_all(&a.to_le_bytes())
            })?;
            w.flush()?;
        }
        let duplicate_pairs = (pair_raw - unique_pairs) as usize;
        let attr_offsets = prefix_sum(&attr_degrees);

        // Inverted pairs: grouped by attribute.
        let mut supports = vec![0u64; num_attrs];
        let inv_tmp = scratch.join("inv_vertices.payload");
        {
            let mut w = BufWriter::new(File::create(&inv_tmp)?);
            let runs = inv_runs.finish()?;
            let unique_inv = merge_runs(runs, &scratch, "pairs-av", |(a, v)| {
                supports[a as usize] += 1;
                w.write_all(&v.to_le_bytes())
            })?;
            w.flush()?;
            debug_assert_eq!(unique_inv, unique_pairs);
        }
        let inv_offsets = prefix_sum(&supports);

        // Interner payload (canonical name order).
        let mut interner = Vec::new();
        for idx in 0..num_attrs as u32 {
            let old = attr_order[idx as usize];
            let name = survey.attributes.name(old).as_bytes();
            interner.extend_from_slice(&(name.len() as u32).to_le_bytes());
            interner.extend_from_slice(name);
        }

        // ---- Assemble the v3 snapshot. ----
        let counts = Counts {
            n: n as u64,
            m,
            a: num_attrs as u64,
            pairs: unique_pairs,
        };
        let payloads = SectionPayloads {
            csr_offsets: &csr_offsets,
            csr_edges: &edges_tmp,
            attr_offsets: &attr_offsets,
            vertex_attrs: &pairs_tmp,
            inv_offsets: &inv_offsets,
            inv_vertices: &inv_tmp,
            interner: &interner,
        };
        assemble_snapshot(out, &scratch, counts, &payloads)?;

        // ---- Report (identical to the in-memory path's). ----
        let mut rows: Vec<(String, usize)> = (0..num_attrs as u32)
            .map(|a| {
                let old = attr_order[a as usize];
                (
                    survey.attributes.name(old).to_string(),
                    supports[a as usize] as usize,
                )
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        rows.truncate(opts.top_attributes);

        Ok(IngestReport {
            label: label.clone(),
            vertices: n,
            edges: m as usize,
            attributes: num_attrs,
            pairs: unique_pairs as usize,
            numeric_ids: use_numeric,
            top_attributes: rows,
            parse: Some(ParseCounters {
                self_loops_dropped: self_loops,
                duplicate_edges_merged: duplicate_edges,
                duplicate_pairs_merged: duplicate_pairs,
                attr_only_vertices: attr_only,
            }),
        })
    })();
    let cleanup = std::fs::remove_dir_all(&scratch);
    let report = result?;
    cleanup?;
    Ok(report)
}

fn parse_structure(
    format: SourceFormat,
    structure: &Path,
    src: &mut StreamingSource,
    emit: &mut dyn FnMut((u32, u32)) -> Result<(), ParseError>,
) -> Result<(), IngestError> {
    let file = File::open(structure)?;
    match format {
        SourceFormat::EdgeList => src.read_edge_list(file, emit)?,
        SourceFormat::Adjacency => src.read_adjacency(file, emit)?,
        SourceFormat::Unified => unreachable!("unified format takes the in-memory path"),
    }
    Ok(())
}

fn prefix_sum(counts: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u64;
    out.push(0);
    for &c in counts {
        acc += c;
        out.push(acc);
    }
    out
}

/// A fixed-capacity sort buffer that spills sorted, dedup'd runs of
/// `(u32, u32)` records to disk.
struct RunSpiller {
    dir: PathBuf,
    prefix: String,
    buf: Vec<(u32, u32)>,
    cap: usize,
    runs: Vec<PathBuf>,
    raw: u64,
}

impl RunSpiller {
    fn new(dir: &Path, prefix: &str, cap: usize) -> std::io::Result<RunSpiller> {
        let cap = cap.max(MIN_BUFFER_RECORDS);
        Ok(RunSpiller {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            buf: Vec::with_capacity(cap.min(1 << 20)),
            cap,
            runs: Vec::new(),
            raw: 0,
        })
    }

    fn push(&mut self, rec: (u32, u32)) -> std::io::Result<()> {
        self.raw += 1;
        self.buf.push(rec);
        if self.buf.len() >= self.cap {
            self.spill()?;
        }
        Ok(())
    }

    /// Records pushed so far, before any dedup.
    fn raw_records(&self) -> u64 {
        self.raw
    }

    fn spill(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.buf.sort_unstable();
        self.buf.dedup();
        let path = self
            .dir
            .join(format!("{}.run{:04}", self.prefix, self.runs.len()));
        let mut w = BufWriter::new(File::create(&path)?);
        for &(x, y) in &self.buf {
            w.write_all(&x.to_le_bytes())?;
            w.write_all(&y.to_le_bytes())?;
        }
        w.flush()?;
        self.runs.push(path);
        self.buf.clear();
        Ok(())
    }

    fn finish(mut self) -> std::io::Result<Vec<PathBuf>> {
        self.spill()?;
        Ok(std::mem::take(&mut self.runs))
    }
}

/// Buffered reader over one sorted run.
struct RunReader {
    r: BufReader<File>,
    head: Option<(u32, u32)>,
}

impl RunReader {
    fn open(path: &Path) -> std::io::Result<RunReader> {
        let mut rr = RunReader {
            r: BufReader::with_capacity(RUN_READ_BUF, File::open(path)?),
            head: None,
        };
        rr.advance()?;
        Ok(rr)
    }

    fn advance(&mut self) -> std::io::Result<()> {
        let mut rec = [0u8; 8];
        self.head = match self.r.read_exact(&mut rec) {
            Ok(()) => Some((
                u32::from_le_bytes(rec[..4].try_into().unwrap()),
                u32::from_le_bytes(rec[4..].try_into().unwrap()),
            )),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => None,
            Err(e) => return Err(e),
        };
        Ok(())
    }
}

/// K-way merge-dedups sorted runs into `emit`, reducing fan-in with
/// intermediate passes when a tiny budget produced many runs. Returns the
/// number of unique records emitted. Run files are deleted as consumed.
fn merge_runs(
    mut runs: Vec<PathBuf>,
    scratch: &Path,
    prefix: &str,
    mut emit: impl FnMut((u32, u32)) -> std::io::Result<()>,
) -> std::io::Result<u64> {
    let mut gen = 0usize;
    while runs.len() > MAX_FANIN {
        let batch: Vec<PathBuf> = runs.drain(..MAX_FANIN).collect();
        gen += 1;
        let merged = scratch.join(format!("{prefix}.merge{gen:04}"));
        let mut w = BufWriter::new(File::create(&merged)?);
        merge_batch(&batch, |(x, y)| {
            w.write_all(&x.to_le_bytes())?;
            w.write_all(&y.to_le_bytes())
        })?;
        w.flush()?;
        for p in &batch {
            std::fs::remove_file(p).ok();
        }
        runs.push(merged);
    }
    let count = merge_batch(&runs, &mut emit)?;
    for p in &runs {
        std::fs::remove_file(p).ok();
    }
    Ok(count)
}

fn merge_batch(
    runs: &[PathBuf],
    mut emit: impl FnMut((u32, u32)) -> std::io::Result<()>,
) -> std::io::Result<u64> {
    let mut readers = Vec::with_capacity(runs.len());
    // Min-heap of (record, reader index).
    let mut heap: BinaryHeap<std::cmp::Reverse<((u32, u32), usize)>> = BinaryHeap::new();
    for (i, path) in runs.iter().enumerate() {
        let rr = RunReader::open(path)?;
        if let Some(rec) = rr.head {
            heap.push(std::cmp::Reverse((rec, i)));
        }
        readers.push(rr);
    }
    let mut last: Option<(u32, u32)> = None;
    let mut unique = 0u64;
    while let Some(std::cmp::Reverse((rec, i))) = heap.pop() {
        if last != Some(rec) {
            emit(rec)?;
            last = Some(rec);
            unique += 1;
        }
        readers[i].advance()?;
        if let Some(next) = readers[i].head {
            heap.push(std::cmp::Reverse((next, i)));
        }
    }
    Ok(unique)
}

/// The seven section payloads, small ones in memory and big ones as temp
/// files produced by the merges.
struct SectionPayloads<'a> {
    csr_offsets: &'a [u64],
    csr_edges: &'a Path,
    attr_offsets: &'a [u64],
    vertex_attrs: &'a Path,
    inv_offsets: &'a [u64],
    inv_vertices: &'a Path,
    interner: &'a [u8],
}

/// Streams the payloads into a v3 snapshot at `out`: zero header +
/// directory first, sections (hashed on the way through), then the patched
/// directory and header written back, fsync, atomic rename. Byte-identical
/// to `write_atomic(out, &encode(graph))` for the equivalent graph.
fn assemble_snapshot(
    out: &Path,
    scratch: &Path,
    counts: Counts,
    payloads: &SectionPayloads<'_>,
) -> std::io::Result<u64> {
    let lay = layout::layout(counts, payloads.interner.len() as u64);
    let tmp = scratch.join("snapshot.final");
    let mut f = BufWriter::new(File::create(&tmp)?);

    // Placeholder header + directory (patched below, once checksums exist).
    f.write_all(&vec![0u8; layout::HEADER_LEN + layout::DIR_LEN])?;

    let mut cursor = (layout::HEADER_LEN + layout::DIR_LEN) as u64;
    let mut checksums = [0u64; layout::SECTION_COUNT];
    for s in SECTIONS {
        let e = lay.extents[s.index()];
        // Zero-fill the alignment gap.
        f.write_all(&vec![0u8; (e.offset - cursor) as usize])?;
        let mut h = Fnv1a64::new();
        match s {
            Section::CsrOffsets => write_u64s(&mut f, &mut h, payloads.csr_offsets)?,
            Section::CsrEdges => copy_hashed(&mut f, &mut h, payloads.csr_edges)?,
            Section::AttrOffsets => write_u64s(&mut f, &mut h, payloads.attr_offsets)?,
            Section::VertexAttrs => copy_hashed(&mut f, &mut h, payloads.vertex_attrs)?,
            Section::InvOffsets => write_u64s(&mut f, &mut h, payloads.inv_offsets)?,
            Section::InvVertices => copy_hashed(&mut f, &mut h, payloads.inv_vertices)?,
            Section::Interner => {
                h.update(payloads.interner);
                f.write_all(payloads.interner)?;
            }
        }
        checksums[s.index()] = h.finish();
        cursor = e.offset + e.len;
    }
    debug_assert_eq!(cursor, lay.total_len);

    // Build the real header + directory in memory, checksum, patch.
    let mut head = Vec::with_capacity(layout::HEADER_LEN + layout::DIR_LEN);
    head.extend_from_slice(scpm_graph::snapshot::MAGIC);
    head.extend_from_slice(&scpm_graph::snapshot::VERSION.to_le_bytes());
    head.extend_from_slice(&(layout::SECTION_COUNT as u32).to_le_bytes());
    head.extend_from_slice(&counts.n.to_le_bytes());
    head.extend_from_slice(&counts.m.to_le_bytes());
    head.extend_from_slice(&counts.a.to_le_bytes());
    head.extend_from_slice(&counts.pairs.to_le_bytes());
    head.extend_from_slice(&lay.total_len.to_le_bytes());
    head.extend_from_slice(&0u64.to_le_bytes()); // header checksum slot
    debug_assert_eq!(head.len(), DIR_OFFSET);
    for s in SECTIONS {
        let e = lay.extents[s.index()];
        head.extend_from_slice(&(s as u32).to_le_bytes());
        head.extend_from_slice(&0u32.to_le_bytes());
        head.extend_from_slice(&e.offset.to_le_bytes());
        head.extend_from_slice(&e.len.to_le_bytes());
        head.extend_from_slice(&checksums[s.index()].to_le_bytes());
    }
    let mut h = Fnv1a64::new();
    h.update(&head[..layout::HEADER_CHECKSUM_OFFSET]);
    h.update(&head[DIR_OFFSET..]);
    let sum = h.finish();
    head[layout::HEADER_CHECKSUM_OFFSET..DIR_OFFSET].copy_from_slice(&sum.to_le_bytes());

    let mut f = f.into_inner().map_err(|e| e.into_error())?;
    f.seek(SeekFrom::Start(0))?;
    f.write_all(&head)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, out)?;
    if let Some(parent) = out.parent() {
        if let Ok(dir) = File::open(parent) {
            dir.sync_all().ok();
        }
    }
    Ok(lay.total_len)
}

fn write_u64s(f: &mut impl Write, h: &mut Fnv1a64, values: &[u64]) -> std::io::Result<()> {
    for &v in values {
        let b = v.to_le_bytes();
        h.update(&b);
        f.write_all(&b)?;
    }
    Ok(())
}

fn copy_hashed(f: &mut impl Write, h: &mut Fnv1a64, path: &Path) -> std::io::Result<()> {
    let mut r = BufReader::with_capacity(RUN_READ_BUF, File::open(path)?);
    let mut buf = [0u8; 16384];
    loop {
        let k = r.read(&mut buf)?;
        if k == 0 {
            return Ok(());
        }
        h.update(&buf[..k]);
        f.write_all(&buf[..k])?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::ingest_files;

    fn workdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("scpm_external_ingest").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn assert_paths_identical(a: &Path, b: &Path) {
        assert_eq!(
            std::fs::read(a).unwrap(),
            std::fs::read(b).unwrap(),
            "snapshots diverge"
        );
    }

    fn roundtrip(dir: &Path, edges: &str, attrs: &str, budget: usize) {
        let edges_path = dir.join("g.txt");
        std::fs::write(&edges_path, edges).unwrap();
        let attrs_path = if attrs.is_empty() {
            None
        } else {
            let p = dir.join("g.attrs");
            std::fs::write(&p, attrs).unwrap();
            Some(p)
        };
        let opts = IngestOptions::default();

        let reference = ingest_files(
            SourceFormat::EdgeList,
            &edges_path,
            attrs_path.as_deref(),
            &opts,
        )
        .unwrap();
        let ref_snap = dir.join("reference.snap");
        scpm_graph::snapshot::save_snapshot(&reference.graph, &ref_snap).unwrap();

        let ext_snap = dir.join("external.snap");
        let report = ingest_files_external(
            SourceFormat::EdgeList,
            &edges_path,
            attrs_path.as_deref(),
            &opts,
            &ExternalOptions {
                memory_budget: budget,
                temp_dir: None,
            },
            &ext_snap,
        )
        .unwrap();

        assert_paths_identical(&ref_snap, &ext_snap);
        assert_eq!(report.to_string(), reference.report.to_string());
        assert!(!ext_snap
            .parent()
            .unwrap()
            .join("external.snap.oocore-tmp")
            .exists());
    }

    #[test]
    fn tiny_graph_matches_in_memory_path() {
        let dir = workdir("tiny");
        roundtrip(
            &dir,
            "0 1\n1 2\n2 0\n2 0\n1 1\n",
            "0 db ml\n1 db\n2 db\n",
            1 << 20,
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interned_string_ids_match_in_memory_path() {
        let dir = workdir("interned");
        roundtrip(
            &dir,
            "carol alice\nalice bob\nbob carol\n",
            "bob jazz blues\ncarol jazz\n",
            1 << 20,
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn degenerate_budget_still_byte_identical() {
        // A budget far below MIN_BUFFER_RECORDS*8: everything spills at the
        // floor capacity, exercising multi-run merges on a bigger source.
        let dir = workdir("degenerate");
        let mut edges = String::new();
        let mut attrs = String::new();
        // Deterministic pseudo-random-ish graph with duplicates and loops.
        let n = 400u32;
        for i in 0..n {
            for j in 1..=6 {
                edges.push_str(&format!("{} {}\n", i, (i * 7 + j * 31) % n));
            }
        }
        for v in 0..n {
            attrs.push_str(&format!("{} a{} a{} a{}\n", v, v % 11, v % 5, (v / 3) % 17));
        }
        roundtrip(&dir, &edges, &attrs, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adjacency_format_matches_in_memory_path() {
        let dir = workdir("adjacency");
        let adj_path = dir.join("g.adj");
        std::fs::write(&adj_path, "0: 1 2\n1: 0 2\n2: 0 1\n3:\n").unwrap();
        let opts = IngestOptions::default();
        let reference = ingest_files(SourceFormat::Adjacency, &adj_path, None, &opts).unwrap();
        let ref_snap = dir.join("reference.snap");
        scpm_graph::snapshot::save_snapshot(&reference.graph, &ref_snap).unwrap();
        let ext_snap = dir.join("external.snap");
        ingest_files_external(
            SourceFormat::Adjacency,
            &adj_path,
            None,
            &opts,
            &ExternalOptions::default(),
            &ext_snap,
        )
        .unwrap();
        assert_paths_identical(&ref_snap, &ext_snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn policies_surface_the_same_errors() {
        let dir = workdir("policies");
        let edges = dir.join("g.txt");
        std::fs::write(&edges, "0 0\n0 1\n").unwrap();
        let opts = IngestOptions {
            self_loops: SelfLoopPolicy::Error,
            ..Default::default()
        };
        let e = ingest_files_external(
            SourceFormat::EdgeList,
            &edges,
            None,
            &opts,
            &ExternalOptions::default(),
            &dir.join("out.snap"),
        );
        assert!(matches!(e, Err(IngestError::SelfLoops { count: 1 })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_snapshot_opens_zero_copy() {
        let dir = workdir("open");
        let edges = dir.join("g.txt");
        std::fs::write(&edges, "0 1\n1 2\n2 3\n3 0\n").unwrap();
        let snap = dir.join("g.snap");
        ingest_files_external(
            SourceFormat::EdgeList,
            &edges,
            None,
            &IngestOptions::default(),
            &ExternalOptions::default(),
            &snap,
        )
        .unwrap();
        let mapped = scpm_graph::snapshot::MappedSnapshot::open(&snap).unwrap();
        mapped.validate().unwrap();
        assert_eq!(mapped.num_vertices(), 4);
        assert_eq!(mapped.num_edges(), 4);
        assert_eq!(mapped.neighbors(0).unwrap(), &[1, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
