//! Seeded synthetic attributed graphs calibrated to the three networks of
//! the paper's evaluation (§4.1). The real crawls are not redistributable,
//! so each generator reproduces the *shape* that drives the paper's
//! findings (see DESIGN.md):
//!
//! * vertex/edge/attribute counts matching the published statistics (times
//!   a `scale` factor),
//! * heavy-tailed degree and attribute-popularity distributions,
//! * planted communities whose members share small "topic" attribute sets
//!   — the structural correlation signal SCPM is designed to find.

use scpm_graph::attributed::AttributedGraph;
use scpm_graph::csr::VertexId;
use scpm_graph::generators::attributes::AttributeModel;
use scpm_graph::generators::coauthorship::CliqueOverlay;
use scpm_graph::generators::planted::{BackgroundModel, PlantedCommunityConfig, PlantedGraph};

use crate::vocab;

/// Calibration constants of one synthetic dataset (values at `scale = 1`).
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name used in reports.
    pub name: &'static str,
    /// Vertex count of the real dataset.
    pub vertices: usize,
    /// Background topology model.
    pub background: BackgroundModel,
    /// Planted communities per vertex (e.g. 1/150 = one community per 150
    /// vertices).
    pub communities_per_vertex: f64,
    /// Community size range.
    pub community_size: (usize, usize),
    /// Intra-community edge probability.
    pub p_in: f64,
    /// Background vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent of attribute popularity.
    pub zipf_exponent: f64,
    /// Mean background attributes per vertex.
    pub mean_attrs: f64,
    /// Topic attributes per community.
    pub topic_attrs: usize,
    /// Probability a member carries each topic attribute.
    pub p_topic: f64,
    /// Probability a non-member carries a topic attribute.
    pub p_topic_noise: f64,
    /// Background-term name pool.
    pub term_vocab: &'static [&'static str],
    /// Topic name pool (planted community attributes).
    pub topic_vocab: &'static [&'static str],
    /// Optional per-paper clique overlay (collaboration networks are
    /// unions of author cliques; see `DatasetSpec::dblp_coauth`).
    pub overlay: Option<CliqueOverlay>,
}

impl DatasetSpec {
    /// The DBLP co-authorship network: 108,030 vertices, 276,658 edges,
    /// 23,285 title-term attributes.
    pub fn dblp() -> Self {
        DatasetSpec {
            name: "dblp",
            vertices: 108_030,
            background: BackgroundModel::PreferentialAttachment { m: 2 },
            communities_per_vertex: 1.0 / 150.0,
            community_size: (10, 25),
            p_in: 0.62,
            vocab_size: 23_285,
            zipf_exponent: 1.15,
            mean_attrs: 6.0,
            topic_attrs: 2,
            p_topic: 0.85,
            // Topic supports must land just above the paper's σmin = 400
            // (a 0.37% support fraction on the full dataset).
            p_topic_noise: 0.004,
            term_vocab: vocab::DBLP_TERMS,
            topic_vocab: vocab::DBLP_TOPICS,
            overlay: None,
        }
    }

    /// The LastFm friendship network: 272,412 vertices, 350,239 edges,
    /// ~3.9M listened-artist attributes (vocabulary capped for synthesis).
    pub fn lastfm() -> Self {
        DatasetSpec {
            name: "lastfm",
            vertices: 272_412,
            background: BackgroundModel::PreferentialAttachment { m: 1 },
            communities_per_vertex: 1.0 / 300.0,
            community_size: (5, 20),
            p_in: 0.60,
            vocab_size: 50_000,
            zipf_exponent: 1.05,
            mean_attrs: 12.0,
            topic_attrs: 2,
            p_topic: 0.90,
            // The paper's σmin = 27,000 is ~10% of the users; its top-δ
            // taste sets sit just above that bar, so niche-taste topics get
            // a ~10.5% background adoption.
            p_topic_noise: 0.105,
            term_vocab: vocab::LASTFM_ARTISTS,
            topic_vocab: vocab::LASTFM_ARTISTS,
            overlay: None,
        }
    }

    /// The CiteSeer citation network: 294,104 vertices, 782,147 edges,
    /// 206,430 abstract-term attributes.
    pub fn citeseer() -> Self {
        DatasetSpec {
            name: "citeseer",
            vertices: 294_104,
            background: BackgroundModel::PreferentialAttachment { m: 2 },
            communities_per_vertex: 1.0 / 200.0,
            community_size: (5, 15),
            p_in: 0.70,
            vocab_size: 206_430,
            zipf_exponent: 1.10,
            mean_attrs: 8.0,
            topic_attrs: 2,
            p_topic: 0.85,
            // σmin = 2000 is a 0.68% fraction; topics adopt at 0.75%.
            p_topic_noise: 0.0075,
            term_vocab: vocab::CITESEER_TERMS,
            topic_vocab: vocab::CITESEER_TOPICS,
            overlay: None,
        }
    }

    /// SmallDBLP — the performance-evaluation dataset of §4.2:
    /// 32,908 vertices, 82,376 edges, 11,192 attributes.
    pub fn small_dblp() -> Self {
        DatasetSpec {
            vertices: 32_908,
            vocab_size: 11_192,
            ..Self::dblp()
        }
    }

    /// Dense-clique stress scenario: large overlapping near-cliques
    /// (`p_in = 0.9`) on a thin uniform background — the dense extreme of
    /// the `exp_perf` scenario matrix, where candidate sets stay wide and
    /// packed rows are nearly full (block skipping buys nothing; the
    /// fused popcount kernels must carry the win).
    pub fn dense_clique() -> Self {
        DatasetSpec {
            name: "dense-clique",
            vertices: 60_000,
            background: BackgroundModel::Uniform { mean_degree: 2.0 },
            communities_per_vertex: 1.0 / 60.0,
            community_size: (12, 20),
            p_in: 0.9,
            vocab_size: 4_000,
            zipf_exponent: 1.1,
            mean_attrs: 4.0,
            topic_attrs: 2,
            p_topic: 0.9,
            p_topic_noise: 0.01,
            term_vocab: vocab::DBLP_TERMS,
            topic_vocab: vocab::DBLP_TOPICS,
            overlay: None,
        }
    }

    /// Sparse-star scenario: preferential attachment with `m = 1` grows a
    /// hub-and-spoke forest (star-like neighborhoods, tree-ish overall)
    /// with a few small planted pockets — the sparse extreme of the
    /// scenario matrix, where vertex reduction guts the graph and sparse
    /// rows / empty-block skipping dominate.
    pub fn sparse_star() -> Self {
        DatasetSpec {
            name: "sparse-star",
            vertices: 120_000,
            background: BackgroundModel::PreferentialAttachment { m: 1 },
            communities_per_vertex: 1.0 / 400.0,
            community_size: (5, 9),
            p_in: 0.75,
            vocab_size: 20_000,
            zipf_exponent: 1.05,
            mean_attrs: 5.0,
            topic_attrs: 2,
            p_topic: 0.85,
            p_topic_noise: 0.02,
            term_vocab: vocab::LASTFM_ARTISTS,
            topic_vocab: vocab::LASTFM_ARTISTS,
            overlay: None,
        }
    }

    /// Skewed-attribute scenario: a steep Zipf exponent (1.6) makes a few
    /// head attributes near-universal and the tail vanishingly rare — the
    /// attribute-distribution shape the significance-testing workloads of
    /// Lee et al. (arXiv:1609.08266) emphasize. Head attributes induce
    /// wide mining subgraphs, tail attributes tiny ones, stressing both
    /// ends of the kernel size spectrum in one run.
    pub fn skewed_attr() -> Self {
        DatasetSpec {
            name: "skewed-attr",
            vertices: 80_000,
            background: BackgroundModel::PreferentialAttachment { m: 2 },
            communities_per_vertex: 1.0 / 150.0,
            community_size: (8, 14),
            p_in: 0.7,
            vocab_size: 30_000,
            zipf_exponent: 1.6,
            mean_attrs: 10.0,
            topic_attrs: 2,
            p_topic: 0.85,
            p_topic_noise: 0.01,
            term_vocab: vocab::CITESEER_TERMS,
            topic_vocab: vocab::CITESEER_TOPICS,
            overlay: None,
        }
    }

    /// DBLP with a per-paper clique overlay.
    ///
    /// Co-authorship graphs are unions of one clique per paper, including
    /// occasional very large collaborations; that clique spectrum is what
    /// makes *random* vertex samples of the real graph still contain
    /// quasi-cliques (the non-zero `sim-exp` of the paper's Figure 4).
    /// The plain [`DatasetSpec::dblp`] background reproduces degrees and
    /// planted communities but not that spectrum, so its `sim-exp` at
    /// Figure-4 sample sizes is numerically zero. Use this variant for
    /// null-model experiments; the pattern-mining tables are insensitive
    /// to the difference.
    pub fn dblp_coauth() -> Self {
        DatasetSpec {
            name: "dblp-coauth",
            overlay: Some(CliqueOverlay::dblp_flavor()),
            ..Self::dblp()
        }
    }
}

/// A generated dataset: the attributed graph plus ground truth.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// The attributed graph.
    pub graph: AttributedGraph,
    /// Planted community memberships (ground truth).
    pub communities: Vec<Vec<VertexId>>,
    /// Name of the originating spec.
    pub name: &'static str,
    /// Scale factor that was applied.
    pub scale: f64,
}

/// Generates a dataset from a spec at the given scale (`scale = 1` matches
/// the real dataset's vertex count; examples and benches typically use
/// 0.02–0.25, while out-of-core stress runs extrapolate past 1 to reach
/// million-edge graphs).
pub fn generate(spec: &DatasetSpec, scale: f64, seed: u64) -> SyntheticDataset {
    assert!(scale > 0.0, "scale must be positive");
    let n = ((spec.vertices as f64 * scale).round() as usize).max(300);
    let num_communities = ((n as f64 * spec.communities_per_vertex).round() as usize).max(3);
    // Community sizes stay constant under scaling (a research group does
    // not shrink when the corpus is subsampled).
    let planted_cfg = PlantedCommunityConfig {
        n,
        background: spec.background,
        num_communities,
        community_size: spec.community_size,
        p_in: spec.p_in,
    };
    let mut planted = PlantedGraph::generate(&planted_cfg, seed);
    if let Some(overlay) = &spec.overlay {
        planted.graph = overlay.apply(&planted.graph, seed ^ 0x5eed_c0de);
    }

    let vocab_size = ((spec.vocab_size as f64 * scale).round() as usize).max(spec.term_vocab.len());
    let model = AttributeModel {
        vocab_size,
        zipf_exponent: spec.zipf_exponent,
        mean_attrs_per_vertex: spec.mean_attrs,
        topic_attrs_per_community: spec.topic_attrs,
        p_topic: spec.p_topic,
        p_topic_noise: spec.p_topic_noise,
    };
    let term_vocab: Vec<String> = spec.term_vocab.iter().map(|s| s.to_string()).collect();
    // Topic names cycle through the topic vocabulary with numeric suffixes
    // once exhausted, so every community gets a distinct topic set.
    let topics_needed = num_communities * spec.topic_attrs;
    let topic_vocab: Vec<String> = (0..topics_needed)
        .map(|i| {
            let base = spec.topic_vocab[i % spec.topic_vocab.len()];
            if i < spec.topic_vocab.len() {
                format!("{base}*")
            } else {
                format!("{base}*{}", i / spec.topic_vocab.len())
            }
        })
        .collect();
    let graph = model.assign(
        &planted,
        Some(&term_vocab),
        Some(&topic_vocab),
        seed ^ 0x9e37_79b9,
    );
    SyntheticDataset {
        graph,
        communities: planted.communities,
        name: spec.name,
        scale,
    }
}

/// DBLP-like collaboration network at the given scale.
pub fn dblp_like(scale: f64, seed: u64) -> SyntheticDataset {
    generate(&DatasetSpec::dblp(), scale, seed)
}

/// LastFm-like social music network at the given scale.
pub fn lastfm_like(scale: f64, seed: u64) -> SyntheticDataset {
    generate(&DatasetSpec::lastfm(), scale, seed)
}

/// CiteSeer-like citation network at the given scale.
pub fn citeseer_like(scale: f64, seed: u64) -> SyntheticDataset {
    generate(&DatasetSpec::citeseer(), scale, seed)
}

/// SmallDBLP-like performance-evaluation network at the given scale.
pub fn small_dblp_like(scale: f64, seed: u64) -> SyntheticDataset {
    generate(&DatasetSpec::small_dblp(), scale, seed)
}

/// Dense-clique stress workload at the given scale (see
/// [`DatasetSpec::dense_clique`]).
pub fn dense_clique_like(scale: f64, seed: u64) -> SyntheticDataset {
    generate(&DatasetSpec::dense_clique(), scale, seed)
}

/// Sparse hub-and-spoke workload at the given scale (see
/// [`DatasetSpec::sparse_star`]).
pub fn sparse_star_like(scale: f64, seed: u64) -> SyntheticDataset {
    generate(&DatasetSpec::sparse_star(), scale, seed)
}

/// Skewed attribute-popularity workload at the given scale (see
/// [`DatasetSpec::skewed_attr`]).
pub fn skewed_attr_like(scale: f64, seed: u64) -> SyntheticDataset {
    generate(&DatasetSpec::skewed_attr(), scale, seed)
}

impl SyntheticDataset {
    /// The topic attribute ids of community `c` (ground truth for
    /// correlation checks).
    pub fn topic_attrs_of(&self, c: usize) -> Vec<scpm_graph::attributed::AttrId> {
        // Topic attributes are named "<base>*"-style; recover them by
        // majority presence among members.
        let members = &self.communities[c];
        let mut counts: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for &v in members {
            for &a in self.graph.attributes_of(v) {
                if self.graph.attr_name(a).contains('*') {
                    *counts.entry(a).or_insert(0) += 1;
                }
            }
        }
        let threshold = members.len() / 2;
        let mut out: Vec<u32> = counts
            .into_iter()
            .filter(|&(_, c)| c > threshold)
            .map(|(a, _)| a)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::degree::DegreeDistribution;

    #[test]
    fn dblp_like_counts_scale() {
        let d = dblp_like(0.02, 7);
        let n = d.graph.num_vertices();
        assert!((1900..=2400).contains(&n), "n = {n}");
        // Mean degree in the ballpark of DBLP's 5.1 (background + planted).
        let mean = 2.0 * d.graph.num_edges() as f64 / n as f64;
        assert!((2.0..10.0).contains(&mean), "mean degree {mean}");
        assert!(d.graph.num_attributes() >= vocab::DBLP_TERMS.len());
    }

    #[test]
    fn degree_distribution_heavy_tailed() {
        let d = dblp_like(0.02, 3);
        let dist = DegreeDistribution::from_graph(d.graph.graph());
        assert!(dist.max_degree() as f64 > 4.0 * dist.mean());
    }

    #[test]
    fn attribute_popularity_skewed() {
        let d = dblp_like(0.02, 5);
        let g = &d.graph;
        let base = g.attr_id("base").expect("top term present");
        // "base" (rank 0) must dominate a mid-rank term.
        let mid = g.attr_id("stream").unwrap();
        assert!(g.support(base) > g.support(mid));
    }

    #[test]
    fn planted_communities_are_dense_and_topical() {
        let d = dblp_like(0.02, 11);
        let mut topical = 0;
        for (c, members) in d.communities.iter().enumerate() {
            let pairs = members.len() * (members.len() - 1) / 2;
            let edges = d.graph.graph().edges_within(members);
            assert!(
                edges as f64 >= 0.4 * pairs as f64,
                "community {c} too sparse"
            );
            if !d.topic_attrs_of(c).is_empty() {
                topical += 1;
            }
        }
        assert!(topical as f64 >= 0.9 * d.communities.len() as f64);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = lastfm_like(0.005, 9);
        let b = lastfm_like(0.005, 9);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.communities, b.communities);
    }

    #[test]
    fn all_specs_generate() {
        for spec in [
            DatasetSpec::dblp(),
            DatasetSpec::lastfm(),
            DatasetSpec::citeseer(),
            DatasetSpec::small_dblp(),
            DatasetSpec::dense_clique(),
            DatasetSpec::sparse_star(),
            DatasetSpec::skewed_attr(),
        ] {
            let d = generate(&spec, 0.005, 1);
            assert!(d.graph.num_vertices() >= 300);
            assert!(d.graph.num_edges() > 0);
            assert!(d.graph.num_attributes() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn rejects_zero_scale() {
        dblp_like(0.0, 0);
    }

    #[test]
    fn accepts_scale_above_one() {
        // Out-of-core stress runs extrapolate past the reference size.
        let d = citeseer_like(1.1, 7);
        let base = citeseer_like(1.0, 7);
        assert!(d.graph.num_vertices() > base.graph.num_vertices());
    }

    #[test]
    fn scenario_specs_have_their_shapes() {
        // Dense-clique: planted pockets are near-cliques.
        let dense = dense_clique_like(0.02, 3);
        let mut dense_frac = 0.0;
        for members in &dense.communities {
            let pairs = members.len() * (members.len() - 1) / 2;
            dense_frac += dense.graph.graph().edges_within(members) as f64 / pairs as f64;
        }
        dense_frac /= dense.communities.len() as f64;
        assert!(dense_frac > 0.8, "mean community density {dense_frac}");

        // Sparse-star: tree-ish background, mean degree ≈ 2.
        let sparse = sparse_star_like(0.01, 3);
        let mean = 2.0 * sparse.graph.num_edges() as f64 / sparse.graph.num_vertices() as f64;
        assert!(mean < 3.5, "sparse-star mean degree {mean}");

        // Skewed-attr: the head attribute dwarfs a mid-rank one by far
        // more than under the milder dblp exponent.
        let skewed = skewed_attr_like(0.02, 3);
        let g = &skewed.graph;
        let head = g.attr_id("system").expect("head term present");
        let mid = g.attr_id("wireless").expect("mid term present");
        assert!(
            g.support(head) > 8 * g.support(mid).max(1),
            "head {} vs mid {}",
            g.support(head),
            g.support(mid)
        );
    }

    #[test]
    fn coauth_overlay_adds_cliques_over_plain_dblp() {
        let plain = generate(&DatasetSpec::dblp(), 0.01, 5);
        let coauth = generate(&DatasetSpec::dblp_coauth(), 0.01, 5);
        assert_eq!(plain.graph.num_vertices(), coauth.graph.num_vertices());
        assert!(coauth.graph.num_edges() > plain.graph.num_edges());
        // The overlay's clique spectrum shows up as triangles.
        let t_plain = scpm_graph::cluster::clustering(plain.graph.graph()).total_triangles;
        let t_coauth = scpm_graph::cluster::clustering(coauth.graph.graph()).total_triangles;
        assert!(
            t_coauth > t_plain,
            "overlay triangles {t_coauth} vs plain {t_plain}"
        );
    }
}
