//! Datasets for the SCPM suite: synthetic stand-ins for the paper's
//! evaluation networks, plus the ingestion pipeline that loads *real*
//! attributed graphs from disk.
//!
//! * [`synthetic`] — seeded, scalable generators calibrated to the paper's
//!   DBLP / LastFm / CiteSeer / SmallDBLP networks (see the calibration
//!   notes in the module docs).
//! * [`ingest`] — normalization of on-disk sources (edge lists, adjacency
//!   lists, vertex→attribute tables, the unified text format) into
//!   [`AttributedGraph`](scpm_graph::AttributedGraph)s with dedup,
//!   relabeling and attribute statistics; the engine behind `scpm ingest`.
//! * [`cache`] — binary-snapshot caching for both worlds: generated
//!   datasets keyed by `(spec, scale, seed)`, ingested datasets keyed by a
//!   content fingerprint of their source files.
//! * [`vocab`] — attribute vocabularies and the string-interning [`Vocab`]
//!   used throughout parsing.
//!
//! The on-disk formats are specified normatively in `docs/DATASETS.md`.

#![deny(missing_docs)]

pub mod cache;
pub mod external;
pub mod ingest;
pub mod synthetic;
pub mod vocab;

pub use cache::{ingest_cached, load_or_generate, source_fingerprint};
pub use external::{ingest_files_external, ExternalOptions};
pub use ingest::{
    canonicalize_attributes, ingest_files, ingest_graph, ingest_source, IdPolicy, IngestError,
    IngestOptions, IngestReport, Ingested, SelfLoopPolicy, SourceFormat, UnknownVertexPolicy,
};
pub use synthetic::{
    citeseer_like, dblp_like, dense_clique_like, generate, lastfm_like, skewed_attr_like,
    small_dblp_like, sparse_star_like, DatasetSpec, SyntheticDataset,
};
pub use vocab::Vocab;
