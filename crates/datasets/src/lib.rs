//! Synthetic attributed-graph datasets calibrated to the networks of the
//! SCPM paper's evaluation: a DBLP-like collaboration network, a
//! LastFm-like social music network, a CiteSeer-like citation network, and
//! the SmallDBLP performance dataset. Each generator is seeded and
//! scalable; see [`synthetic`] for the calibration details and DESIGN.md
//! for the substitution rationale.

#![warn(missing_docs)]

pub mod cache;
pub mod synthetic;
pub mod vocab;

pub use cache::load_or_generate;
pub use synthetic::{
    citeseer_like, dblp_like, generate, lastfm_like, small_dblp_like, DatasetSpec, SyntheticDataset,
};
