//! Ingestion: normalize any parsed graph source into an
//! [`AttributedGraph`] plus an [`IngestReport`].
//!
//! The parsers in `scpm_graph::io::source` produce a [`RawSource`] — raw
//! interned edges and vertex-attribute pairs, duplicates and all. This
//! module applies the normalization the miners rely on:
//!
//! 1. **Vertex relabeling** ([`IdPolicy`]): fully numeric sources keep
//!    their externally assigned ids (so reports match the publisher's
//!    numbering); everything else is relabeled densely in first-appearance
//!    order.
//! 2. **Edge hygiene**: self-loops are dropped (or rejected, per
//!    [`SelfLoopPolicy`]) and parallel edges merged, both counted.
//! 3. **Attribute canonicalization**: attribute ids are assigned in
//!    lexicographic name order, making the numbering a function of the
//!    graph's *content* rather than of file row order — two files
//!    describing the same graph ingest to byte-identical snapshots and
//!    byte-identical mining reports.
//! 4. **Statistics**: the report carries counts, merge/drop counters and
//!    the attribute-frequency head, which `scpm ingest` and `scpm stats`
//!    print.
//!
//! ```
//! use scpm_datasets::ingest::{ingest_source, IngestOptions};
//! use scpm_graph::io::source::RawSource;
//!
//! let mut src = RawSource::new();
//! src.read_edge_list("0 1\n1 2\n2 0\n2 0\n1 1\n".as_bytes()).unwrap();
//! src.read_attr_table("0 db ml\n1 db\n2 db\n".as_bytes()).unwrap();
//! let out = ingest_source(src, "demo", &IngestOptions::default()).unwrap();
//! assert_eq!(out.graph.num_vertices(), 3);
//! assert_eq!(out.graph.num_edges(), 3); // duplicate (2,0) merged
//! let parse = out.report.parse.as_ref().unwrap();
//! assert_eq!(parse.self_loops_dropped, 1);
//! assert_eq!(parse.duplicate_edges_merged, 1);
//! assert_eq!(out.report.top_attributes[0], ("db".to_string(), 3));
//! ```

use std::fmt;
use std::path::Path;

use scpm_graph::attributed::{AttributedGraph, AttributedGraphBuilder};
use scpm_graph::io::source::{canonical_numeric, RawSource};
use scpm_graph::io::ParseError;
use scpm_graph::snapshot::SnapshotError;

/// How vertex tokens map to dense vertex ids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IdPolicy {
    /// Keep numeric ids when every token is a canonical decimal integer
    /// and the id space is reasonably dense (`max < 2·distinct + 1024`);
    /// otherwise fall back to interning. The default.
    #[default]
    Auto,
    /// Always relabel tokens in first-appearance order.
    Intern,
    /// Require numeric tokens and keep them verbatim (sparse id spaces
    /// allocate isolated filler vertices up to the maximum id).
    Numeric,
}

/// What to do with self-loops in the source.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SelfLoopPolicy {
    /// Drop them, counting the drops in the report. The default.
    #[default]
    Drop,
    /// Reject the source outright.
    Error,
}

/// What to do with attribute-table vertices that never appear in an edge
/// or adjacency file.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum UnknownVertexPolicy {
    /// Admit them as isolated vertices (the vertex universe is the union
    /// of all files). The default.
    #[default]
    Allow,
    /// Reject the source — the structural files define the universe and
    /// anything else in an attribute table is treated as a typo.
    Error,
}

/// Normalization options for one ingest run.
#[derive(Clone, Debug)]
pub struct IngestOptions {
    /// Vertex relabeling policy.
    pub id_policy: IdPolicy,
    /// Self-loop policy.
    pub self_loops: SelfLoopPolicy,
    /// Unknown-vertex policy for attribute tables.
    pub unknown_vertices: UnknownVertexPolicy,
    /// Renumber attributes into lexicographic name order (recommended:
    /// makes snapshots and mining reports independent of file row order).
    pub canonical_attrs: bool,
    /// How many attribute-frequency rows to keep in the report.
    pub top_attributes: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            id_policy: IdPolicy::Auto,
            self_loops: SelfLoopPolicy::Drop,
            unknown_vertices: UnknownVertexPolicy::Allow,
            canonical_attrs: true,
            top_attributes: 10,
        }
    }
}

/// The on-disk shape of a source dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceFormat {
    /// One `u v` edge per line, optional separate attribute table.
    EdgeList,
    /// One `u: v1 v2 ...` line per vertex, optional attribute table.
    Adjacency,
    /// The single-file `v`/`e`/`a` format of `scpm_graph::io`.
    Unified,
}

/// Guesses a [`SourceFormat`] from a file extension: `.adj` → adjacency,
/// `.scpm` → unified, anything else → edge list.
pub fn detect_format(path: &Path) -> SourceFormat {
    match path.extension().and_then(|e| e.to_str()) {
        Some("adj") => SourceFormat::Adjacency,
        Some("scpm") => SourceFormat::Unified,
        _ => SourceFormat::EdgeList,
    }
}

/// Errors produced by ingestion.
#[derive(Debug)]
pub enum IngestError {
    /// A source file failed to parse.
    Parse(ParseError),
    /// Snapshot encode/decode failed (cached ingest only).
    Snapshot(SnapshotError),
    /// Underlying I/O failure (opening source files, writing snapshots).
    Io(std::io::Error),
    /// The source contains self-loops and [`SelfLoopPolicy::Error`] is set.
    SelfLoops {
        /// Number of self-loops seen.
        count: usize,
    },
    /// An attribute table references a vertex absent from the structural
    /// files and [`UnknownVertexPolicy::Error`] is set.
    UnknownVertex {
        /// The offending vertex token.
        token: String,
    },
    /// [`IdPolicy::Numeric`] is set but a vertex token is not a canonical
    /// decimal integer.
    NonNumericId {
        /// The offending vertex token.
        token: String,
    },
    /// The caller combined inputs that do not go together (e.g. an
    /// attribute table next to the unified format).
    BadRequest(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Parse(e) => write!(f, "{e}"),
            IngestError::Snapshot(e) => write!(f, "{e}"),
            IngestError::Io(e) => write!(f, "i/o error: {e}"),
            IngestError::SelfLoops { count } => {
                write!(
                    f,
                    "source contains {count} self-loop(s) and --self-loops error is set"
                )
            }
            IngestError::UnknownVertex { token } => write!(
                f,
                "attribute table references vertex `{token}` absent from the edge files"
            ),
            IngestError::NonNumericId { token } => write!(
                f,
                "--ids numeric requires canonical decimal vertex ids, got `{token}`"
            ),
            IngestError::BadRequest(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Parse(e) => Some(e),
            IngestError::Snapshot(e) => Some(e),
            IngestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for IngestError {
    fn from(e: ParseError) -> Self {
        IngestError::Parse(e)
    }
}

impl From<SnapshotError> for IngestError {
    fn from(e: SnapshotError) -> Self {
        IngestError::Snapshot(e)
    }
}

impl From<std::io::Error> for IngestError {
    fn from(e: std::io::Error) -> Self {
        IngestError::Io(e)
    }
}

/// Counters only a real parse can produce (absent on cache hits and on
/// already-built graphs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParseCounters {
    /// Self-loops dropped from the edge files.
    pub self_loops_dropped: usize,
    /// Parallel edges merged into one.
    pub duplicate_edges_merged: usize,
    /// Duplicate vertex-attribute pairs merged into one.
    pub duplicate_pairs_merged: usize,
    /// Vertices that appeared only in attribute tables.
    pub attr_only_vertices: usize,
}

/// What an ingest run produced, printable via `Display`.
#[derive(Clone, Debug)]
pub struct IngestReport {
    /// Human-readable label (usually the source file stem).
    pub label: String,
    /// Vertices in the normalized graph.
    pub vertices: usize,
    /// Undirected edges after merging.
    pub edges: usize,
    /// Distinct attributes.
    pub attributes: usize,
    /// Vertex-attribute pairs after merging.
    pub pairs: usize,
    /// Whether externally assigned numeric vertex ids were kept.
    pub numeric_ids: bool,
    /// Attribute-frequency head: `(name, support)`, most frequent first.
    pub top_attributes: Vec<(String, usize)>,
    /// Parse-time counters (`None` when the graph was already built).
    pub parse: Option<ParseCounters>,
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} vertices, {} edges, {} attributes, {} vertex-attribute pairs ({} ids)",
            self.label,
            self.vertices,
            self.edges,
            self.attributes,
            self.pairs,
            if self.numeric_ids {
                "numeric"
            } else {
                "interned"
            },
        )?;
        if let Some(p) = &self.parse {
            writeln!(
                f,
                "  normalized: {} self-loops dropped, {} duplicate edges merged, \
                 {} duplicate pairs merged, {} attribute-only vertices",
                p.self_loops_dropped,
                p.duplicate_edges_merged,
                p.duplicate_pairs_merged,
                p.attr_only_vertices
            )?;
        }
        if !self.top_attributes.is_empty() {
            writeln!(f, "  top attributes by frequency:")?;
            for (name, support) in &self.top_attributes {
                writeln!(f, "    {name:<32} {support}")?;
            }
        }
        Ok(())
    }
}

/// A normalized graph plus its ingest report.
#[derive(Clone, Debug)]
pub struct Ingested {
    /// The normalized attributed graph.
    pub graph: AttributedGraph,
    /// What happened during normalization.
    pub report: IngestReport,
}

fn top_attributes(g: &AttributedGraph, limit: usize) -> Vec<(String, usize)> {
    let mut rows: Vec<(String, usize)> = g
        .attributes()
        .map(|a| (g.attr_name(a).to_string(), g.support(a)))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows.truncate(limit);
    rows
}

/// Rewrites `g`'s attribute table into canonical form: attributes carried
/// by no vertex are dropped (an on-disk vertex→attribute table cannot
/// express them anyway), and the survivors are renumbered in
/// lexicographic name order.
///
/// The result is structurally identical (same vertices, edges, and
/// per-vertex attribute *names*) but its attribute ids — and therefore
/// snapshot bytes and mining-report row order — depend only on the graph's
/// content, not on the order names were first seen. This is the invariant
/// behind the byte-identical pipeline guarantee: ingesting a graph from
/// files and canonicalizing the same graph built in memory produce
/// identical snapshots.
///
/// ```
/// use scpm_datasets::ingest::canonicalize_attributes;
/// use scpm_graph::AttributedGraphBuilder;
///
/// let mut b = AttributedGraphBuilder::new(2);
/// b.add_edge(0, 1);
/// b.add_attr_named(0, "zebra");
/// b.add_attr_named(1, "apple");
/// b.intern_attr("unused");
/// let g = canonicalize_attributes(&b.build());
/// assert_eq!(g.num_attributes(), 2); // "unused" is dropped
/// assert_eq!(g.attr_name(0), "apple");
/// assert_eq!(g.attr_name(1), "zebra");
/// ```
pub fn canonicalize_attributes(g: &AttributedGraph) -> AttributedGraph {
    let n = g.num_vertices();
    let mut b = AttributedGraphBuilder::new(n);
    for (u, v) in g.graph().edges() {
        b.add_edge(u, v);
    }
    let mut order: Vec<u32> = g.attributes().filter(|&a| g.support(a) > 0).collect();
    order.sort_by(|&a, &x| g.attr_name(a).cmp(g.attr_name(x)));
    for &a in &order {
        b.intern_attr(g.attr_name(a));
    }
    for v in 0..n as u32 {
        for &a in g.attributes_of(v) {
            b.add_attr_named(v, g.attr_name(a));
        }
    }
    b.build()
}

/// Normalizes a parsed [`RawSource`] into an attributed graph (see the
/// module docs for the exact steps).
pub fn ingest_source(
    src: RawSource,
    label: &str,
    opts: &IngestOptions,
) -> Result<Ingested, IngestError> {
    if src.self_loops > 0 && opts.self_loops == SelfLoopPolicy::Error {
        return Err(IngestError::SelfLoops {
            count: src.self_loops,
        });
    }
    let attr_only = (0..src.vertices.len() as u32)
        .filter(|&v| !src.is_structural(v))
        .count();
    if opts.unknown_vertices == UnknownVertexPolicy::Error {
        if let Some(v) = (0..src.vertices.len() as u32).find(|&v| !src.is_structural(v)) {
            return Err(IngestError::UnknownVertex {
                token: src.vertices.name(v).to_string(),
            });
        }
    }

    // Vertex relabeling.
    let distinct = src.vertices.len();
    let numeric_ok = src.vertices.all_numeric();
    let dense_enough = (src.vertices.max_numeric() as usize) < 2 * distinct + 1024;
    let use_numeric = match opts.id_policy {
        IdPolicy::Intern => false,
        IdPolicy::Auto => distinct > 0 && numeric_ok && dense_enough,
        IdPolicy::Numeric => {
            if let Some(bad) = src
                .vertices
                .names()
                .iter()
                .find(|t| canonical_numeric(t).is_none())
            {
                return Err(IngestError::NonNumericId { token: bad.clone() });
            }
            true
        }
    };
    let (map, n): (Option<Vec<u32>>, usize) = if use_numeric {
        let map: Vec<u32> = src
            .vertices
            .names()
            .iter()
            .map(|t| canonical_numeric(t).expect("checked numeric"))
            .collect();
        let n = if distinct == 0 {
            0
        } else {
            src.vertices.max_numeric() as usize + 1
        };
        (Some(map), n)
    } else {
        (None, distinct)
    };
    let relabel = |v: u32| -> u32 { map.as_ref().map_or(v, |m| m[v as usize]) };

    // Edge merging.
    let mut edges: Vec<(u32, u32)> = src
        .edges
        .iter()
        .map(|&(u, v)| {
            let (u, v) = (relabel(u), relabel(v));
            (u.min(v), u.max(v))
        })
        .collect();
    edges.sort_unstable();
    let raw_edges = edges.len();
    edges.dedup();
    let duplicate_edges = raw_edges - edges.len();

    // Attribute renumbering (canonical = lexicographic by name).
    let mut attr_order: Vec<u32> = (0..src.attributes.len() as u32).collect();
    if opts.canonical_attrs {
        attr_order.sort_by(|&a, &b| src.attributes.name(a).cmp(src.attributes.name(b)));
    }
    let mut attr_map = vec![0u32; src.attributes.len()];
    for (new, &old) in attr_order.iter().enumerate() {
        attr_map[old as usize] = new as u32;
    }

    let mut pairs: Vec<(u32, u32)> = src
        .pairs
        .iter()
        .map(|&(v, a)| (relabel(v), attr_map[a as usize]))
        .collect();
    pairs.sort_unstable();
    let raw_pairs = pairs.len();
    pairs.dedup();
    let duplicate_pairs = raw_pairs - pairs.len();

    let mut b = AttributedGraphBuilder::new(n);
    for &(u, v) in &edges {
        b.add_edge(u, v);
    }
    for &old in &attr_order {
        b.intern_attr(src.attributes.name(old));
    }
    for &(v, a) in &pairs {
        b.add_attr(v, a);
    }
    let graph = b.build();

    let report = IngestReport {
        label: label.to_string(),
        vertices: graph.num_vertices(),
        edges: graph.num_edges(),
        attributes: graph.num_attributes(),
        pairs: pairs.len(),
        numeric_ids: use_numeric,
        top_attributes: top_attributes(&graph, opts.top_attributes),
        parse: Some(ParseCounters {
            self_loops_dropped: src.self_loops,
            duplicate_edges_merged: duplicate_edges,
            duplicate_pairs_merged: duplicate_pairs,
            attr_only_vertices: attr_only,
        }),
    };
    Ok(Ingested { graph, report })
}

/// Wraps an already-built graph in the ingest interface: canonicalizes
/// attributes (if enabled) and computes the graph-level report. Used for
/// the unified text format and for re-ingesting snapshots.
pub fn ingest_graph(g: AttributedGraph, label: &str, opts: &IngestOptions) -> Ingested {
    let graph = if opts.canonical_attrs {
        canonicalize_attributes(&g)
    } else {
        g
    };
    let pairs: usize = (0..graph.num_vertices() as u32)
        .map(|v| graph.attributes_of(v).len())
        .sum();
    let report = IngestReport {
        label: label.to_string(),
        vertices: graph.num_vertices(),
        edges: graph.num_edges(),
        attributes: graph.num_attributes(),
        pairs,
        numeric_ids: true,
        top_attributes: top_attributes(&graph, opts.top_attributes),
        parse: None,
    };
    Ingested { graph, report }
}

pub(crate) fn label_of(path: &Path) -> String {
    path.file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset")
        .to_string()
}

/// Ingests on-disk files: a structural file (edge list, adjacency list, or
/// unified `v`/`e`/`a` file) plus an optional vertex→attribute table.
///
/// This is the library entry point behind `scpm ingest`; the formats are
/// specified in `docs/DATASETS.md`.
pub fn ingest_files(
    format: SourceFormat,
    structure: &Path,
    attrs: Option<&Path>,
    opts: &IngestOptions,
) -> Result<Ingested, IngestError> {
    let label = label_of(structure);
    match format {
        SourceFormat::Unified => {
            if attrs.is_some() {
                return Err(IngestError::BadRequest(
                    "the unified format carries attributes inline; --attrs does not apply"
                        .to_string(),
                ));
            }
            let g = scpm_graph::io::load_attributed(structure)?;
            Ok(ingest_graph(g, &label, opts))
        }
        SourceFormat::EdgeList | SourceFormat::Adjacency => {
            let mut src = RawSource::new();
            let file = std::fs::File::open(structure)?;
            match format {
                SourceFormat::EdgeList => src.read_edge_list(file)?,
                SourceFormat::Adjacency => src.read_adjacency(file)?,
                SourceFormat::Unified => unreachable!(),
            }
            if let Some(attrs) = attrs {
                let file = std::fs::File::open(attrs)?;
                src.read_attr_table(file)?;
            }
            ingest_source(src, &label, opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn source(edges: &str, attrs: &str) -> RawSource {
        let mut src = RawSource::new();
        src.read_edge_list(edges.as_bytes()).unwrap();
        if !attrs.is_empty() {
            src.read_attr_table(attrs.as_bytes()).unwrap();
        }
        src
    }

    #[test]
    fn numeric_ids_kept_under_auto() {
        let src = source("0 2\n2 1\n", "1 red\n");
        let out = ingest_source(src, "t", &IngestOptions::default()).unwrap();
        assert!(out.report.numeric_ids);
        assert_eq!(out.graph.num_vertices(), 3);
        assert!(out.graph.graph().has_edge(0, 2));
        let red = out.graph.attr_id("red").unwrap();
        assert_eq!(out.graph.vertices_with(red), &[1]);
    }

    #[test]
    fn string_ids_interned_in_first_appearance_order() {
        let src = source("carol alice\nalice bob\n", "bob jazz\n");
        let out = ingest_source(src, "t", &IngestOptions::default()).unwrap();
        assert!(!out.report.numeric_ids);
        assert_eq!(out.graph.num_vertices(), 3);
        // carol=0, alice=1, bob=2 by first appearance.
        assert!(out.graph.graph().has_edge(0, 1));
        assert!(out.graph.graph().has_edge(1, 2));
        let jazz = out.graph.attr_id("jazz").unwrap();
        assert_eq!(out.graph.vertices_with(jazz), &[2]);
    }

    #[test]
    fn sparse_numeric_ids_fall_back_to_interning_under_auto() {
        let src = source("1000000000 2000000000\n", "");
        let out = ingest_source(src, "t", &IngestOptions::default()).unwrap();
        assert!(!out.report.numeric_ids);
        assert_eq!(out.graph.num_vertices(), 2);
    }

    #[test]
    fn forced_numeric_allocates_gap_vertices() {
        let src = source("0 5\n", "");
        let opts = IngestOptions {
            id_policy: IdPolicy::Numeric,
            ..Default::default()
        };
        let out = ingest_source(src, "t", &opts).unwrap();
        assert_eq!(out.graph.num_vertices(), 6);
        assert_eq!(out.graph.num_edges(), 1);
    }

    #[test]
    fn forced_numeric_rejects_string_tokens() {
        let src = source("alice 1\n", "");
        let opts = IngestOptions {
            id_policy: IdPolicy::Numeric,
            ..Default::default()
        };
        match ingest_source(src, "t", &opts) {
            Err(IngestError::NonNumericId { token }) => assert_eq!(token, "alice"),
            other => panic!("expected NonNumericId, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_policy_error_rejects() {
        let src = source("0 0\n0 1\n", "");
        let opts = IngestOptions {
            self_loops: SelfLoopPolicy::Error,
            ..Default::default()
        };
        assert!(matches!(
            ingest_source(src, "t", &opts),
            Err(IngestError::SelfLoops { count: 1 })
        ));
    }

    #[test]
    fn unknown_vertex_policy_error_rejects_attr_only_vertices() {
        let src = source("0 1\n", "0 red\n7 blue\n");
        let opts = IngestOptions {
            unknown_vertices: UnknownVertexPolicy::Error,
            ..Default::default()
        };
        match ingest_source(src, "t", &opts) {
            Err(IngestError::UnknownVertex { token }) => assert_eq!(token, "7"),
            other => panic!("expected UnknownVertex, got {other:?}"),
        }
        // Default policy admits it as an isolated vertex.
        let src = source("0 1\n", "0 red\n7 blue\n");
        let out = ingest_source(src, "t", &IngestOptions::default()).unwrap();
        assert_eq!(out.graph.num_vertices(), 8); // numeric mode: 0..=7
        assert_eq!(out.report.parse.unwrap().attr_only_vertices, 1);
    }

    #[test]
    fn canonical_attr_order_is_row_order_independent() {
        let a = source("0 1\n", "0 zebra\n1 apple\n");
        let b = source("0 1\n", "1 apple\n0 zebra\n");
        let ga = ingest_source(a, "t", &IngestOptions::default())
            .unwrap()
            .graph;
        let gb = ingest_source(b, "t", &IngestOptions::default())
            .unwrap()
            .graph;
        assert_eq!(ga.attr_name(0), "apple");
        assert_eq!(
            scpm_graph::snapshot::encode(&ga).as_ref(),
            scpm_graph::snapshot::encode(&gb).as_ref()
        );
    }

    #[test]
    fn report_counts_and_display() {
        let src = source("0 1\n1 0\n2 2\n0 2\n", "0 x y\n1 x\n2 x x\n");
        let out = ingest_source(src, "demo", &IngestOptions::default()).unwrap();
        let p = out.report.parse.clone().unwrap();
        assert_eq!(p.self_loops_dropped, 1);
        assert_eq!(p.duplicate_edges_merged, 1);
        assert_eq!(p.duplicate_pairs_merged, 1);
        assert_eq!(out.report.edges, 2);
        assert_eq!(out.report.pairs, 4);
        assert_eq!(out.report.top_attributes[0].0, "x");
        let text = out.report.to_string();
        assert!(text.contains("demo: 3 vertices"), "{text}");
        assert!(text.contains("1 self-loops dropped"), "{text}");
    }

    #[test]
    fn ingest_graph_canonicalizes_prebuilt_graphs() {
        let d = crate::dblp_like(0.003, 3);
        let out = ingest_graph(d.graph.clone(), "dblp", &IngestOptions::default());
        let direct = canonicalize_attributes(&d.graph);
        assert_eq!(
            scpm_graph::snapshot::encode(&out.graph).as_ref(),
            scpm_graph::snapshot::encode(&direct).as_ref()
        );
        assert!(out.report.parse.is_none());
    }

    #[test]
    fn detect_format_by_extension() {
        assert_eq!(detect_format(Path::new("g.adj")), SourceFormat::Adjacency);
        assert_eq!(detect_format(Path::new("g.scpm")), SourceFormat::Unified);
        assert_eq!(detect_format(Path::new("g.txt")), SourceFormat::EdgeList);
        assert_eq!(detect_format(Path::new("edges")), SourceFormat::EdgeList);
    }

    #[test]
    fn ingest_files_edge_list_plus_attrs() {
        let dir = std::env::temp_dir().join("scpm_ingest_files_test");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("g.txt");
        let attrs = dir.join("g.attrs");
        std::fs::write(&edges, "0 1\n1 2\n").unwrap();
        std::fs::write(&attrs, "0 red\n1 red\n2 blue\n").unwrap();
        let out = ingest_files(
            SourceFormat::EdgeList,
            &edges,
            Some(&attrs),
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(out.report.label, "g");
        assert_eq!(out.graph.num_vertices(), 3);
        assert_eq!(out.graph.num_attributes(), 2);
        // Unified + attrs is a usage error.
        let e = ingest_files(
            SourceFormat::Unified,
            &edges,
            Some(&attrs),
            &IngestOptions::default(),
        );
        assert!(matches!(e, Err(IngestError::BadRequest(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
