//! **scpm-serve** — the traffic-facing layer of the SCPM suite: a
//! long-running pattern-catalog service over `std::net`.
//!
//! The paper frames SCPM as a tool an analyst *queries* — "which attribute
//! sets correlate with dense structure around user v?" — but mining is
//! batch-shaped. This crate closes the gap: [`Server::start`] loads an
//! attributed graph, mines once with the work-stealing scheduler, and
//! publishes the result as an immutable [`PatternCatalog`] behind a small
//! thread pool speaking a hand-rolled HTTP/1.1 JSON protocol (the
//! vendored-shim model extends to the wire: no crates.io, just
//! `std::net::TcpListener`).
//!
//! * [`catalog`] — the immutable, queryable snapshot of one mining run;
//! * [`server`] — accept loop, worker pool, routing, atomic catalog swap;
//! * [`http`] — the bounded HTTP/1.1 subset (strict parsing, structured
//!   errors, never panics on hostile bytes);
//! * [`json`] — byte-stable JSON rendering plus a strict parser;
//! * [`client`] — a minimal blocking client for tests and scripting.
//!
//! See `docs/SERVING.md` for the protocol grammar, the endpoint table,
//! and the catalog-swap semantics.
//!
//! # Quickstart
//!
//! ```
//! use scpm_core::ScpmParams;
//! use scpm_graph::figure1::figure1;
//! use scpm_serve::{Client, ServeConfig, Server};
//!
//! // Serve the paper's Figure 1 graph with its Table 1 parameters.
//! let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5).with_top_k(5);
//! let server = Server::start(figure1(), ServeConfig::new(params, 2)).unwrap();
//!
//! let client = Client::new(server.addr());
//! let response = client.get("/top?by=delta&k=3").unwrap();
//! assert_eq!(response.status, 200);
//! assert_eq!(response.generation().unwrap(), 0);
//!
//! server.stop();
//! ```

#![deny(missing_docs)]

pub mod catalog;
pub mod client;
pub mod http;
pub mod json;
pub mod server;

pub use catalog::{PatternCatalog, TopBy};
pub use client::{Client, Response};
pub use http::{HttpError, Request};
pub use json::Json;
pub use server::{DurabilityConfig, RecoveryReport, ServeConfig, Server};
