//! The long-running catalog server: accept loop, worker pool, routing,
//! and the atomic catalog swap.
//!
//! # Lifecycle
//!
//! [`Server::start`] binds a [`TcpListener`], mines the startup catalog
//! (generation 0) with the work-stealing scheduler, and spawns
//! [`ServeConfig::threads`] worker threads that all `accept` on the shared
//! listener. Each worker handles one connection at a time, looping over
//! keep-alive requests until the peer closes, errors, or asks to close.
//!
//! # Catalog swap semantics
//!
//! The current catalog lives in a `RwLock<Arc<PatternCatalog>>`. A handler
//! takes the read lock only long enough to clone the `Arc`, then answers
//! entirely from that snapshot — readers never block on a re-mine and can
//! never observe a half-built catalog. `POST /mine` serializes re-mines
//! through a mutex, mines a complete new catalog (sharing the global
//! [`NullModelCache`], so `exp(σ)` values survive across generations),
//! and replaces the `Arc` in one write-lock store. Every response carries
//! the generation it was answered from.
//!
//! # Live updates
//!
//! The graph itself lives behind the same snapshot discipline (a
//! `RwLock<Arc<MiningState>>` bundling graph + null-model cache + the
//! evaluation memo of the last mine). `POST /update` applies an
//! insert-only [`GraphDelta`] to the current graph and re-mines it
//! *incrementally*: every mine runs in recording mode so its per-set
//! evaluation memo is retained, and an update replays the memo for every
//! lattice node outside the delta's dirty region (docs/INCREMENTAL.md).
//! The resulting catalog is byte-identical to a from-scratch mine of the
//! updated graph and is swapped in with a generation bump, exactly like a
//! re-mine. The null-model cache is *not* carried across an update —
//! `exp(σ)` is a function of the graph, and the graph changed.
//!
//! # Durability
//!
//! With [`ServeConfig::durability`] set, the server is crash-safe: every
//! `POST /update` journals its delta to a write-ahead log *before* the
//! in-memory swap, a checkpoint folds the journal into a fresh atomic
//! snapshot every `checkpoint_every` deltas (and on graceful shutdown),
//! and [`Server::open`] recovers the newest good snapshot plus journal
//! replay through the incremental path. The protocol, its commit points,
//! and the fault-injection proof live in `docs/DURABILITY.md`.
//!
//! # Shutdown
//!
//! `POST /shutdown` (the ctrl channel) flips an atomic flag and pokes one
//! dummy connection per worker so blocked `accept` calls return. Workers
//! re-check the flag after every accept and every request. SIGTERM keeps
//! its default process-kill behavior — in-memory serving has nothing to
//! flush, and durable serving is journaled ahead of every swap, so an
//! unclean exit costs only a journal replay on the next open.

use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use scpm_core::{
    checkpoint_with, recover, replay_mine, DataDir, DirtySet, EvalMemo, IncrementalCtx,
    NullModelCache, ParallelConfig, Scpm, ScpmParams, DEFAULT_SPLIT_DEPTH,
};
use scpm_graph::attributed::AttributedGraph;
use scpm_graph::{DeltaOp, FaultInjector, GraphDelta, JournalWriter};

use crate::catalog::{PatternCatalog, TopBy};
use crate::http::{read_request, write_response, HttpError, ReadOutcome, Request};
use crate::json::Json;

/// Durable-serving configuration: where the data directory lives and how
/// often the journal is folded into a fresh checkpoint
/// (`docs/DURABILITY.md`).
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// The data directory (created on first use).
    pub dir: PathBuf,
    /// Checkpoint after this many journaled deltas (minimum 1). Between
    /// checkpoints a restart replays the journal; after one it loads the
    /// snapshot directly.
    pub checkpoint_every: u64,
    /// Fault injection over every durability operation (tests); defaults
    /// to passthrough.
    pub injector: FaultInjector,
}

impl DurabilityConfig {
    /// Durability rooted at `dir`, checkpointing every 8 deltas.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            checkpoint_every: 8,
            injector: FaultInjector::none(),
        }
    }

    /// Sets the checkpoint interval (clamped to at least 1), builder style.
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Sets the fault injector, builder style.
    pub fn with_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = injector;
        self
    }
}

/// Configuration of one serving process.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 selects an ephemeral port (tests).
    pub addr: String,
    /// HTTP worker threads (minimum 1).
    pub threads: usize,
    /// Scheduler threads for the startup mine and re-mines (defaults to
    /// `threads`; output is bit-identical at any value).
    pub mine_threads: usize,
    /// Work-stealing split depth of re-mines (`docs/PARALLELISM.md`).
    pub split_depth: usize,
    /// Mining parameters of the startup catalog.
    pub params: ScpmParams,
    /// Per-connection socket read timeout; bounds how long an idle or
    /// trickling keep-alive connection can pin a worker.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout; bounds how long a peer that
    /// stops draining its receive buffer can pin a worker mid-response.
    pub write_timeout: Duration,
    /// Maximum concurrently served connections (minimum 1; defaults to
    /// `threads`). A connection accepted past the cap is answered with a
    /// deterministic `503 saturated` and closed.
    pub max_connections: usize,
    /// Crash-safe persistence; `None` (the default) serves purely from
    /// memory, exactly as before.
    pub durability: Option<DurabilityConfig>,
}

impl ServeConfig {
    /// Loopback ephemeral-port configuration with `threads` workers.
    pub fn new(params: ScpmParams, threads: usize) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            threads: threads.max(1),
            mine_threads: threads.max(1),
            split_depth: DEFAULT_SPLIT_DEPTH,
            params,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_connections: threads.max(1),
            durability: None,
        }
    }

    /// Sets the bind address, builder style.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the socket read timeout, builder style.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the socket write timeout, builder style.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }

    /// Sets the concurrent-connection cap (clamped to at least 1),
    /// builder style.
    pub fn with_max_connections(mut self, max_connections: usize) -> Self {
        self.max_connections = max_connections.max(1);
        self
    }

    /// Sets the re-mine scheduler thread count, builder style.
    pub fn with_mine_threads(mut self, mine_threads: usize) -> Self {
        self.mine_threads = mine_threads.max(1);
        self
    }

    /// Enables crash-safe persistence, builder style.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }
}

/// The mining substrate of one graph version: the graph, the `exp(σ)`
/// memo computed against it, and the evaluation memo of the last mine
/// over it (always recorded — [`update`] replays it for clean lattice
/// nodes). Swapped as one `Arc` so handlers and updates always see a
/// consistent triple.
struct MiningState {
    graph: Arc<AttributedGraph>,
    /// `exp(σ)` memo; shared across re-mines of *this* graph version,
    /// discarded on update (it is a function of the graph).
    cache: Arc<NullModelCache>,
    /// Per-set evaluation memo of the mine that produced the current
    /// catalog, recorded under the catalog's parameters.
    memo: Arc<EvalMemo>,
}

/// The durable side of one serving process: the data directory, the
/// fault injector shared with every durability operation, and the live
/// journal writer. All mutation happens under [`DurableState::inner`]
/// (and, for updates, additionally under the mine lock).
struct DurableState {
    dir: DataDir,
    injector: FaultInjector,
    checkpoint_every: u64,
    inner: Mutex<DurableInner>,
}

/// Journal position of the durable state.
struct DurableInner {
    /// The live journal; `POST /update` appends here *before* swapping
    /// the in-memory state (write-ahead discipline).
    journal: JournalWriter,
    /// Cumulative count of journaled deltas — the store generation
    /// (distinct from the HTTP catalog generation, which also counts
    /// re-mines).
    generation: u64,
    /// Store generation of the newest committed checkpoint.
    last_checkpoint: u64,
}

/// Shared server state.
struct ServerState {
    /// The graph-version swap slot (see [`MiningState`]).
    mining: RwLock<Arc<MiningState>>,
    /// The listener's bound address (used for the shutdown self-poke).
    addr: SocketAddr,
    /// The swap slot: handlers clone the `Arc` under the read lock and
    /// answer from the snapshot.
    catalog: RwLock<Arc<PatternCatalog>>,
    /// Serializes re-mines and updates (concurrent `POST /mine` and
    /// `POST /update` requests queue here).
    mine_lock: Mutex<()>,
    /// Next generation number to assign.
    next_generation: AtomicU64,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    remines: AtomicU64,
    updates: AtomicU64,
    /// Connections currently being served (the `max_connections` gauge).
    active: AtomicUsize,
    max_connections: usize,
    mine_threads: usize,
    split_depth: usize,
    http_threads: usize,
    /// Crash-safe persistence; `None` = purely in-memory serving.
    durable: Option<DurableState>,
}

impl ServerState {
    fn mine(
        &self,
        mining: &MiningState,
        params: &ScpmParams,
        generation: u64,
    ) -> (PatternCatalog, EvalMemo) {
        let config = ParallelConfig::new(self.mine_threads).with_split_depth(self.split_depth);
        record_mine(&mining.graph, params, &mining.cache, &config, generation)
    }

    fn current(&self) -> Arc<PatternCatalog> {
        Arc::clone(&self.catalog.read())
    }

    fn current_mining(&self) -> Arc<MiningState> {
        Arc::clone(&self.mining.read())
    }
}

/// One recording mine: runs the scheduler with a recording
/// [`IncrementalCtx`] and returns the catalog plus the evaluation memo a
/// later `POST /update` replays from. Output is byte-identical to a
/// non-recording mine.
fn record_mine(
    graph: &AttributedGraph,
    params: &ScpmParams,
    cache: &Arc<NullModelCache>,
    config: &ParallelConfig,
    generation: u64,
) -> (PatternCatalog, EvalMemo) {
    let mut scpm = Scpm::with_cache(graph, params.clone(), Arc::clone(cache))
        .with_incremental(IncrementalCtx::recording());
    let result = scpm.run_scheduled(config);
    let (memo, _) = scpm
        .take_incremental()
        .expect("recording run keeps its context")
        .into_parts();
    (
        PatternCatalog::build(graph, params, result, generation),
        memo,
    )
}

/// A running server: its bound address plus the worker pool.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    workers: Vec<JoinHandle<()>>,
}

/// What [`Server::open`] recovered from the data directory, for
/// operator-facing logging.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Store generation the catalog recovered to (snapshot + replayed
    /// journal deltas).
    pub generation: u64,
    /// Generation of the snapshot recovery started from.
    pub checkpoint_generation: u64,
    /// Journaled deltas replayed past the snapshot.
    pub replayed_deltas: usize,
    /// Whether the persisted memo was replayed (`false` = a recording
    /// mine ran instead).
    pub memo_replayed: bool,
    /// Why the memo was not replayed, when it was not.
    pub memo_note: Option<String>,
    /// Snapshot generations skipped as corrupt (non-zero = fell back).
    pub snapshots_skipped: usize,
    /// Bytes truncated off a torn journal tail, if any.
    pub torn_bytes_dropped: Option<u64>,
}

impl Server {
    /// Binds, mines the generation-0 catalog, and spawns the worker pool.
    ///
    /// With [`ServeConfig::durability`] set, the data directory is seeded
    /// with a generation-0 checkpoint of `graph`; it must not already be
    /// initialized (recover an existing directory with [`Server::open`]).
    ///
    /// Fails (as an `Err`, never a panic) on bind errors or invalid
    /// parameters.
    pub fn start(graph: AttributedGraph, config: ServeConfig) -> Result<Server, String> {
        validate_params(&config.params).map_err(|e| e.message)?;
        let cache = Arc::new(NullModelCache::new());
        // Generation 0: mine before any worker accepts, so the first
        // response already answers from a complete catalog. Recording mode
        // retains the evaluation memo `POST /update` replays from.
        let mine_config =
            ParallelConfig::new(config.mine_threads).with_split_depth(config.split_depth);
        let (catalog, memo) = record_mine(&graph, &config.params, &cache, &mine_config, 0);

        let durable = match &config.durability {
            None => None,
            Some(dur) => {
                let dir = DataDir::open(&dur.dir)
                    .map_err(|e| format!("opening data directory {}: {e}", dur.dir.display()))?;
                if dir.is_initialized() {
                    return Err(format!(
                        "data directory {} is already initialized; recover it with Server::open \
                         instead of re-seeding",
                        dur.dir.display()
                    ));
                }
                let journal =
                    checkpoint_with(&dur.injector, &dir, 0, &graph, &memo, &config.params)
                        .map_err(|e| format!("seeding data directory: {e}"))?;
                Some(DurableState {
                    dir,
                    injector: dur.injector.clone(),
                    checkpoint_every: dur.checkpoint_every.max(1),
                    inner: Mutex::new(DurableInner {
                        journal,
                        generation: 0,
                        last_checkpoint: 0,
                    }),
                })
            }
        };

        let mining = MiningState {
            graph: Arc::new(graph),
            cache,
            memo: Arc::new(memo),
        };
        boot(&config, mining, catalog, durable)
    }

    /// Recovers an initialized data directory and serves the recovered
    /// catalog: newest decodable snapshot, journal replay through the
    /// incremental path (a restart costs a memo replay, not a full
    /// search), then an immediate re-checkpoint at the recovered
    /// generation so the journal chain restarts clean.
    ///
    /// Requires [`ServeConfig::durability`]. The served catalog restarts
    /// at HTTP generation 0; the store generation continues from the
    /// journal.
    pub fn open(config: ServeConfig) -> Result<(Server, RecoveryReport), String> {
        let dur = config
            .durability
            .clone()
            .ok_or("Server::open requires a durability configuration")?;
        validate_params(&config.params).map_err(|e| e.message)?;
        let dir = DataDir::open(&dur.dir)
            .map_err(|e| format!("opening data directory {}: {e}", dur.dir.display()))?;
        let state = recover(&dir).map_err(|e| format!("recovering {}: {e}", dur.dir.display()))?;
        let mine_config =
            ParallelConfig::new(config.mine_threads).with_split_depth(config.split_depth);
        let recovered = replay_mine(state, &config.params, &mine_config)
            .map_err(|e| format!("replaying {}: {e}", dur.dir.display()))?;
        let report = RecoveryReport {
            generation: recovered.generation,
            checkpoint_generation: recovered.checkpoint_generation,
            replayed_deltas: recovered.replayed_deltas,
            memo_replayed: recovered.memo_replayed,
            memo_note: recovered.memo_note.clone(),
            snapshots_skipped: recovered.snapshot_errors.len(),
            torn_bytes_dropped: recovered.repaired.as_ref().map(|t| t.dropped_bytes),
        };
        // Re-checkpoint at the recovered generation: seals the replayed
        // journal, refreshes the memo under the serving parameters, and
        // prunes any fallback debris.
        let journal = checkpoint_with(
            &dur.injector,
            &dir,
            recovered.generation,
            &recovered.graph,
            &recovered.memo,
            &config.params,
        )
        .map_err(|e| format!("re-checkpointing after recovery: {e}"))?;
        let catalog = PatternCatalog::build(&recovered.graph, &config.params, recovered.result, 0);
        let mining = MiningState {
            graph: Arc::new(recovered.graph),
            cache: recovered.cache,
            memo: Arc::new(recovered.memo),
        };
        let durable = DurableState {
            dir,
            injector: dur.injector.clone(),
            checkpoint_every: dur.checkpoint_every.max(1),
            inner: Mutex::new(DurableInner {
                journal,
                generation: recovered.generation,
                last_checkpoint: recovered.generation,
            }),
        };
        let server = boot(&config, mining, catalog, Some(durable))?;
        Ok((server, report))
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The current catalog snapshot (for in-process inspection).
    pub fn catalog(&self) -> Arc<PatternCatalog> {
        self.state.current()
    }

    /// Requests shutdown and wakes blocked acceptors; returns immediately.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Release);
        // One poke per worker: a connect makes its blocked accept return.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Shuts down, joins every worker, and (when durable) writes the
    /// graceful-shutdown checkpoint.
    pub fn stop(mut self) {
        self.shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        final_checkpoint(&self.state);
    }

    /// Shuts down and joins every worker **without** the final
    /// checkpoint — an unclean exit, exactly what a restart after a
    /// crash recovers from. The crash-recovery harness's kill switch.
    pub fn abort(mut self) {
        self.shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks until the server shuts down (via `POST /shutdown` or
    /// [`Server::shutdown`] from another thread) and every worker exits —
    /// the CLI's serving loop. Writes the graceful-shutdown checkpoint.
    pub fn join(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        final_checkpoint(&self.state);
    }
}

/// Binds the listener, assembles the shared state, and spawns the worker
/// pool — the tail of both [`Server::start`] and [`Server::open`].
fn boot(
    config: &ServeConfig,
    mining: MiningState,
    catalog: PatternCatalog,
    durable: Option<DurableState>,
) -> Result<Server, String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("resolving bound address: {e}"))?;
    let state = Arc::new(ServerState {
        mining: RwLock::new(Arc::new(mining)),
        addr,
        catalog: RwLock::new(Arc::new(catalog)),
        mine_lock: Mutex::new(()),
        next_generation: AtomicU64::new(1),
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        remines: AtomicU64::new(0),
        updates: AtomicU64::new(0),
        active: AtomicUsize::new(0),
        max_connections: config.max_connections.max(1),
        mine_threads: config.mine_threads,
        split_depth: config.split_depth,
        http_threads: config.threads,
        durable,
    });

    let mut workers = Vec::with_capacity(config.threads);
    for worker_id in 0..config.threads {
        let listener = listener
            .try_clone()
            .map_err(|e| format!("cloning listener: {e}"))?;
        let state = Arc::clone(&state);
        let limits = ConnLimits {
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
        };
        workers.push(
            std::thread::Builder::new()
                .name(format!("scpm-serve-{worker_id}"))
                .spawn(move || worker_loop(&listener, &state, limits))
                .map_err(|e| format!("spawning worker: {e}"))?,
        );
    }
    Ok(Server {
        addr,
        state,
        workers,
    })
}

/// The graceful-shutdown checkpoint: folds every journaled-but-not-yet-
/// checkpointed delta into a fresh snapshot so the next open loads it
/// directly. Best-effort — a failure leaves the journal intact, and
/// recovery replays it instead (slower, never wrong).
fn final_checkpoint(state: &ServerState) {
    let Some(d) = &state.durable else { return };
    let mut inner = d.inner.lock();
    if inner.generation == inner.last_checkpoint {
        return;
    }
    let mining = state.current_mining();
    let params = state.current().params().clone();
    if let Ok(journal) = checkpoint_with(
        &d.injector,
        &d.dir,
        inner.generation,
        &mining.graph,
        &mining.memo,
        &params,
    ) {
        inner.journal = journal;
        inner.last_checkpoint = inner.generation;
    }
}

/// Per-connection socket limits handed to each worker.
#[derive(Clone, Copy)]
struct ConnLimits {
    read_timeout: Duration,
    write_timeout: Duration,
}

/// One HTTP worker: accept → acquire a connection slot → serve the
/// connection → release → re-check shutdown.
fn worker_loop(listener: &TcpListener, state: &Arc<ServerState>, limits: ConnLimits) {
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        // The connection cap: admission is a single compare-and-increment
        // on the active gauge, so rejection is deterministic — the
        // (max_connections + 1)-th concurrent connection always gets the
        // 503, never a stall.
        let admitted = state
            .active
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < state.max_connections).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            state.errors.fetch_add(1, Ordering::Relaxed);
            reject_saturated(state, stream, limits);
            continue;
        }
        // A handler panic must not take down the accept loop: the
        // connection is abandoned, the panic contained, and the worker
        // moves on to the next accept.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_connection(state, stream, limits);
        }));
        state.active.fetch_sub(1, Ordering::AcqRel);
        if outcome.is_err() {
            state.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Answers one over-cap connection with `503 saturated` and closes it.
fn reject_saturated(state: &Arc<ServerState>, mut stream: TcpStream, limits: ConnLimits) {
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    let err = HttpError::new(
        503,
        "saturated",
        format!(
            "server is at its limit of {} concurrent connections",
            state.max_connections
        ),
    );
    let generation = state.current().generation();
    let body = envelope_error(&err, generation);
    let _ = write_response(&mut stream, err.status, &body, true);
    // Drain the request the client already sent before closing: closing
    // with unread bytes in the receive buffer makes TCP reset the
    // connection, which can discard the in-flight 503 before the client
    // reads it. The drain is bounded so a trickling client cannot park
    // the worker here.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(limits.read_timeout.min(Duration::from_millis(200))));
    let mut sink = [0u8; 1024];
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// Serves one connection: a keep-alive loop of request → response.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream, limits: ConnLimits) {
    let _ = stream.set_read_timeout(Some(limits.read_timeout));
    let _ = stream.set_write_timeout(Some(limits.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            Ok(ReadOutcome::Closed) | Ok(ReadOutcome::Disconnected) => return,
            Err(err) => {
                // Framing is unrecoverable after a parse error: answer
                // (best-effort) and close.
                state.errors.fetch_add(1, Ordering::Relaxed);
                let generation = state.current().generation();
                let body = envelope_error(&err, generation);
                let _ = write_response(&mut writer, err.status, &body, true);
                return;
            }
            Ok(ReadOutcome::Request(request)) => {
                state.requests.fetch_add(1, Ordering::Relaxed);
                let close = request.close;
                let (status, body) = respond(state, &request);
                if status >= 400 {
                    state.errors.fetch_add(1, Ordering::Relaxed);
                }
                if write_response(&mut writer, status, &body, close).is_err() {
                    return;
                }
                if close || state.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

/// Routes one request into `(status, body)`.
fn respond(state: &Arc<ServerState>, request: &Request) -> (u16, String) {
    match route(state, request) {
        Ok((result, generation)) => (200, envelope_ok(&result, generation)),
        Err(err) => {
            let generation = state.current().generation();
            (err.status, envelope_error(&err, generation))
        }
    }
}

/// The uniform success envelope: `{"result":…,"error":null,"generation":N}`.
fn envelope_ok(result: &Json, generation: u64) -> String {
    Json::Obj(vec![
        ("result".into(), result.clone()),
        ("error".into(), Json::Null),
        ("generation".into(), Json::Int(generation)),
    ])
    .render()
}

/// The uniform error envelope:
/// `{"result":null,"error":{"code":…,"message":…},"generation":N}`.
fn envelope_error(err: &HttpError, generation: u64) -> String {
    Json::Obj(vec![
        ("result".into(), Json::Null),
        (
            "error".into(),
            Json::Obj(vec![
                ("code".into(), Json::str(err.code)),
                ("message".into(), Json::str(err.message.clone())),
            ]),
        ),
        ("generation".into(), Json::Int(generation)),
    ])
    .render()
}

/// Parses a required query parameter through `parse`.
fn query_number<T: std::str::FromStr>(request: &Request, key: &str) -> Result<T, HttpError> {
    let raw = request
        .query_param(key)
        .ok_or_else(|| HttpError::invalid_parameter(format!("missing `{key}` parameter")))?;
    raw.parse()
        .map_err(|_| HttpError::invalid_parameter(format!("invalid `{key}` value `{raw}`")))
}

/// Dispatches one request; `Ok` carries the result payload and the
/// generation it was answered from.
fn route(state: &Arc<ServerState>, request: &Request) -> Result<(Json, u64), HttpError> {
    let method = request.method.as_str();
    let path = request.path.as_str();
    match (method, path) {
        ("GET", "/health") => {
            let catalog = state.current();
            Ok((
                Json::Obj(vec![("status".into(), Json::str("ok"))]),
                catalog.generation(),
            ))
        }
        ("GET", "/stats") => {
            let catalog = state.current();
            let cache = Arc::clone(&state.current_mining().cache);
            let stats = Json::Obj(vec![
                (
                    "server".into(),
                    Json::Obj(vec![
                        ("threads".into(), Json::Int(state.http_threads as u64)),
                        (
                            "requests".into(),
                            Json::Int(state.requests.load(Ordering::Relaxed)),
                        ),
                        (
                            "errors".into(),
                            Json::Int(state.errors.load(Ordering::Relaxed)),
                        ),
                        (
                            "remines".into(),
                            Json::Int(state.remines.load(Ordering::Relaxed)),
                        ),
                        (
                            "updates".into(),
                            Json::Int(state.updates.load(Ordering::Relaxed)),
                        ),
                    ]),
                ),
                ("catalog".into(), catalog.summary_json()),
                ("mining".into(), catalog.stats_json()),
                (
                    "null_model_cache".into(),
                    Json::Obj(vec![
                        ("entries".into(), Json::Int(cache.len() as u64)),
                        ("hits".into(), Json::Int(cache.hits())),
                        ("misses".into(), Json::Int(cache.misses())),
                    ]),
                ),
                (
                    "durability".into(),
                    match &state.durable {
                        None => Json::Null,
                        Some(d) => {
                            let inner = d.inner.lock();
                            Json::Obj(vec![
                                ("generation".into(), Json::Int(inner.generation)),
                                ("last_checkpoint".into(), Json::Int(inner.last_checkpoint)),
                                ("checkpoint_every".into(), Json::Int(d.checkpoint_every)),
                            ])
                        }
                    },
                ),
            ]);
            Ok((stats, catalog.generation()))
        }
        ("GET", "/catalog") => {
            let catalog = state.current();
            Ok((catalog.full_json(), catalog.generation()))
        }
        ("GET", "/patterns") => {
            let attrs = request
                .query_param("attrs")
                .ok_or_else(|| HttpError::invalid_parameter("missing `attrs` parameter"))?;
            let catalog = state.current();
            Ok((catalog.query_attrs(attrs)?, catalog.generation()))
        }
        ("GET", "/patterns/covering") => {
            let v: u32 = query_number(request, "v")?;
            let catalog = state.current();
            Ok((catalog.query_covering(v)?, catalog.generation()))
        }
        ("GET", "/reports") => {
            let delta_min: f64 = query_number(request, "delta_min")?;
            let catalog = state.current();
            Ok((catalog.query_delta(delta_min)?, catalog.generation()))
        }
        ("GET", "/top") => {
            let by = TopBy::parse(request.query_param("by").unwrap_or("delta"))?;
            let k = match request.query_param("k") {
                None => 10,
                Some(raw) => raw.parse().map_err(|_| {
                    HttpError::invalid_parameter(format!("invalid `k` value `{raw}`"))
                })?,
            };
            let catalog = state.current();
            Ok((catalog.query_top(by, k)?, catalog.generation()))
        }
        ("POST", "/mine") => remine(state, request),
        ("POST", "/update") => update(state, request),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::Release);
            // Wake sibling acceptors (this worker returns after writing
            // the response).
            for _ in 0..state.http_threads {
                let _ = TcpStream::connect(state.addr);
            }
            let catalog = state.current();
            Ok((
                Json::Obj(vec![("status".into(), Json::str("shutting down"))]),
                catalog.generation(),
            ))
        }
        // Known paths with the wrong method get a 405 so conformance
        // clients can tell "wrong verb" from "no such endpoint".
        (
            _,
            "/health" | "/stats" | "/catalog" | "/patterns" | "/patterns/covering" | "/reports"
            | "/top",
        ) => Err(HttpError::new(
            405,
            "method_not_allowed",
            format!("{method} is not supported on {path} (use GET)"),
        )),
        (_, "/mine" | "/update" | "/shutdown") => Err(HttpError::new(
            405,
            "method_not_allowed",
            format!("{method} is not supported on {path} (use POST)"),
        )),
        _ => Err(HttpError::new(
            404,
            "not_found",
            format!("unknown endpoint `{path}`"),
        )),
    }
}

/// `POST /mine`: overlay the body's parameters on the current catalog's,
/// validate, re-mine, and swap.
fn remine(state: &Arc<ServerState>, request: &Request) -> Result<(Json, u64), HttpError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| HttpError::bad_request("body is not valid UTF-8"))?;
    let body = if text.trim().is_empty() {
        Json::Obj(Vec::new())
    } else {
        Json::parse(text).map_err(|e| HttpError::bad_request(format!("invalid JSON body: {e}")))?
    };
    if !matches!(body, Json::Obj(_)) {
        return Err(HttpError::bad_request("body must be a JSON object"));
    }

    // Serialize re-mines; concurrent POST /mine requests queue here.
    let _guard = state.mine_lock.lock();
    let base = state.current();
    let mining = state.current_mining();
    let params = params_from_body(base.params(), &body)?;
    let generation = state.next_generation.fetch_add(1, Ordering::AcqRel);
    let (catalog, memo) = state.mine(&mining, &params, generation);
    let catalog = Arc::new(catalog);
    let summary = catalog.summary_json();
    // Same graph version: keep graph and exp(σ) cache, refresh the memo
    // (it is recorded under the new catalog's parameters).
    *state.mining.write() = Arc::new(MiningState {
        graph: Arc::clone(&mining.graph),
        cache: Arc::clone(&mining.cache),
        memo: Arc::new(memo),
    });
    *state.catalog.write() = catalog;
    state.remines.fetch_add(1, Ordering::Relaxed);
    Ok((summary, generation))
}

/// `POST /update`: apply an insert-only graph delta
/// (`{"add_vertices":N,"edges":[[u,v],…],"attrs":[[v,"name"],…]}`, every
/// key optional, applied in that order) and incrementally re-mine under
/// the current catalog's parameters. The new catalog is byte-identical to
/// a from-scratch mine of the updated graph; the response reports the
/// delta's novel effects, the dirty region, and the replay counters.
fn update(state: &Arc<ServerState>, request: &Request) -> Result<(Json, u64), HttpError> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| HttpError::bad_request("body is not valid UTF-8"))?;
    if text.trim().is_empty() {
        return Err(HttpError::bad_request("body must be a JSON object"));
    }
    let body =
        Json::parse(text).map_err(|e| HttpError::bad_request(format!("invalid JSON body: {e}")))?;
    let delta = delta_from_body(&body)?;

    // Serialize with re-mines: both swap the catalog, and an update also
    // swaps the graph version.
    let _guard = state.mine_lock.lock();
    let base = state.current();
    let mining = state.current_mining();
    let applied = delta
        .apply(&mining.graph)
        .map_err(|e| HttpError::invalid_parameter(format!("delta does not apply: {e}")))?;

    // Write-ahead commit point: the delta is journaled before any
    // in-memory state changes. A failed append rolls the journal back
    // and rejects the update — memory and disk always agree on which
    // deltas are committed.
    let journaled_seq = match &state.durable {
        None => None,
        Some(d) => {
            let mut inner = d.inner.lock();
            let seq = inner.journal.append(&delta).map_err(|e| {
                HttpError::new(
                    500,
                    "durability",
                    format!("journaling the delta failed: {e}"),
                )
            })?;
            inner.generation = seq;
            Some(seq)
        }
    };

    let dirty = DirtySet::from_delta(&applied.graph, &applied);
    let dirty_attrs = dirty.dirty_attr_ids().len();
    let dirty_caps = dirty.num_edge_caps();
    let added_vertices = applied.added_vertices;
    let novel_edges = applied.novel_edges.len();
    let novel_attrs = applied.novel_attrs.len();

    // Fresh exp(σ) cache — the null model is a function of the graph.
    let cache = Arc::new(NullModelCache::new());
    let config = ParallelConfig::new(state.mine_threads).with_split_depth(state.split_depth);
    let params = base.params().clone();
    let graph = Arc::new(applied.graph);
    let mut scpm = Scpm::with_cache(&graph, params.clone(), Arc::clone(&cache))
        .with_incremental(IncrementalCtx::update(Arc::clone(&mining.memo), dirty));
    let result = scpm.run_scheduled(&config);
    let (memo, incr) = scpm
        .take_incremental()
        .expect("update run keeps its context")
        .into_parts();
    let memo = Arc::new(memo);

    let generation = state.next_generation.fetch_add(1, Ordering::AcqRel);
    let catalog = Arc::new(PatternCatalog::build(&graph, &params, result, generation));
    let summary = catalog.summary_json();
    *state.mining.write() = Arc::new(MiningState {
        graph: Arc::clone(&graph),
        cache,
        memo: Arc::clone(&memo),
    });
    *state.catalog.write() = catalog;
    state.updates.fetch_add(1, Ordering::Relaxed);

    // Periodic checkpoint: fold the journal into a fresh snapshot every
    // `checkpoint_every` deltas. Best-effort — the update is already
    // committed to the journal, so a failed checkpoint only means a
    // longer replay on the next open (reported, never silent).
    let mut durability = Vec::new();
    if let (Some(d), Some(seq)) = (&state.durable, journaled_seq) {
        durability.push(("journaled_seq".into(), Json::Int(seq)));
        let mut inner = d.inner.lock();
        let status = if inner.generation - inner.last_checkpoint >= d.checkpoint_every {
            match checkpoint_with(
                &d.injector,
                &d.dir,
                inner.generation,
                &graph,
                &memo,
                &params,
            ) {
                Ok(journal) => {
                    inner.journal = journal;
                    inner.last_checkpoint = inner.generation;
                    Json::str("written")
                }
                Err(e) => Json::str(format!("failed: {e}")),
            }
        } else {
            Json::str("deferred")
        };
        durability.push(("checkpoint".into(), status));
    }

    let mut fields = vec![
        (
            "applied".into(),
            Json::Obj(vec![
                ("added_vertices".into(), Json::Int(added_vertices as u64)),
                ("novel_edges".into(), Json::Int(novel_edges as u64)),
                ("novel_attrs".into(), Json::Int(novel_attrs as u64)),
            ]),
        ),
        (
            "dirty".into(),
            Json::Obj(vec![
                ("attrs".into(), Json::Int(dirty_attrs as u64)),
                ("edge_caps".into(), Json::Int(dirty_caps as u64)),
            ]),
        ),
        (
            "incremental".into(),
            Json::Obj(vec![
                ("reused".into(), Json::Int(incr.reused)),
                ("reevaluated".into(), Json::Int(incr.reevaluated)),
                (
                    "reused_kernel_ops".into(),
                    Json::Int(incr.reused_kernel_ops),
                ),
                ("live_kernel_ops".into(), Json::Int(incr.live_kernel_ops)),
            ]),
        ),
        ("catalog".into(), summary),
    ];
    if !durability.is_empty() {
        fields.push(("durability".into(), Json::Obj(durability)));
    }
    Ok((Json::Obj(fields), generation))
}

/// Parses a `POST /update` body into a [`GraphDelta`]. Unknown keys are
/// rejected so typos fail loudly instead of silently applying an empty
/// delta.
fn delta_from_body(body: &Json) -> Result<GraphDelta, HttpError> {
    if !matches!(body, Json::Obj(_)) {
        return Err(HttpError::bad_request("body must be a JSON object"));
    }
    const KNOWN: &[&str] = &["add_vertices", "edges", "attrs"];
    for key in body.keys() {
        if !KNOWN.contains(&key) {
            return Err(HttpError::invalid_parameter(format!(
                "unknown key `{key}` (want one of {})",
                KNOWN.join(", ")
            )));
        }
    }
    let mut ops = Vec::new();
    if let Some(v) = body.get("add_vertices") {
        let n = v.as_u64().ok_or_else(|| {
            HttpError::invalid_parameter("`add_vertices` must be a non-negative integer")
        })?;
        let n = usize::try_from(n)
            .map_err(|_| HttpError::invalid_parameter("`add_vertices` is too large"))?;
        if n > 0 {
            ops.push(DeltaOp::AddVertices(n));
        }
    }
    if let Some(edges) = body.get("edges") {
        let edges = edges
            .as_array()
            .ok_or_else(|| HttpError::invalid_parameter("`edges` must be an array of [u, v]"))?;
        for edge in edges {
            let pair = edge.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                HttpError::invalid_parameter("each edge must be a [u, v] pair of vertex ids")
            })?;
            let u = vertex_id(&pair[0], "edge endpoint")?;
            let v = vertex_id(&pair[1], "edge endpoint")?;
            ops.push(DeltaOp::AddEdge(u, v));
        }
    }
    if let Some(attrs) = body.get("attrs") {
        let attrs = attrs.as_array().ok_or_else(|| {
            HttpError::invalid_parameter("`attrs` must be an array of [v, \"name\"]")
        })?;
        for attr in attrs {
            let pair = attr.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                HttpError::invalid_parameter("each attr must be a [v, \"name\"] pair")
            })?;
            let v = vertex_id(&pair[0], "attr vertex")?;
            let name = pair[1]
                .as_str()
                .ok_or_else(|| HttpError::invalid_parameter("attribute name must be a string"))?;
            if name.is_empty() || name.chars().any(char::is_whitespace) {
                return Err(HttpError::invalid_parameter(
                    "attribute name must be non-empty and whitespace-free",
                ));
            }
            ops.push(DeltaOp::AddAttr(v, name.to_string()));
        }
    }
    Ok(GraphDelta { ops })
}

/// Parses one JSON value as a vertex id.
fn vertex_id(value: &Json, what: &str) -> Result<u32, HttpError> {
    value
        .as_u64()
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| HttpError::invalid_parameter(format!("{what} must be a vertex id")))
}

/// Overlays a `POST /mine` body on `base`, validating every field.
/// Unknown keys are rejected so typos fail loudly instead of silently
/// re-mining with unchanged parameters.
fn params_from_body(base: &ScpmParams, body: &Json) -> Result<ScpmParams, HttpError> {
    const KNOWN: &[&str] = &[
        "sigma_min",
        "gamma",
        "min_size",
        "eps_min",
        "delta_min",
        "top_k",
        "min_attrs",
        "max_attrs",
    ];
    for key in body.keys() {
        if !KNOWN.contains(&key) {
            return Err(HttpError::invalid_parameter(format!(
                "unknown parameter `{key}` (want one of {})",
                KNOWN.join(", ")
            )));
        }
    }
    let get_usize = |key: &str, default: usize, min: usize| -> Result<usize, HttpError> {
        match body.get(key) {
            None => Ok(default),
            Some(v) => {
                let n = v.as_u64().ok_or_else(|| {
                    HttpError::invalid_parameter(format!("`{key}` must be a non-negative integer"))
                })?;
                let n = usize::try_from(n).unwrap_or(usize::MAX);
                if n < min {
                    return Err(HttpError::invalid_parameter(format!(
                        "`{key}` must be at least {min}"
                    )));
                }
                Ok(n)
            }
        }
    };
    let get_f64 = |key: &str, default: f64| -> Result<f64, HttpError> {
        match body.get(key) {
            None => Ok(default),
            Some(v) => v.as_f64().filter(|x| x.is_finite()).ok_or_else(|| {
                HttpError::invalid_parameter(format!("`{key}` must be a finite number"))
            }),
        }
    };

    let sigma_min = get_usize("sigma_min", base.sigma_min, 1)?;
    let min_size = get_usize("min_size", base.quasi_clique.min_size, 1)?;
    let top_k = get_usize("top_k", base.k, 1)?;
    let min_attrs = get_usize("min_attrs", base.min_attrs, 1)?;
    let max_attrs = get_usize("max_attrs", base.max_attrs, 1)?;
    let gamma = get_f64("gamma", base.quasi_clique.gamma)?;
    if !(gamma > 0.0 && gamma <= 1.0) {
        return Err(HttpError::invalid_parameter(format!(
            "`gamma` must be in (0, 1], got {gamma}"
        )));
    }
    let eps_min = get_f64("eps_min", base.eps_min)?;
    if !(0.0..=1.0).contains(&eps_min) {
        return Err(HttpError::invalid_parameter(format!(
            "`eps_min` must be in [0, 1], got {eps_min}"
        )));
    }
    let delta_min = get_f64("delta_min", base.delta_min)?;
    if delta_min < 0.0 {
        return Err(HttpError::invalid_parameter(format!(
            "`delta_min` must be non-negative, got {delta_min}"
        )));
    }
    if max_attrs < min_attrs {
        return Err(HttpError::invalid_parameter(format!(
            "`max_attrs` ({max_attrs}) must be at least `min_attrs` ({min_attrs})"
        )));
    }

    let mut params = ScpmParams::new(sigma_min, gamma, min_size)
        .with_eps_min(eps_min)
        .with_delta_min(delta_min)
        .with_top_k(top_k)
        .with_min_attrs(min_attrs)
        .with_max_attrs(max_attrs);
    params.search_order = base.search_order;
    params.repr = base.repr;
    Ok(params)
}

/// Rejects parameter sets the engine would panic on (the server must turn
/// them into errors instead).
fn validate_params(params: &ScpmParams) -> Result<(), HttpError> {
    let gamma = params.quasi_clique.gamma;
    if !(gamma > 0.0 && gamma <= 1.0) {
        return Err(HttpError::invalid_parameter(format!(
            "gamma must be in (0, 1], got {gamma}"
        )));
    }
    if params.quasi_clique.min_size == 0 {
        return Err(HttpError::invalid_parameter("min_size must be at least 1"));
    }
    Ok(())
}
