//! The immutable, queryable pattern catalog a server generation publishes.
//!
//! A [`PatternCatalog`] freezes one mining run — the [`ScpmResult`] plus
//! everything needed to answer queries without touching the graph again
//! (attribute names, the name→id map, the vertex count). Handlers clone an
//! `Arc<PatternCatalog>` out of the server's swap slot and answer entirely
//! from that snapshot, so a concurrent re-mine can never produce a torn
//! response: every reply is derived from exactly one generation, and the
//! generation number is stamped into the response envelope.
//!
//! All JSON here is rendered through [`crate::json::Json`], whose output
//! is byte-stable — [`PatternCatalog::full_json`] over the same snapshot
//! and parameters is byte-identical no matter whether it was produced by
//! `scpm mine --json`, the first server generation, or a `POST /mine`
//! re-mine at any thread count (the parallel driver's output is
//! bit-identical to the serial one).

use std::collections::HashMap;

use scpm_core::{AttributeSetReport, Pattern, ScpmParams, ScpmResult};
use scpm_graph::attributed::{AttrId, AttributedGraph};
use scpm_graph::csr::VertexId;

use crate::http::HttpError;
use crate::json::Json;

/// Ranking key of `GET /top`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopBy {
    /// Descending normalized structural correlation `δ_lb`.
    Delta,
    /// Descending structural correlation `ε`.
    Epsilon,
    /// Descending support `σ`.
    Support,
}

impl TopBy {
    /// Parses the `by` query parameter.
    pub fn parse(s: &str) -> Result<TopBy, HttpError> {
        match s {
            "delta" => Ok(TopBy::Delta),
            "epsilon" => Ok(TopBy::Epsilon),
            "support" => Ok(TopBy::Support),
            other => Err(HttpError::invalid_parameter(format!(
                "invalid `by` value `{other}` (want delta|epsilon|support)"
            ))),
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            TopBy::Delta => "delta",
            TopBy::Epsilon => "epsilon",
            TopBy::Support => "support",
        }
    }
}

/// One immutable catalog generation: a mining result frozen for serving.
#[derive(Debug)]
pub struct PatternCatalog {
    generation: u64,
    params: ScpmParams,
    attr_names: Vec<String>,
    name_to_id: HashMap<String, AttrId>,
    num_vertices: usize,
    result: ScpmResult,
}

impl PatternCatalog {
    /// Freezes `result` (mined from `graph` under `params`) as catalog
    /// generation `generation`.
    pub fn build(
        graph: &AttributedGraph,
        params: &ScpmParams,
        result: ScpmResult,
        generation: u64,
    ) -> Self {
        let attr_names: Vec<String> = (0..graph.num_attributes())
            .map(|a| graph.attr_name(a as AttrId).to_string())
            .collect();
        let name_to_id = attr_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as AttrId))
            .collect();
        PatternCatalog {
            generation,
            params: params.clone(),
            attr_names,
            name_to_id,
            num_vertices: graph.num_vertices(),
            result,
        }
    }

    /// This catalog's generation number (0 = the startup mine; each
    /// `POST /mine` swap increments it).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The parameters this catalog was mined under.
    pub fn params(&self) -> &ScpmParams {
        &self.params
    }

    /// The frozen mining result.
    pub fn result(&self) -> &ScpmResult {
        &self.result
    }

    /// Attribute names, indexed by [`AttrId`].
    fn names(&self, attrs: &[AttrId]) -> Json {
        Json::Arr(
            attrs
                .iter()
                .map(|&a| Json::str(self.attr_names[a as usize].clone()))
                .collect(),
        )
    }

    fn report_json(&self, r: &AttributeSetReport) -> Json {
        Json::Obj(vec![
            ("attrs".into(), self.names(&r.attrs)),
            ("support".into(), Json::Int(r.support as u64)),
            ("covered".into(), Json::Int(r.covered as u64)),
            ("epsilon".into(), Json::Num(r.epsilon)),
            ("delta_lb".into(), Json::Num(r.delta_lb)),
            ("qualified".into(), Json::Bool(r.qualified)),
        ])
    }

    fn pattern_json(&self, p: &Pattern) -> Json {
        Json::Obj(vec![
            ("attrs".into(), self.names(&p.attrs)),
            (
                "vertices".into(),
                Json::Arr(
                    p.clique
                        .vertices
                        .iter()
                        .map(|&v| Json::Int(u64::from(v)))
                        .collect(),
                ),
            ),
            ("size".into(), Json::Int(p.clique.size() as u64)),
            ("gamma".into(), Json::Num(p.clique.min_degree_ratio)),
            ("density".into(), Json::Num(p.clique.edge_density)),
        ])
    }

    /// `usize::MAX` means "unbounded" in the params; render it as `null`.
    fn bounded(n: usize) -> Json {
        if n == usize::MAX {
            Json::Null
        } else {
            Json::Int(n as u64)
        }
    }

    /// The mining parameters as JSON (the catalog's provenance).
    pub fn params_json(&self) -> Json {
        Json::Obj(vec![
            ("sigma_min".into(), Json::Int(self.params.sigma_min as u64)),
            ("gamma".into(), Json::Num(self.params.quasi_clique.gamma)),
            (
                "min_size".into(),
                Json::Int(self.params.quasi_clique.min_size as u64),
            ),
            ("eps_min".into(), Json::Num(self.params.eps_min)),
            ("delta_min".into(), Json::Num(self.params.delta_min)),
            ("top_k".into(), Self::bounded(self.params.k)),
            ("min_attrs".into(), Json::Int(self.params.min_attrs as u64)),
            ("max_attrs".into(), Self::bounded(self.params.max_attrs)),
        ])
    }

    /// Deterministic run counters (everything in
    /// [`scpm_core::ScpmStats`] except the wall-clock `elapsed`).
    pub fn stats_json(&self) -> Json {
        let s = &self.result.stats;
        Json::Obj(vec![
            (
                "attribute_sets_examined".into(),
                Json::Int(s.attribute_sets_examined),
            ),
            (
                "attribute_sets_qualified".into(),
                Json::Int(s.attribute_sets_qualified),
            ),
            ("pruned_support".into(), Json::Int(s.pruned_support)),
            ("pruned_apriori".into(), Json::Int(s.pruned_apriori)),
            ("pruned_eps_bound".into(), Json::Int(s.pruned_eps_bound)),
            ("pruned_delta_bound".into(), Json::Int(s.pruned_delta_bound)),
            ("qc_nodes_coverage".into(), Json::Int(s.qc_nodes_coverage)),
            ("qc_nodes_topk".into(), Json::Int(s.qc_nodes_topk)),
            ("qc_edge_tests".into(), Json::Int(s.qc_edge_tests)),
            ("qc_kernel_ops".into(), Json::Int(s.qc_kernel_ops)),
            ("qc_fused_ops".into(), Json::Int(s.qc_fused_ops)),
            ("qc_blocks_skipped".into(), Json::Int(s.qc_blocks_skipped)),
            ("qc_probes_elided".into(), Json::Int(s.qc_probes_elided)),
            ("qc_batch_ops".into(), Json::Int(s.qc_batch_ops)),
        ])
    }

    /// The whole catalog as one JSON object — the byte-identity surface
    /// shared by `GET /catalog` and `scpm mine --json`. Excludes the
    /// generation and wall-clock timing, which are serving-side state.
    pub fn full_json(&self) -> Json {
        Json::Obj(vec![
            ("params".into(), self.params_json()),
            ("num_vertices".into(), Json::Int(self.num_vertices as u64)),
            (
                "num_attributes".into(),
                Json::Int(self.attr_names.len() as u64),
            ),
            (
                "num_reports".into(),
                Json::Int(self.result.reports.len() as u64),
            ),
            (
                "num_patterns".into(),
                Json::Int(self.result.patterns.len() as u64),
            ),
            (
                "reports".into(),
                Json::Arr(
                    self.result
                        .reports
                        .iter()
                        .map(|r| self.report_json(r))
                        .collect(),
                ),
            ),
            (
                "patterns".into(),
                Json::Arr(
                    self.result
                        .patterns
                        .iter()
                        .map(|p| self.pattern_json(p))
                        .collect(),
                ),
            ),
            ("stats".into(), self.stats_json()),
        ])
    }

    /// Resolves a comma-separated attribute list to sorted, deduplicated
    /// ids; unknown names are a 422.
    fn resolve_attrs(&self, list: &str) -> Result<Vec<AttrId>, HttpError> {
        let mut ids = Vec::new();
        for name in list.split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            let id = self.name_to_id.get(name).copied().ok_or_else(|| {
                HttpError::new(
                    422,
                    "unknown_attribute",
                    format!("unknown attribute `{name}`"),
                )
            })?;
            ids.push(id);
        }
        if ids.is_empty() {
            return Err(HttpError::invalid_parameter("empty attribute list"));
        }
        ids.sort_unstable();
        ids.dedup();
        Ok(ids)
    }

    /// `GET /patterns?attrs=A,B` — the report and patterns of one exact
    /// attribute set (`report` is `null` for sets the run never examined).
    pub fn query_attrs(&self, list: &str) -> Result<Json, HttpError> {
        let ids = self.resolve_attrs(list)?;
        let report = self
            .result
            .report_for(&ids)
            .map(|r| self.report_json(r))
            .unwrap_or(Json::Null);
        let patterns: Vec<Json> = self
            .result
            .patterns_for(&ids)
            .into_iter()
            .map(|p| self.pattern_json(p))
            .collect();
        Ok(Json::Obj(vec![
            ("attrs".into(), self.names(&ids)),
            ("report".into(), report),
            ("count".into(), Json::Int(patterns.len() as u64)),
            ("patterns".into(), Json::Arr(patterns)),
        ]))
    }

    /// `GET /patterns/covering?v=N` — all patterns whose quasi-clique
    /// contains vertex `v`.
    pub fn query_covering(&self, v: VertexId) -> Result<Json, HttpError> {
        if (v as usize) >= self.num_vertices {
            return Err(HttpError::invalid_parameter(format!(
                "vertex {v} out of range (graph has {} vertices)",
                self.num_vertices
            )));
        }
        let patterns: Vec<Json> = self
            .result
            .patterns_covering(v)
            .into_iter()
            .map(|p| self.pattern_json(p))
            .collect();
        Ok(Json::Obj(vec![
            ("vertex".into(), Json::Int(u64::from(v))),
            ("count".into(), Json::Int(patterns.len() as u64)),
            ("patterns".into(), Json::Arr(patterns)),
        ]))
    }

    /// `GET /reports?delta_min=X` — reports at or above a δ_lb threshold,
    /// in enumeration order.
    pub fn query_delta(&self, delta_min: f64) -> Result<Json, HttpError> {
        if !delta_min.is_finite() || delta_min < 0.0 {
            return Err(HttpError::invalid_parameter(format!(
                "delta_min must be a finite non-negative number, got {delta_min}"
            )));
        }
        let reports: Vec<Json> = self
            .result
            .reports_with_min_delta(delta_min)
            .into_iter()
            .map(|r| self.report_json(r))
            .collect();
        Ok(Json::Obj(vec![
            ("delta_min".into(), Json::Num(delta_min)),
            ("count".into(), Json::Int(reports.len() as u64)),
            ("reports".into(), Json::Arr(reports)),
        ]))
    }

    /// `GET /top?by=delta|epsilon|support&k=N` — the k best reports under
    /// one ranking (ties broken by attribute ids, like the CLI tables).
    pub fn query_top(&self, by: TopBy, k: usize) -> Result<Json, HttpError> {
        if k == 0 {
            return Err(HttpError::invalid_parameter("k must be at least 1"));
        }
        let rows = match by {
            TopBy::Delta => self.result.top_by_delta(k),
            TopBy::Epsilon => self.result.top_by_epsilon(k),
            TopBy::Support => self.result.top_by_support(k),
        };
        let reports: Vec<Json> = rows.into_iter().map(|r| self.report_json(r)).collect();
        Ok(Json::Obj(vec![
            ("by".into(), Json::str(by.as_str())),
            ("k".into(), Json::Int(k as u64)),
            ("count".into(), Json::Int(reports.len() as u64)),
            ("reports".into(), Json::Arr(reports)),
        ]))
    }

    /// Compact description of this generation (the `POST /mine` response
    /// and part of `GET /stats`).
    pub fn summary_json(&self) -> Json {
        Json::Obj(vec![
            ("generation".into(), Json::Int(self.generation)),
            (
                "reports".into(),
                Json::Int(self.result.reports.len() as u64),
            ),
            (
                "patterns".into(),
                Json::Int(self.result.patterns.len() as u64),
            ),
            (
                "qualified".into(),
                Json::Int(self.result.stats.attribute_sets_qualified),
            ),
            ("params".into(), self.params_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_core::{Scpm, ScpmParams};
    use scpm_graph::figure1::figure1;

    fn table1_catalog() -> (AttributedGraph, PatternCatalog) {
        let g = figure1();
        let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5).with_top_k(5);
        let result = Scpm::new(&g, params.clone()).run();
        let catalog = PatternCatalog::build(&g, &params, result, 0);
        (g, catalog)
    }

    #[test]
    fn full_json_is_reproducible_and_parses() {
        let (_, a) = table1_catalog();
        let (_, b) = table1_catalog();
        let ja = a.full_json().render();
        assert_eq!(ja, b.full_json().render());
        let parsed = Json::parse(&ja).unwrap();
        assert_eq!(parsed.get("num_reports").unwrap().as_u64(), Some(5));
        assert_eq!(parsed.get("num_patterns").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn query_attrs_matches_report() {
        let (g, c) = table1_catalog();
        let out = c.query_attrs("B,A").unwrap(); // order-insensitive
        let report = out.get("report").unwrap();
        assert_eq!(report.get("support").unwrap().as_u64(), Some(6));
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        let expected = c.result().report_for(&[a.min(b), a.max(b)]).unwrap();
        assert_eq!(
            report.get("epsilon").unwrap().as_f64().unwrap(),
            expected.epsilon
        );
        assert!(c.query_attrs("NOPE").is_err());
        assert!(c.query_attrs("").is_err());
    }

    #[test]
    fn covering_and_delta_and_top() {
        let (_, c) = table1_catalog();
        let out = c.query_covering(0).unwrap();
        let count = out.get("count").unwrap().as_u64().unwrap();
        let direct = c.result().patterns_covering(0).len() as u64;
        assert_eq!(count, direct);
        assert!(c.query_covering(u32::MAX).is_err());

        let out = c.query_delta(0.0).unwrap();
        assert_eq!(
            out.get("count").unwrap().as_u64().unwrap() as usize,
            c.result().reports.len()
        );
        assert!(c.query_delta(f64::NAN).is_err());
        assert!(c.query_delta(-1.0).is_err());

        let out = c.query_top(TopBy::Support, 2).unwrap();
        let rows = out.get("reports").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        let s0 = rows[0].get("support").unwrap().as_u64().unwrap();
        let s1 = rows[1].get("support").unwrap().as_u64().unwrap();
        assert!(s0 >= s1);
        assert!(c.query_top(TopBy::Delta, 0).is_err());
        assert!(TopBy::parse("sideways").is_err());
    }

    #[test]
    fn unbounded_params_render_null() {
        let g = figure1();
        let params = ScpmParams::new(3, 0.6, 4); // k and max_attrs unbounded
        let result = Scpm::new(&g, params.clone()).run();
        let c = PatternCatalog::build(&g, &params, result, 3);
        let p = c.params_json();
        assert_eq!(p.get("top_k").unwrap(), &Json::Null);
        assert_eq!(p.get("max_attrs").unwrap(), &Json::Null);
        assert_eq!(c.generation(), 3);
    }
}
