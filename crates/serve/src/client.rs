//! A minimal blocking HTTP client for the catalog protocol.
//!
//! One connection per request, `Connection: close`, read-to-EOF — exactly
//! enough for the conformance/concurrency suites, `exp_serve`, and ad-hoc
//! scripting against a running `scpm serve`. Not a general HTTP client.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use crate::json::Json;

/// A parsed response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always JSON from this server).
    pub body: String,
}

impl Response {
    /// Parses the body as JSON.
    pub fn json(&self) -> Result<Json, String> {
        Json::parse(&self.body)
    }

    /// The `result` field of the response envelope.
    pub fn result(&self) -> Result<Json, String> {
        self.json()?
            .get("result")
            .cloned()
            .ok_or_else(|| "envelope has no `result` field".into())
    }

    /// The `generation` field of the response envelope.
    pub fn generation(&self) -> Result<u64, String> {
        self.json()?
            .get("generation")
            .and_then(Json::as_u64)
            .ok_or_else(|| "envelope has no `generation` field".into())
    }
}

/// Client bound to one server address.
#[derive(Clone, Copy, Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` with a 30 s I/O timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Client {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the per-request socket timeout, builder style.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// `GET` on `target` (path plus optional query string).
    pub fn get(&self, target: &str) -> Result<Response, String> {
        let request = format!("GET {target} HTTP/1.1\r\nHost: scpm\r\nConnection: close\r\n\r\n");
        self.roundtrip(request.as_bytes()).and_then(parse_response)
    }

    /// `POST` on `target` with a JSON body.
    pub fn post(&self, target: &str, body: &str) -> Result<Response, String> {
        let request = format!(
            "POST {target} HTTP/1.1\r\nHost: scpm\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.roundtrip(request.as_bytes()).and_then(parse_response)
    }

    /// Writes arbitrary bytes, half-closes the write side, and reads
    /// whatever comes back until EOF — the fuzzing primitive: the payload
    /// need not be (and usually is not) a valid request.
    pub fn raw(&self, payload: &[u8]) -> Result<Vec<u8>, String> {
        self.roundtrip(payload)
    }

    fn roundtrip(&self, payload: &[u8]) -> Result<Vec<u8>, String> {
        let stream =
            TcpStream::connect_timeout(&self.addr, self.timeout).map_err(|e| e.to_string())?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        let mut stream = stream;
        stream.write_all(payload).map_err(|e| e.to_string())?;
        // Half-close: the server sees EOF after the payload, so truncated
        // fuzz inputs terminate instead of waiting out the read timeout.
        let _ = stream.shutdown(Shutdown::Write);
        let mut response = Vec::new();
        stream
            .read_to_end(&mut response)
            .map_err(|e| e.to_string())?;
        Ok(response)
    }
}

/// Splits a raw HTTP/1.1 response into status + body.
fn parse_response(raw: Vec<u8>) -> Result<Response, String> {
    let text = String::from_utf8(raw).map_err(|_| "response is not UTF-8".to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("no header/body separator in response: {text:?}"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
    // Content-Length is authoritative when present (trailing bytes after
    // a keep-alive response never occur with Connection: close).
    let body = match head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n <= body.len() => &body[..n],
        _ => body,
    };
    Ok(Response {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_response_bytes() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}"
                .to_vec();
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{}");
        assert!(parse_response(b"garbage".to_vec()).is_err());
    }
}
