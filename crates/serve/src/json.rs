//! Minimal JSON tree: a deterministic writer plus a strict parser.
//!
//! The serving layer needs exactly two things from JSON: *byte-stable*
//! rendering (the conformance suite asserts responses byte-for-byte, and
//! catalog dumps must be identical between the server and batch `scpm mine
//! --json`) and safe parsing of small request bodies (`POST /mine`). Both
//! are small enough to hand-roll against the no-crates.io constraint:
//!
//! * **Writer** — object keys keep insertion order (callers list them in
//!   the documented response order), numbers with a zero fraction render
//!   as integers, all other finite floats use Rust's shortest-roundtrip
//!   `Display`, and non-finite floats render as `null` (JSON has no NaN).
//! * **Parser** — strict recursive descent: rejects trailing garbage,
//!   caps nesting depth at [`MAX_DEPTH`], handles `\uXXXX` escapes
//!   including surrogate pairs. No number-precision tricks: integer
//!   literals that fit `u64` stay exact, everything else goes through
//!   `f64`.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts; deeper input is rejected
/// rather than risking stack exhaustion on hostile bodies.
pub const MAX_DEPTH: usize = 32;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` exactly (counts, ids).
    Int(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order (rendering is byte-stable).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for `Json::Str`.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => write_f64(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's keys, in order; empty on non-objects.
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Numeric view (`Int` or `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Exact unsigned-integer view: `Int`, or a `Num` with zero fraction.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document; the entire input must be consumed.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

/// JSON number formatting: integral finite values print without a decimal
/// point, other finite values use shortest-roundtrip `Display`, and
/// non-finite values degrade to `null`.
fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a \uXXXX low half must follow.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err("lone high surrogate".into());
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else if (0xDC00..0xE000).contains(&hi) {
                            return Err("lone low surrogate".into());
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).ok_or("invalid code point")?);
                    }
                    other => return Err(format!("invalid escape '\\{}'", *other as char)),
                }
            }
            Some(&b) if b < 0x20 => return Err("raw control character in string".into()),
            Some(_) => {
                // Multi-byte UTF-8 is passed through; the input is &str so
                // the bytes are valid — advance by the char's width.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let chunk = bytes
        .get(*pos..*pos + 4)
        .ok_or("truncated \\u escape")
        .map_err(String::from)?;
    let s = std::str::from_utf8(chunk).map_err(|_| "invalid \\u escape")?;
    let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape")?;
    *pos += 4;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "invalid number")?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected value at byte {start}"));
    }
    // Exact u64 for plain integer literals; f64 otherwise.
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::Int(n));
        }
    }
    let x: f64 = text
        .parse()
        .map_err(|_| format!("invalid number `{text}`"))?;
    if !x.is_finite() {
        return Err(format!("non-finite number `{text}`"));
    }
    Ok(Json::Num(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_ordered() {
        let v = Json::Obj(vec![
            ("b".into(), Json::Int(2)),
            ("a".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("s".into(), Json::str("x\"\n")),
        ]);
        assert_eq!(v.render(), r#"{"b":2,"a":[null,true],"s":"x\"\n"}"#);
    }

    #[test]
    fn number_rendering_is_deterministic() {
        assert_eq!(Json::Num(1.0).render(), "1");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(0.8181818181818182).render(), "0.8181818181818182");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Int(u64::MAX).render(), "18446744073709551615");
    }

    #[test]
    fn parse_roundtrips() {
        for text in [
            r#"{"a":1,"b":[1.5,"x",null,false],"c":{"d":""}}"#,
            "[]",
            "{}",
            "-0.25",
            "18446744073709551615",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text, "{text}");
        }
    }

    #[test]
    fn parse_unicode_escapes() {
        let v = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(v, Json::str("é😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn parse_rejects_malformed() {
        for text in [
            "", "{", "[1,", "tru", r#"{"a"}"#, "1 2", "nulll", "--1", "\u{1}", "1e9999",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn parse_depth_capped() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"f":2.5,"s":"hi","a":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert_eq!(v.keys(), vec!["n", "f", "s", "a"]);
        assert!(v.get("missing").is_none());
    }
}
