//! Hand-rolled HTTP/1.1 line protocol over `std::io` streams.
//!
//! The vendored-shim model applies to the wire protocol too: no crates.io,
//! so this module implements the small, strict HTTP/1.1 subset the catalog
//! service needs — request-line + headers + `Content-Length` bodies in,
//! fixed-length JSON responses out. Everything hostile is bounded:
//!
//! * request lines longer than [`MAX_REQUEST_LINE`] bytes → `431`,
//! * more than [`MAX_HEADERS`] headers or an over-long header → `431`,
//! * bodies above [`MAX_BODY`] bytes → `413` (the body is never read),
//! * non-UTF-8 request lines or headers → `400`,
//! * `Transfer-Encoding` (chunked uploads) → `501`,
//! * anything else malformed → `400` with a structured JSON error.
//!
//! Parse errors are values ([`HttpError`]), never panics, so a worker
//! thread survives any byte sequence a client sends (the robustness suite
//! fuzzes exactly this path).

use std::io::{self, BufRead, Write};

/// Upper bound on the request line (method + target + version) in bytes.
pub const MAX_REQUEST_LINE: usize = 8 * 1024;
/// Upper bound on one header line in bytes.
pub const MAX_HEADER_LINE: usize = 8 * 1024;
/// Maximum number of headers accepted per request.
pub const MAX_HEADERS: usize = 64;
/// Maximum request-body size in bytes (1 MiB; `/mine` bodies are tiny).
pub const MAX_BODY: usize = 1024 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, percent-decoded (`/top`).
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Raw body bytes (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A protocol-level failure, carrying the HTTP status to answer with and a
/// short machine-readable code for the JSON error envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct HttpError {
    /// HTTP status code (400, 404, 413, …).
    pub status: u16,
    /// Stable machine-readable error code (`bad_request`, `not_found`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl HttpError {
    /// Builds an error.
    pub fn new(status: u16, code: &'static str, message: impl Into<String>) -> Self {
        HttpError {
            status,
            code,
            message: message.into(),
        }
    }

    /// `400 bad_request` with a detail message.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, "bad_request", message)
    }

    /// `422 invalid_parameter` with a detail message.
    pub fn invalid_parameter(message: impl Into<String>) -> Self {
        Self::new(422, "invalid_parameter", message)
    }
}

/// What one `read_request` call produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed (or half-closed) the connection before sending any
    /// bytes — the clean end of a keep-alive session.
    Closed,
    /// The read timed out or the connection broke mid-request; the
    /// connection should be dropped without a response.
    Disconnected,
}

/// Reads one line (terminated by `\n`) with a byte cap. Returns `Ok(None)`
/// on immediate EOF; an over-long line yields `Err` *after* draining up to
/// the cap so the error maps to `431` rather than looping forever.
fn read_line_capped(
    reader: &mut impl BufRead,
    cap: usize,
    what: &str,
) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::bad_request(format!("unexpected EOF in {what}")));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return Ok(Some(line));
                }
                line.push(byte[0]);
                if line.len() > cap {
                    return Err(HttpError::new(
                        431,
                        "line_too_long",
                        format!("{what} exceeds {cap} bytes"),
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::new(408, "timeout", "request read timed out"))
            }
            Err(e) => return Err(HttpError::bad_request(format!("read failed: {e}"))),
        }
    }
}

/// Reads and parses one request from `reader`.
pub fn read_request(reader: &mut impl BufRead) -> Result<ReadOutcome, HttpError> {
    let Some(line) = read_line_capped(reader, MAX_REQUEST_LINE, "request line")? else {
        return Ok(ReadOutcome::Closed);
    };
    if line.is_empty() {
        return Err(HttpError::bad_request("empty request line"));
    }
    let line = std::str::from_utf8(&line)
        .map_err(|_| HttpError::bad_request("request line is not valid UTF-8"))?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::bad_request(
                "request line must be `METHOD TARGET HTTP/1.x`",
            ))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(HttpError::bad_request("invalid method token"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => {
            return Err(HttpError::new(
                505,
                "http_version_not_supported",
                format!("unsupported protocol version `{version}`"),
            ))
        }
    };

    // Headers.
    let mut content_length: usize = 0;
    let mut connection_close = !http11;
    let mut header_count = 0;
    loop {
        let Some(raw) = read_line_capped(reader, MAX_HEADER_LINE, "header line")? else {
            return Err(HttpError::bad_request("unexpected EOF in headers"));
        };
        if raw.is_empty() {
            break;
        }
        header_count += 1;
        if header_count > MAX_HEADERS {
            return Err(HttpError::new(
                431,
                "too_many_headers",
                format!("more than {MAX_HEADERS} headers"),
            ));
        }
        let text = std::str::from_utf8(&raw)
            .map_err(|_| HttpError::bad_request("header is not valid UTF-8"))?;
        let Some((name, value)) = text.split_once(':') else {
            return Err(HttpError::bad_request(format!(
                "malformed header `{}`",
                text.chars().take(40).collect::<String>()
            )));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| HttpError::bad_request(format!("bad Content-Length `{value}`")))?;
                if n > MAX_BODY {
                    return Err(HttpError::new(
                        413,
                        "payload_too_large",
                        format!("body of {n} bytes exceeds the {MAX_BODY}-byte limit"),
                    ));
                }
                content_length = n;
            }
            "transfer-encoding" => {
                return Err(HttpError::new(
                    501,
                    "not_implemented",
                    "Transfer-Encoding is not supported; send Content-Length",
                ));
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    connection_close = true;
                } else if v.contains("keep-alive") {
                    connection_close = false;
                }
            }
            _ => {}
        }
    }

    // Body.
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
                HttpError::new(408, "timeout", "request body read timed out")
            } else {
                HttpError::bad_request(format!("short body: {e}"))
            }
        })?;
    }

    // Target → path + query.
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path)?;
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k)?, percent_decode(v)?));
        }
    }

    Ok(ReadOutcome::Request(Request {
        method: method.to_string(),
        path,
        query,
        body,
        close: connection_close,
    }))
}

/// Percent-decodes one URL component (`%XX` escapes, `+` as space); the
/// decoded bytes must be valid UTF-8.
pub fn percent_decode(s: &str) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| HttpError::bad_request("truncated percent escape"))?;
                let hex = std::str::from_utf8(hex)
                    .map_err(|_| HttpError::bad_request("invalid percent escape"))?;
                let byte = u8::from_str_radix(hex, 16).map_err(|_| {
                    HttpError::bad_request(format!("invalid percent escape %{hex}"))
                })?;
                out.push(byte);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::bad_request("escape decodes to invalid UTF-8"))
}

/// Reason phrase of the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes one fixed-length JSON response.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    body: &str,
    close: bool,
) -> io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<ReadOutcome, HttpError> {
        read_request(&mut BufReader::new(raw))
    }

    fn request(raw: &[u8]) -> Request {
        match parse(raw).unwrap() {
            ReadOutcome::Request(r) => r,
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_query() {
        let r = request(b"GET /top?by=delta&k=5&x=a%2Cb+c HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/top");
        assert_eq!(r.query_param("by"), Some("delta"));
        assert_eq!(r.query_param("k"), Some("5"));
        assert_eq!(r.query_param("x"), Some("a,b c"));
        assert!(!r.close);
    }

    #[test]
    fn parses_post_with_body() {
        let r = request(b"POST /mine HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"g\"");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"g\"");
    }

    #[test]
    fn bare_lf_lines_accepted() {
        let r = request(b"GET /health HTTP/1.1\nHost: x\n\n");
        assert_eq!(r.path, "/health");
    }

    #[test]
    fn connection_close_and_http10() {
        let r = request(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(r.close);
        let r = request(b"GET / HTTP/1.0\r\n\r\n");
        assert!(r.close);
        let r = request(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!r.close);
    }

    #[test]
    fn immediate_eof_is_clean_close() {
        assert!(matches!(parse(b"").unwrap(), ReadOutcome::Closed));
    }

    #[test]
    fn oversized_request_line_is_431() {
        let mut raw = vec![b'G'; MAX_REQUEST_LINE + 10];
        raw.extend_from_slice(b" / HTTP/1.1\r\n\r\n");
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn bad_utf8_is_400() {
        assert_eq!(
            parse(b"GET /\xff\xfe HTTP/1.1\r\n\r\n").unwrap_err().status,
            400
        );
        assert_eq!(
            parse(b"GET / HTTP/1.1\r\nX-A: \xff\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn malformed_lines_are_400() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /\r\n\r\n",
            b"G@T / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
            b"GET / HTTP/1.1",
            b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
            b"GET /%zz HTTP/1.1\r\n\r\n",
            b"GET /%ff HTTP/1.1\r\n\r\n",
        ] {
            assert_eq!(
                parse(raw).unwrap_err().status,
                400,
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_body_is_413_and_chunked_is_501() {
        let raw = format!(
            "POST /mine HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert_eq!(parse(raw.as_bytes()).unwrap_err().status, 413);
        let raw = b"POST /mine HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        assert_eq!(parse(raw).unwrap_err().status, 501);
    }

    #[test]
    fn unsupported_version_is_505() {
        assert_eq!(parse(b"GET / HTTP/2.0\r\n\r\n").unwrap_err().status, 505);
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADERS + 1) {
            raw.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        assert_eq!(parse(&raw).unwrap_err().status, 431);
    }

    #[test]
    fn response_layout() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let mut out = Vec::new();
        write_response(&mut out, 404, "x", true).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: close"));
    }
}
