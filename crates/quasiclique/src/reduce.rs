//! Iterative vertex reduction ("vertex pruning" in the paper's §3.2.2).
//!
//! A vertex with degree below `z = ⌈γ·(min_size−1)⌉` cannot belong to any
//! qualifying quasi-clique; removing it may push neighbors below the
//! threshold, so removal is iterated to a fixpoint (a `z`-core peeling).

use crate::config::QcConfig;
use scpm_graph::csr::{CsrGraph, VertexId};

/// Returns the sorted vertex list surviving iterated degree-threshold
/// peeling.
pub fn reduce_vertices(g: &CsrGraph, cfg: &QcConfig) -> Vec<VertexId> {
    let z = cfg.min_required_degree();
    let n = g.num_vertices();
    if z == 0 {
        return (0..n as VertexId).collect();
    }
    let mut degree: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let mut alive = vec![true; n];
    let mut queue: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| degree[v as usize] < z)
        .collect();
    for &v in &queue {
        alive[v as usize] = false;
    }
    while let Some(v) = queue.pop() {
        for &u in g.neighbors(v) {
            if alive[u as usize] {
                degree[u as usize] -= 1;
                if degree[u as usize] < z {
                    alive[u as usize] = false;
                    queue.push(u);
                }
            }
        }
    }
    (0..n as VertexId).filter(|&v| alive[v as usize]).collect()
}

/// Splits a sorted vertex set into connected components (restricted to
/// edges inside the set). Searching per component avoids carrying dead
/// candidates across components.
pub fn components_within(g: &CsrGraph, set: &[VertexId]) -> Vec<Vec<VertexId>> {
    let mut index = std::collections::HashMap::with_capacity(set.len());
    for (i, &v) in set.iter().enumerate() {
        index.insert(v, i);
    }
    let mut seen = vec![false; set.len()];
    let mut out = Vec::new();
    let mut stack = Vec::new();
    for start in 0..set.len() {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        stack.push(start);
        let mut comp = Vec::new();
        while let Some(i) = stack.pop() {
            comp.push(set[i]);
            for &u in g.neighbors(set[i]) {
                if let Some(&j) = index.get(&u) {
                    if !seen[j] {
                        seen[j] = true;
                        stack.push(j);
                    }
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// The set of vertices within distance ≤ 2 of `v` in `g` (including `v`).
///
/// For `γ ≥ 0.5` every γ-quasi-clique has diameter at most 2 (Pei et al.,
/// KDD 2005), so candidates farther than 2 hops from a chosen seed can be
/// discarded.
pub fn within_two_hops(g: &CsrGraph, v: VertexId) -> Vec<VertexId> {
    let mut mark = vec![false; g.num_vertices()];
    mark[v as usize] = true;
    for &u in g.neighbors(v) {
        mark[u as usize] = true;
        // Second hop.
    }
    let first: Vec<VertexId> = g.neighbors(v).to_vec();
    for u in first {
        for &w in g.neighbors(u) {
            mark[w as usize] = true;
        }
    }
    (0..g.num_vertices() as VertexId)
        .filter(|&w| mark[w as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::builder::graph_from_edges;

    #[test]
    fn peeling_removes_low_degree_chains() {
        // Triangle 0-1-2 with a pendant path 2-3-4.
        let g = graph_from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let cfg = QcConfig::new(1.0, 3); // z = 2
        assert_eq!(reduce_vertices(&g, &cfg), vec![0, 1, 2]);
    }

    #[test]
    fn peeling_cascades() {
        // Path 0-1-2-3: z=2 kills endpoints, then everything.
        let g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let cfg = QcConfig::new(1.0, 3);
        assert!(reduce_vertices(&g, &cfg).is_empty());
    }

    #[test]
    fn z_zero_keeps_everything() {
        let g = graph_from_edges(3, [(0, 1)]);
        let cfg = QcConfig::new(0.5, 1); // z = 0
        assert_eq!(reduce_vertices(&g, &cfg), vec![0, 1, 2]);
    }

    #[test]
    fn components_split() {
        let g = graph_from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let comps = components_within(&g, &[0, 1, 2, 3, 4, 5]);
        let mut sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
    }

    #[test]
    fn components_respect_subset() {
        // 0-1-2 path: restricting to {0, 2} disconnects them.
        let g = graph_from_edges(3, [(0, 1), (1, 2)]);
        let comps = components_within(&g, &[0, 2]);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn two_hop_neighborhood() {
        // Star-path: 0-1, 1-2, 2-3, 3-4.
        let g = graph_from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(within_two_hops(&g, 0), vec![0, 1, 2]);
        assert_eq!(within_two_hops(&g, 2), vec![0, 1, 2, 3, 4]);
    }
}
