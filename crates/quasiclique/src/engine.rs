//! The quasi-clique search engine (Algorithm 1 of the paper, with the
//! pruning arsenal of the Quick algorithm \[10\]).
//!
//! The engine traverses the set-enumeration tree of candidate quasi-cliques
//! `(X, candExts(X))` in either BFS (queue) or DFS (stack) order and
//! supports three modes:
//!
//! * **maximal enumeration** — all maximal γ-quasi-cliques,
//! * **coverage** — the set `K` of vertices contained in *some*
//!   quasi-clique (what the structural correlation `ε` needs; maximality is
//!   irrelevant for coverage, which enables the covered-candidate pruning
//!   of §3.2.2),
//! * **top-k** — the `k` best patterns by size (primary) and density
//!   (secondary), with the iteratively-rising size bound of §3.2.3.
//!
//! Pruning rules (all individually switchable for ablations; disabling any
//! rule changes running time, never results):
//!
//! * iterated vertex reduction (degree `< z` peeling) before the search,
//! * per-node degree feasibility bounds on members and candidates
//!   ([`member_feasible`], [`candidate_feasible`]),
//! * extension-size interval bounds (`[t_min, t_max]` from the members'
//!   attainable degrees, [`extension_interval`]) with
//!   interval-narrowed candidate filtering,
//! * critical-vertex forcing: when a member's attainable degree exactly
//!   meets the requirement at the smallest feasible size, all its
//!   candidate neighbors are moved into `X` at once
//!   ([`critical_member`]),
//! * cover-vertex pruning: a candidate `u` adjacent to all of `X` *covers*
//!   the candidates in `N(u)`; subtrees rooted at covered candidates only
//!   contain quasi-cliques extendable by `u` (hence non-maximal) and are
//!   skipped,
//! * lookahead: if `X ∪ cands` is itself a quasi-clique the subtree
//!   collapses to a single emission,
//! * diameter-2 candidate restriction for `γ ≥ 0.5`,
//! * covered-candidate subtree pruning (coverage mode),
//! * size-bound subtree pruning (top-k mode).

use std::collections::VecDeque;

use crate::bounds::{candidate_feasible_in, critical_member, extension_interval, SizeInterval};
use crate::config::{QcConfig, Representation};
use crate::node::{candidate_feasible, member_feasible, SearchNode};
use crate::reduce::reduce_vertices;
use scpm_graph::bitadj::{
    detect_kernel_backend, difference_is_empty_with, gather_intersect_popcount_with, BitAdjacency,
    KernelBackend, VertexBitset,
};
use scpm_graph::csr::{CsrGraph, VertexId};
use scpm_graph::induced::InducedSubgraph;

/// Largest reduced-subgraph vertex count the engine will pack into a
/// [`BitAdjacency`] matrix (the matrix is `n²` bits — 8 MiB at this cap).
/// Beyond it, a [`Representation::Bitset`] run transparently falls back to
/// the slice path for that subgraph; results are identical either way.
pub const BITADJ_MAX_VERTICES: usize = 1 << 13;

/// Traversal order of the candidate tree (§3.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchOrder {
    /// Depth-first (stack): extends sets as far as possible first.
    Dfs,
    /// Breadth-first (queue): visits smaller sets before larger ones.
    Bfs,
}

/// Switches for the individual pruning rules (used by ablation benches;
/// disabling any rule must not change results, only running time).
#[derive(Clone, Copy, Debug)]
pub struct PruneFlags {
    /// Degree-feasibility filtering of members and candidates.
    pub feasibility: bool,
    /// Extension-size interval bounds and interval-narrowed candidate
    /// filtering (Quick's upper/lower size bounds).
    pub bounds: bool,
    /// Critical-vertex forcing (requires `bounds`; inert without it).
    pub critical: bool,
    /// Cover-vertex subtree pruning.
    pub cover_vertex: bool,
    /// Emission of `X ∪ cands` when it already is a quasi-clique.
    pub lookahead: bool,
    /// Subtree pruning once all of `X ∪ cands` is covered (coverage mode).
    pub covered_candidate: bool,
    /// Candidate restriction to the seed's two-hop neighborhood (γ ≥ 0.5).
    pub diameter2: bool,
}

impl Default for PruneFlags {
    fn default() -> Self {
        PruneFlags {
            feasibility: true,
            bounds: true,
            critical: true,
            cover_vertex: true,
            lookahead: true,
            covered_candidate: true,
            diameter2: true,
        }
    }
}

impl PruneFlags {
    /// All rules off — the unpruned set-enumeration baseline.
    pub fn none() -> Self {
        PruneFlags {
            feasibility: false,
            bounds: false,
            critical: false,
            cover_vertex: false,
            lookahead: false,
            covered_candidate: false,
            diameter2: false,
        }
    }
}

/// Counters describing one search run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes popped from the work list.
    pub nodes_visited: u64,
    /// Nodes killed by member-infeasibility.
    pub pruned_feasibility: u64,
    /// Nodes killed by an empty extension-size interval.
    pub pruned_interval: u64,
    /// Critical-vertex events (each moves ≥ 1 candidate into `X`).
    pub forced_critical: u64,
    /// Subtrees skipped by cover-vertex pruning.
    pub pruned_cover: u64,
    /// Successful lookaheads (each collapses a subtree).
    pub pruned_lookahead: u64,
    /// Nodes skipped because every vertex was already covered.
    pub pruned_covered: u64,
    /// Nodes skipped by the top-k size bound.
    pub pruned_size_bound: u64,
    /// Sets emitted (before maximality post-filtering).
    pub emitted: u64,
    /// Point adjacency/membership queries answered in the hot loops. Since
    /// the batched promotion kernels landed this is representation-
    /// *dependent*: the bitset path answers its promotion queries with
    /// row-AND sweeps instead (each elided point probe is counted in
    /// [`SearchStats::probes_elided`]), so its `edge_tests` is what
    /// remains — seed-child membership probes and the short-circuited
    /// maximality checks.
    pub edge_tests: u64,
    /// Modeled hot-loop work: elements touched by slice scans/merges, or
    /// `u64` words touched by bitset kernels. The hardware-independent
    /// cost figure `exp_perf` tracks when comparing
    /// [`Representation::Slice`] against [`Representation::Bitset`].
    pub kernel_ops: u64,
    /// Fused single-pass kernel invocations: gathered exdeg popcounts,
    /// and-not scans, and incremental exdeg updates on the bitset path,
    /// plus the packed containment filter's subset checks (which run —
    /// and count — identically under both representations).
    pub fused_ops: u64,
    /// 8-word blocks skipped thanks to the `VertexBitset` summary
    /// hierarchy (currently the containment filter's summary fast-reject)
    /// — data words the unsummarized kernels of PR 4 would have touched.
    pub blocks_skipped: u64,
    /// Point probes the batched row-AND promotion kernels answered in
    /// bulk instead — exactly the `edge_tests` the slice path performs at
    /// the same sites (child-generation bump extraction, critical-vertex
    /// forcing, the cover partition). Zero on the slice path.
    pub probes_elided: u64,
    /// `u64` words touched by the batched promotion sweeps (also counted
    /// in [`SearchStats::kernel_ops`]; this separates the batching work
    /// from the rest of the kernel model). Zero on the slice path.
    pub batch_ops: u64,
}

impl SearchStats {
    /// This run's counters with the representation-dependent work model
    /// zeroed — everything that must be *identical* between the slice and
    /// bitset paths (tree shape, prune events, emissions).
    pub fn semantic(&self) -> SearchStats {
        SearchStats {
            edge_tests: 0,
            kernel_ops: 0,
            fused_ops: 0,
            blocks_skipped: 0,
            probes_elided: 0,
            batch_ops: 0,
            ..*self
        }
    }
}

/// A quasi-clique reported by the miner, in the ids of the *input* graph.
#[derive(Clone, Debug, PartialEq)]
pub struct QuasiClique {
    /// Sorted member vertices.
    pub vertices: Vec<VertexId>,
    /// `min_v deg_Q(v) / (|Q|−1)` — the paper's `γ` column.
    pub min_degree_ratio: f64,
    /// `|E(Q)| / C(|Q|,2)`.
    pub edge_density: f64,
}

impl QuasiClique {
    /// Number of member vertices.
    pub fn size(&self) -> usize {
        self.vertices.len()
    }
}

/// Ranking used for top-k selection: larger first, then denser (by minimum
/// degree ratio), then lexicographically smaller vertex set for
/// determinism.
pub fn pattern_order(a: &QuasiClique, b: &QuasiClique) -> std::cmp::Ordering {
    b.size()
        .cmp(&a.size())
        .then(
            b.min_degree_ratio
                .partial_cmp(&a.min_degree_ratio)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
        .then_with(|| a.vertices.cmp(&b.vertices))
}

/// What the search should produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MiningMode {
    /// Enumerate every maximal quasi-clique.
    EnumerateMaximal,
    /// Compute the covered vertex set `K`.
    Coverage,
    /// Keep the best `k` patterns.
    TopK(usize),
}

/// The quasi-clique miner.
pub struct Miner<'g> {
    input: &'g CsrGraph,
    cfg: QcConfig,
    /// Traversal order.
    pub order: SearchOrder,
    /// Pruning switches.
    pub prune: PruneFlags,
    /// Hot-loop representation (packed bitsets by default; the slice
    /// baseline is kept for A/B runs — results are identical).
    pub repr: Representation,
}

/// Reusable scratch memory for repeated searches.
///
/// Every search needs three stamp arrays, a coverage bitmap, and a work
/// list, all sized by the (reduced) input graph. A caller running many
/// searches — the SCPM drivers evaluate one induced subgraph per attribute
/// set — can allocate one `EngineScratch` and pass it to
/// [`Miner::run_with`]; buffers are then resized, not reallocated, between
/// runs. [`Miner::run`] creates a throwaway scratch, so single-shot callers
/// never see this type.
#[derive(Debug, Default)]
pub struct EngineScratch {
    cand_mark: Stamp,
    nbr_mark: Stamp,
    cover_mark: Stamp,
    covered: Vec<bool>,
    work: VecDeque<SearchNode>,
    /// Packed adjacency of the current reduced subgraph (bitset path).
    adj: BitAdjacency,
    /// Candidate set of the node being processed, packed (bitset path;
    /// plays the role `cand_mark` has on the slice path).
    cand_bits: VertexBitset,
    /// Nonzero word indices of `cand_bits`, rebuilt by `pack_cands`
    /// (feeds the gathered popcount kernels).
    cand_active: Vec<u32>,
    /// Auxiliary packed set (emitted set in `single_extendable`).
    aux_bits: VertexBitset,
    /// Nonzero word indices of `aux_bits`.
    aux_active: Vec<u32>,
    /// Candidates dropped by one reduction round, packed (incremental
    /// exdeg updates subtract their contribution instead of recomputing).
    removed_bits: VertexBitset,
    /// Nonzero word indices of `removed_bits`.
    removed_active: Vec<u32>,
    /// Member set `X`, packed for the batched promotion kernels (critical
    /// forcing and child-generation `x_indeg` bumps).
    x_bits: VertexBitset,
    /// Nonzero word indices of `x_bits`.
    x_active: Vec<u32>,
    /// Vertex → candidate-index map (valid only for vertices currently in
    /// the candidate set; stale entries elsewhere are never read).
    cand_pos: Vec<u32>,
    /// Vertex → member-index map (valid only for vertices in `x_bits`).
    x_pos: Vec<u32>,
    /// Per-vertex counters for `single_extendable`, zeroed via `touched`.
    counts: Vec<u32>,
    touched: Vec<VertexId>,
}

impl EngineScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets all buffers for a search over an `n`-vertex graph, keeping
    /// their allocations.
    fn reset(&mut self, n: usize) {
        self.cand_mark.reset(n);
        self.nbr_mark.reset(n);
        self.cover_mark.reset(n);
        self.covered.clear();
        self.covered.resize(n, false);
        self.work.clear();
        self.cand_bits.reset(n);
        self.cand_active.clear();
        self.aux_bits.reset(n);
        self.aux_active.clear();
        self.removed_bits.reset(n);
        self.removed_active.clear();
        self.x_bits.reset(n);
        self.x_active.clear();
        self.cand_pos.clear();
        self.cand_pos.resize(n, 0);
        self.x_pos.clear();
        self.x_pos.resize(n, 0);
        self.counts.clear();
        self.counts.resize(n, 0);
        self.touched.clear();
    }
}

/// Outcome of one search run.
#[derive(Clone, Debug)]
pub struct MiningOutcome {
    /// Result sets (empty in coverage mode; see `covered`).
    pub cliques: Vec<QuasiClique>,
    /// Sorted covered vertices (coverage mode only; empty otherwise).
    pub covered: Vec<VertexId>,
    /// Search counters.
    pub stats: SearchStats,
}

impl<'g> Miner<'g> {
    /// Creates a miner over `input` with default order (DFS) and all
    /// prunings enabled.
    pub fn new(input: &'g CsrGraph, cfg: QcConfig) -> Self {
        Miner {
            input,
            cfg,
            order: SearchOrder::Dfs,
            prune: PruneFlags::default(),
            repr: Representation::default(),
        }
    }

    /// Sets the traversal order, builder-style.
    pub fn with_order(mut self, order: SearchOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the pruning switches, builder-style.
    pub fn with_prune(mut self, prune: PruneFlags) -> Self {
        self.prune = prune;
        self
    }

    /// Sets the hot-loop representation, builder-style.
    pub fn with_repr(mut self, repr: Representation) -> Self {
        self.repr = repr;
        self
    }

    /// Enumerates all maximal γ-quasi-cliques.
    pub fn enumerate_maximal(&self) -> MiningOutcome {
        self.run(MiningMode::EnumerateMaximal)
    }

    /// Computes the covered vertex set `K` (vertices in at least one
    /// quasi-clique).
    pub fn coverage(&self) -> MiningOutcome {
        self.run(MiningMode::Coverage)
    }

    /// Returns the `k` best patterns by size then density.
    pub fn top_k(&self, k: usize) -> MiningOutcome {
        self.run(MiningMode::TopK(k))
    }

    /// Runs the configured search with one-shot scratch memory.
    pub fn run(&self, mode: MiningMode) -> MiningOutcome {
        self.run_with(mode, &mut EngineScratch::new())
    }

    /// Runs the configured search reusing the caller's [`EngineScratch`]
    /// (identical output to [`Miner::run`]; only allocation traffic
    /// differs).
    pub fn run_with(&self, mode: MiningMode, scratch: &mut EngineScratch) -> MiningOutcome {
        let mut stats = SearchStats::default();
        if let MiningMode::TopK(0) = mode {
            return MiningOutcome {
                cliques: Vec::new(),
                covered: Vec::new(),
                stats,
            };
        }
        // Global vertex reduction, then re-extraction so the search works
        // on a compact graph whose every vertex could be in a quasi-clique.
        let survivors = reduce_vertices(self.input, &self.cfg);
        if survivors.len() < self.cfg.min_size {
            return MiningOutcome {
                cliques: Vec::new(),
                covered: Vec::new(),
                stats,
            };
        }
        let sub = InducedSubgraph::extract(self.input, &survivors);
        let n = sub.graph.num_vertices();
        scratch.reset(n);
        // Pack the reduced subgraph's adjacency once for the whole search;
        // oversized graphs fall back to the slice kernels (identical
        // results, see `BITADJ_MAX_VERTICES`). The kernel backend is
        // resolved here — once per pack — so the hot loops dispatch on a
        // register-resident enum, never re-probing CPU features.
        let bits_on = self.repr != Representation::Slice && n <= BITADJ_MAX_VERTICES;
        let backend = match self.repr {
            Representation::Simd if bits_on => detect_kernel_backend(),
            _ => KernelBackend::Scalar,
        };
        if bits_on {
            scratch.adj.rebuild(&sub.graph);
            // One pass packs the rows, a second lists each row's nonzero
            // words (reused by every gathered kernel of the search).
            stats.kernel_ops += (2 * n * scratch.adj.stride()) as u64;
        } else {
            scratch.adj.clear();
        }
        let mut ctx = Ctx::new(
            &sub.graph, self.cfg, self.prune, self.order, mode, bits_on, backend, scratch,
        );
        ctx.search(&mut stats);
        let Ctx { emitted, .. } = ctx;

        match mode {
            MiningMode::Coverage => {
                let covered_globals: Vec<VertexId> = scratch
                    .covered
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c)
                    .map(|(i, _)| sub.to_original(i as VertexId))
                    .collect();
                MiningOutcome {
                    cliques: Vec::new(),
                    covered: covered_globals,
                    stats,
                }
            }
            MiningMode::EnumerateMaximal => {
                let maximal = containment_filter(emitted, n, backend, &mut stats);
                let cliques = self.score(&sub, maximal);
                MiningOutcome {
                    cliques,
                    covered: Vec::new(),
                    stats,
                }
            }
            MiningMode::TopK(k) => {
                let maximal = containment_filter(emitted, n, backend, &mut stats);
                let mut cliques = self.score(&sub, maximal);
                cliques.sort_by(pattern_order);
                cliques.truncate(k);
                MiningOutcome {
                    cliques,
                    covered: Vec::new(),
                    stats,
                }
            }
        }
    }

    /// Maps local sets back to input ids and computes their densities.
    fn score(&self, sub: &InducedSubgraph, sets: Vec<Vec<VertexId>>) -> Vec<QuasiClique> {
        let mut out: Vec<QuasiClique> = sets
            .into_iter()
            .map(|locals| {
                let ratio = QcConfig::min_degree_ratio(&sub.graph, &locals);
                let density = QcConfig::edge_density(&sub.graph, &locals);
                QuasiClique {
                    vertices: sub.to_original_set(&locals),
                    min_degree_ratio: ratio,
                    edge_density: density,
                }
            })
            .collect();
        out.sort_by(pattern_order);
        out
    }
}

/// Removes sets contained in another set of the collection, leaving only
/// maximal elements. `n` is the local-id universe of the sets.
///
/// Sets are visited largest-first, so a set can only ever be contained in
/// an already-kept one; each containment test is a fused packed-word
/// subset check ([`difference_is_empty`], blocked with per-block early
/// exit) against the kept sets' bitsets instead of an `O(m)` sorted-slice
/// merge — preceded by the same check over the one-word-per-8-words
/// *summaries*, which disproves containment in `⌈n/512⌉` ops whenever the
/// probe occupies a word the kept set leaves empty. Output order
/// (descending size, then lexicographic) is unchanged from the slice
/// implementation.
fn containment_filter(
    mut sets: Vec<Vec<VertexId>>,
    n: usize,
    backend: KernelBackend,
    stats: &mut SearchStats,
) -> Vec<Vec<VertexId>> {
    sets.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    sets.dedup();
    let mut kept: Vec<Vec<VertexId>> = Vec::new();
    let mut kept_bits: Vec<VertexBitset> = Vec::new();
    let mut probe = VertexBitset::empty(n);
    for set in sets {
        probe.reset(n);
        for &v in &set {
            probe.insert(v);
        }
        let contained = kept_bits.iter().any(|bigger| {
            stats.fused_ops += 1;
            // Summary fast-reject: a nonzero probe word over an empty
            // kept word disproves containment without touching the data
            // words (counted as every 8-word block skipped).
            if !difference_is_empty_with(backend, probe.summary(), bigger.summary()) {
                stats.blocks_skipped += probe.num_blocks() as u64;
                return false;
            }
            probe.is_subset_of_with(backend, bigger)
        });
        if contained {
            continue;
        }
        kept_bits.push(probe.clone());
        kept.push(set);
    }
    kept
}

/// Whether sorted `a ⊆` sorted `b`.
fn is_subset(a: &[VertexId], b: &[VertexId]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    scpm_graph::csr::intersect_count(a, b) == a.len()
}

/// Per-run search context over the reduced local graph. The sizable
/// buffers (stamp arrays, coverage bitmap, work list) live in the borrowed
/// [`EngineScratch`] so repeated runs reuse their allocations.
struct Ctx<'a> {
    g: &'a CsrGraph,
    cfg: QcConfig,
    prune: PruneFlags,
    order: SearchOrder,
    mode: MiningMode,
    /// Whether the packed kernels are active (`scratch.adj` is populated).
    bits_on: bool,
    /// Kernel backend resolved at pack time ([`KernelBackend::Scalar`]
    /// unless the run requested [`Representation::Simd`] on a capable
    /// build + CPU).
    backend: KernelBackend,
    /// Reusable buffers (stamps, coverage bitmap, work list, bitsets).
    s: &'a mut EngineScratch,
    /// Emitted local sets, each sorted (maximal / top-k modes).
    emitted: Vec<Vec<VertexId>>,
    /// Vertices not yet covered (coverage early exit).
    remaining: usize,
    /// Current size bound for top-k (size of the k-th best so far).
    topk_bound: usize,
    /// Scored sizes of emitted top-k candidates, kept sorted descending.
    topk_sizes: Vec<usize>,
}

/// Generation-stamped membership array: `O(1)` set/test/clear.
#[derive(Debug, Default)]
struct Stamp {
    gen: u32,
    marks: Vec<u32>,
}

impl Stamp {
    /// Prepares the stamp for a graph of `n` vertices, keeping capacity.
    fn reset(&mut self, n: usize) {
        self.gen = 0;
        self.marks.clear();
        self.marks.resize(n, 0);
    }

    fn begin(&mut self) {
        self.gen += 1;
    }

    #[inline]
    fn set(&mut self, v: VertexId) {
        self.marks[v as usize] = self.gen;
    }

    #[inline]
    fn get(&self, v: VertexId) -> bool {
        self.marks[v as usize] == self.gen
    }
}

/// Outcome of the per-node reduction pipeline.
enum Reduction {
    /// Subtree is dead; stop processing the node.
    Dead,
    /// Node survived; proceed to emission and child generation.
    Alive,
}

impl<'a> Ctx<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        g: &'a CsrGraph,
        cfg: QcConfig,
        prune: PruneFlags,
        order: SearchOrder,
        mode: MiningMode,
        bits_on: bool,
        backend: KernelBackend,
        scratch: &'a mut EngineScratch,
    ) -> Self {
        let n = g.num_vertices();
        Ctx {
            g,
            cfg,
            prune,
            order,
            mode,
            bits_on,
            backend,
            s: scratch,
            emitted: Vec::new(),
            remaining: n,
            topk_bound: 0,
            topk_sizes: Vec::new(),
        }
    }

    fn search(&mut self, stats: &mut SearchStats) {
        let n = self.g.num_vertices();
        let mut work = std::mem::take(&mut self.s.work);
        work.push_back(SearchNode::root((0..n as VertexId).collect()));
        while let Some(node) = match self.order {
            SearchOrder::Dfs => work.pop_back(),
            SearchOrder::Bfs => work.pop_front(),
        } {
            if matches!(self.mode, MiningMode::Coverage) && self.remaining == 0 {
                break; // everything already covered
            }
            self.process(node, &mut work, stats);
        }
        // Hand the (empty or drained) buffer back for the next run.
        work.clear();
        self.s.work = work;
    }

    /// Feasibility fixpoint, interval bounds, and critical-vertex forcing,
    /// iterated until the node is stable or dead. On `Alive`, `x_exdeg` and
    /// `cands_exdeg` reflect the final node shape.
    fn reduce_node(
        &mut self,
        node: &mut SearchNode,
        x_exdeg: &mut Vec<u32>,
        cands_exdeg: &mut Vec<u32>,
        cands_ready: &mut bool,
        stats: &mut SearchStats,
    ) -> Reduction {
        loop {
            // Feasibility / bounds fixpoint over the candidate set.
            let mut interval = SizeInterval {
                t_min: self.cfg.min_size.saturating_sub(node.x.len()),
                t_max: node.cands.len(),
            };
            if self.prune.feasibility || self.prune.bounds {
                loop {
                    let x_len = node.x.len();
                    let c_len = node.cands.len();
                    if self.prune.bounds {
                        match extension_interval(&self.cfg, &node.x_indeg, x_exdeg, x_len, c_len) {
                            None => {
                                stats.pruned_feasibility += 1;
                                return Reduction::Dead;
                            }
                            Some(iv) => {
                                interval = iv;
                                if iv.is_empty() {
                                    stats.pruned_interval += 1;
                                    return Reduction::Dead;
                                }
                            }
                        }
                    } else {
                        for (&indeg, &exdeg) in node.x_indeg.iter().zip(x_exdeg.iter()) {
                            if !member_feasible(
                                &self.cfg,
                                indeg as usize,
                                exdeg as usize,
                                x_len,
                                c_len,
                            ) {
                                stats.pruned_feasibility += 1;
                                return Reduction::Dead;
                            }
                        }
                    }
                    if !*cands_ready {
                        self.compute_cands_exdegs(node, cands_exdeg, stats);
                        *cands_ready = true;
                    }
                    let mut keep = Vec::with_capacity(c_len);
                    for (j, (&indeg, &exdeg)) in
                        node.cands_indeg.iter().zip(cands_exdeg.iter()).enumerate()
                    {
                        let ok = if self.prune.bounds {
                            candidate_feasible_in(
                                &self.cfg,
                                indeg as usize,
                                exdeg as usize,
                                x_len,
                                interval,
                            )
                        } else {
                            candidate_feasible(
                                &self.cfg,
                                indeg as usize,
                                exdeg as usize,
                                x_len,
                                c_len,
                            )
                        };
                        if ok {
                            keep.push(j);
                        }
                    }
                    if keep.len() == c_len {
                        break;
                    }
                    if self.bits_on {
                        self.filter_candidates_incremental(
                            node,
                            &keep,
                            x_exdeg,
                            cands_exdeg,
                            stats,
                        );
                    } else {
                        node.cands = keep.iter().map(|&j| node.cands[j]).collect();
                        node.cands_indeg = keep.iter().map(|&j| node.cands_indeg[j]).collect();
                        *cands_exdeg = vec![0; node.cands.len()];
                        x_exdeg.iter_mut().for_each(|d| *d = 0);
                        self.pack_cands(node, stats);
                        self.compute_x_exdegs(node, x_exdeg, stats);
                        self.compute_cands_exdegs(node, cands_exdeg, stats);
                    }
                }
            }

            // Critical-vertex forcing: move all candidate neighbors of a
            // critical member into X, then re-reduce.
            if self.prune.critical && self.prune.bounds && !node.cands.is_empty() {
                if let Some(i) =
                    critical_member(&self.cfg, &node.x_indeg, x_exdeg, node.x.len(), interval)
                {
                    self.force_candidates(node, i, stats);
                    stats.forced_critical += 1;
                    *x_exdeg = vec![0; node.x.len()];
                    *cands_exdeg = vec![0; node.cands.len()];
                    self.pack_cands(node, stats);
                    self.compute_x_exdegs(node, x_exdeg, stats);
                    self.compute_cands_exdegs(node, cands_exdeg, stats);
                    *cands_ready = true;
                    continue;
                }
            }
            return Reduction::Alive;
        }
    }

    /// Applies one candidate-filter round on the bitset path without a
    /// full exdeg recomputation: packs the dropped candidates, lists their
    /// nonzero words via the summary hierarchy, and subtracts
    /// `|N(·) ∩ removed|` from every surviving exdeg with a gathered fused
    /// kernel. The resulting values are identical to a recomputation
    /// against the filtered candidate set (exdegs are sums over disjoint
    /// candidate subsets), so the search tree is unchanged — only the
    /// modeled kernel cost drops from `O(stride · (|X| + |C|))` to
    /// `O(active(removed) · (|X| + |C|))`.
    fn filter_candidates_incremental(
        &mut self,
        node: &mut SearchNode,
        keep: &[usize],
        x_exdeg: &mut [u32],
        cands_exdeg: &mut Vec<u32>,
        stats: &mut SearchStats,
    ) {
        // Pack the dropped candidates (tracked insertion; the previous
        // round's words are unpacked in O(previous active) first) and keep
        // `cand_bits` in sync for `seed_child` and later rounds.
        let cleared = self.s.removed_active.len();
        self.s.removed_bits.clear_active(&mut self.s.removed_active);
        let mut ki = 0usize;
        let mut removed = 0usize;
        for (j, &c) in node.cands.iter().enumerate() {
            if ki < keep.len() && keep[ki] == j {
                ki += 1;
            } else {
                self.s
                    .removed_bits
                    .insert_tracked(c, &mut self.s.removed_active);
                self.s.cand_bits.remove(c);
                removed += 1;
            }
        }
        let active: &[u32] = &self.s.removed_active;
        let removed_words = self.s.removed_bits.words();
        let mut gathered = 0usize;
        for (i, &u) in node.x.iter().enumerate() {
            x_exdeg[i] -= self.gathered_degree(u, removed_words, active, &mut gathered);
        }
        node.cands = keep.iter().map(|&j| node.cands[j]).collect();
        node.cands_indeg = keep.iter().map(|&j| node.cands_indeg[j]).collect();
        let surviving: Vec<u32> = keep.iter().map(|&j| cands_exdeg[j]).collect();
        *cands_exdeg = surviving;
        for (j, &v) in node.cands.iter().enumerate() {
            cands_exdeg[j] -= self.gathered_degree(v, removed_words, active, &mut gathered);
        }
        let vertices = node.x.len() + node.cands.len();
        stats.kernel_ops += (cleared + 2 * removed + gathered) as u64;
        stats.fused_ops += vertices as u64;
    }

    /// Moves every candidate neighbor of member `member_idx` into `X`,
    /// maintaining the indeg bookkeeping of members and remaining
    /// candidates.
    ///
    /// Bitset path: fully batched — the forced/rest partition and every
    /// indeg bump come from `row ∧ set` word sweeps over the packed
    /// candidate and member sets instead of per-vertex point probes (the
    /// elided probes and the words swept are counted in
    /// [`SearchStats::probes_elided`] / [`SearchStats::batch_ops`]). The
    /// slice path keeps its stamp-probe loops; both produce identical
    /// bookkeeping, hence an identical search tree.
    fn force_candidates(
        &mut self,
        node: &mut SearchNode,
        member_idx: usize,
        stats: &mut SearchStats,
    ) {
        let v = node.x[member_idx];
        if self.bits_on {
            self.force_candidates_batched(node, v, stats);
            return;
        }
        self.mark_neighbors(v, stats);
        let mut forced: Vec<VertexId> = Vec::new();
        let mut rest: Vec<VertexId> = Vec::with_capacity(node.cands.len());
        let mut rest_indeg: Vec<u32> = Vec::with_capacity(node.cands.len());
        for (j, &c) in node.cands.iter().enumerate() {
            if self.marked_adjacent(v, c, stats) {
                forced.push(c);
            } else {
                rest.push(c);
                rest_indeg.push(node.cands_indeg[j]);
            }
        }
        debug_assert!(!forced.is_empty(), "critical member must have exdeg > 0");
        node.cands = rest;
        node.cands_indeg = rest_indeg;
        for w in forced {
            self.mark_neighbors(w, stats);
            let mut w_indeg = 0u32;
            for (i, &u) in node.x.iter().enumerate() {
                if self.marked_adjacent(w, u, stats) {
                    node.x_indeg[i] += 1;
                    w_indeg += 1;
                }
            }
            node.x.push(w);
            node.x_indeg.push(w_indeg);
            for (j, &c) in node.cands.iter().enumerate() {
                if self.marked_adjacent(w, c, stats) {
                    node.cands_indeg[j] += 1;
                }
            }
        }
    }

    /// The bitset arm of [`Ctx::force_candidates`]: the packed candidate
    /// set (`cand_bits`, in sync with `node.cands`) is partitioned by one
    /// sweep of `row(v)`, and each forced vertex's member/candidate bumps
    /// are one `row ∧ X` and one `row ∧ rest` sweep. Forced vertices join
    /// the packed member set as they are appended, so later forced
    /// vertices count earlier ones exactly as the point-probe loop does.
    fn force_candidates_batched(
        &mut self,
        node: &mut SearchNode,
        v: VertexId,
        stats: &mut SearchStats,
    ) {
        let mut batch = 0u64;
        let mut forced: Vec<VertexId> = Vec::new();
        let mut rest: Vec<VertexId> = Vec::with_capacity(node.cands.len());
        let mut rest_indeg: Vec<u32> = Vec::with_capacity(node.cands.len());
        {
            let row = self.s.adj.row(v);
            let cand_words = self.s.cand_bits.words();
            let mut j = 0usize;
            // Candidates ascend and `cand_active` lists their words in
            // ascending order, so walking set bits word by word visits
            // node.cands[0..] in order — `j` is the candidate index.
            for &wi in &self.s.cand_active {
                let wi = wi as usize;
                let cw = cand_words[wi];
                if cw == 0 {
                    continue;
                }
                batch += 1;
                let m = row[wi] & cw;
                let mut bits = cw;
                while bits != 0 {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let c = (wi * 64 + bit) as VertexId;
                    debug_assert_eq!(node.cands[j], c);
                    if m & (1u64 << bit) != 0 {
                        forced.push(c);
                    } else {
                        rest.push(c);
                        rest_indeg.push(node.cands_indeg[j]);
                    }
                    j += 1;
                }
            }
            debug_assert_eq!(j, node.cands.len());
        }
        stats.probes_elided += node.cands.len() as u64;
        debug_assert!(!forced.is_empty(), "critical member must have exdeg > 0");
        // Forced vertices leave the packed candidate set (keeping it in
        // sync with `rest` for the candidate-side sweeps below).
        for &w in &forced {
            self.s.cand_bits.remove(w);
        }
        // Pack X with its vertex → index map; build the rest-index map.
        let cleared = self.s.x_active.len();
        self.s.x_bits.clear_active(&mut self.s.x_active);
        for (i, &u) in node.x.iter().enumerate() {
            self.s.x_pos[u as usize] = i as u32;
            self.s.x_bits.insert_tracked(u, &mut self.s.x_active);
        }
        for (j, &c) in rest.iter().enumerate() {
            self.s.cand_pos[c as usize] = j as u32;
        }
        stats.kernel_ops += (cleared + forced.len() + node.x.len() + rest.len()) as u64;
        node.cands = rest;
        node.cands_indeg = rest_indeg;
        for w in forced {
            let mut w_indeg = 0u32;
            {
                let row = self.s.adj.row(w);
                let x_words = self.s.x_bits.words();
                for &wi in &self.s.x_active {
                    let wi = wi as usize;
                    if x_words[wi] == 0 {
                        continue;
                    }
                    batch += 1;
                    let mut m = row[wi] & x_words[wi];
                    while m != 0 {
                        let bit = m.trailing_zeros() as usize;
                        m &= m - 1;
                        let u = wi * 64 + bit;
                        node.x_indeg[self.s.x_pos[u] as usize] += 1;
                        w_indeg += 1;
                    }
                }
            }
            stats.probes_elided += node.x.len() as u64;
            self.s.x_pos[w as usize] = node.x.len() as u32;
            node.x.push(w);
            node.x_indeg.push(w_indeg);
            self.s.x_bits.insert_tracked(w, &mut self.s.x_active);
            let row = self.s.adj.row(w);
            let cand_words = self.s.cand_bits.words();
            for &wi in &self.s.cand_active {
                let wi = wi as usize;
                if cand_words[wi] == 0 {
                    continue;
                }
                batch += 1;
                let mut m = row[wi] & cand_words[wi];
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let c = wi * 64 + bit;
                    node.cands_indeg[self.s.cand_pos[c] as usize] += 1;
                }
            }
            stats.probes_elided += node.cands.len() as u64;
        }
        stats.batch_ops += batch;
        stats.kernel_ops += batch;
    }

    /// Prepares point-adjacency queries against `N(v)`: stamp-marks the
    /// neighbor list on the slice path, a no-op on the bitset path (the
    /// packed row is already available). Pair with
    /// [`Ctx::marked_adjacent`].
    #[inline]
    fn mark_neighbors(&mut self, v: VertexId, stats: &mut SearchStats) {
        if !self.bits_on {
            self.s.nbr_mark.begin();
            for &u in self.g.neighbors(v) {
                self.s.nbr_mark.set(u);
            }
            stats.kernel_ops += self.g.degree(v) as u64;
        }
    }

    /// Whether `w ∈ N(v)`, `v` being the vertex last passed to
    /// [`Ctx::mark_neighbors`]. `O(1)` on both paths (stamp lookup vs
    /// packed-row probe).
    #[inline]
    fn marked_adjacent(&self, v: VertexId, w: VertexId, stats: &mut SearchStats) -> bool {
        stats.edge_tests += 1;
        stats.kernel_ops += 1;
        if self.bits_on {
            self.s.adj.has_edge(v, w)
        } else {
            self.s.nbr_mark.get(w)
        }
    }

    fn process(
        &mut self,
        mut node: SearchNode,
        work: &mut VecDeque<SearchNode>,
        stats: &mut SearchStats,
    ) {
        stats.nodes_visited += 1;

        // Covered-candidate pruning (coverage mode).
        if matches!(self.mode, MiningMode::Coverage) && self.prune.covered_candidate {
            let all_covered = node
                .x
                .iter()
                .chain(node.cands.iter())
                .all(|&v| self.s.covered[v as usize]);
            if all_covered {
                stats.pruned_covered += 1;
                return;
            }
        }

        // Top-k size bound (§3.2.3: prune when the subtree cannot produce a
        // pattern larger than the current k-th best).
        if let MiningMode::TopK(k) = self.mode {
            if self.topk_sizes.len() >= k && node.upper_size() < self.topk_bound {
                stats.pruned_size_bound += 1;
                return;
            }
        }

        // Degree bookkeeping: exdeg of members and candidates w.r.t. the
        // candidate set. The candidate side is computed lazily — a node
        // the member-side bounds kill never pays for it.
        let mut x_exdeg = vec![0u32; node.x.len()];
        let mut cands_exdeg = vec![0u32; node.cands.len()];
        self.pack_cands(&node, stats);
        self.compute_x_exdegs(&node, &mut x_exdeg, stats);
        let mut cands_ready = false;

        if let Reduction::Dead = self.reduce_node(
            &mut node,
            &mut x_exdeg,
            &mut cands_exdeg,
            &mut cands_ready,
            stats,
        ) {
            return;
        }
        if !cands_ready {
            self.compute_cands_exdegs(&node, &mut cands_exdeg, stats);
        }

        // Lookahead: emit X ∪ cands when it is a quasi-clique.
        if self.prune.lookahead && node.upper_size() >= self.cfg.min_size {
            let req = self.cfg.required_degree(node.upper_size()) as u32;
            let x_ok = (0..node.x.len()).all(|i| node.x_indeg[i] + x_exdeg[i] >= req);
            let c_ok = (0..node.cands.len()).all(|j| node.cands_indeg[j] + cands_exdeg[j] >= req);
            if x_ok && c_ok {
                let mut set = node.x.clone();
                set.extend_from_slice(&node.cands);
                self.emit(set, stats);
                stats.pruned_lookahead += 1;
                return;
            }
        }

        // Emit X itself when it is a quasi-clique.
        if node.x.len() >= self.cfg.min_size {
            let req = self.cfg.required_degree(node.x.len()) as u32;
            if node.x_indeg.iter().all(|&d| d >= req) {
                self.emit(node.x.clone(), stats);
            }
        }

        // Cover-vertex pruning: a candidate u with X ⊆ N(u) covers
        // CV = N(u) ∩ cands. Any quasi-clique whose candidate part lies
        // inside CV extends by u (every member is a neighbor of u, and
        // ⌈γ·s⌉ ≤ ⌈γ·(s−1)⌉ + 1 for γ ≤ 1), hence is not maximal —
        // subtrees rooted at covered candidates are skipped. Covered
        // candidates are ordered last so they remain reachable from the
        // subtrees of uncovered pivots.
        let x_len = node.x.len();
        let mut skip_from = node.cands.len();
        let mut order: Vec<u32> = (0..node.cands.len() as u32).collect();
        if self.prune.cover_vertex && !node.cands.is_empty() {
            let best = (0..node.cands.len())
                .filter(|&j| node.cands_indeg[j] as usize == x_len && cands_exdeg[j] > 0)
                .max_by_key(|&j| (cands_exdeg[j], std::cmp::Reverse(node.cands[j])));
            if let Some(jbest) = best {
                let cv = node.cands[jbest];
                if self.bits_on {
                    // Batched stable partition: one sweep of row(cv) over
                    // the packed candidate words. `order` is still the
                    // identity permutation here and candidates ascend, so
                    // walking set bits word by word visits order[0..] in
                    // order — no point probes.
                    let row = self.s.adj.row(cv);
                    let cand_words = self.s.cand_bits.words();
                    let mut uncovered: Vec<u32> = Vec::with_capacity(order.len());
                    let mut covered: Vec<u32> = Vec::new();
                    let mut j = 0u32;
                    let mut batch = 0u64;
                    for &wi in &self.s.cand_active {
                        let wi = wi as usize;
                        let cw = cand_words[wi];
                        if cw == 0 {
                            continue;
                        }
                        batch += 1;
                        let m = row[wi] & cw;
                        let mut bits = cw;
                        while bits != 0 {
                            let bit = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            if m & (1u64 << bit) != 0 {
                                covered.push(j);
                            } else {
                                uncovered.push(j);
                            }
                            j += 1;
                        }
                    }
                    debug_assert_eq!(j as usize, order.len());
                    stats.probes_elided += order.len() as u64;
                    stats.batch_ops += batch;
                    stats.kernel_ops += batch;
                    skip_from = uncovered.len();
                    stats.pruned_cover += covered.len() as u64;
                    order = uncovered;
                    order.extend(covered);
                } else {
                    self.s.cover_mark.begin();
                    for &u in self.g.neighbors(cv) {
                        self.s.cover_mark.set(u);
                    }
                    stats.kernel_ops += (self.g.degree(cv) + order.len()) as u64;
                    stats.edge_tests += order.len() as u64;
                    // Stable partition: uncovered pivots first, covered
                    // last.
                    let (uncovered, covered): (Vec<u32>, Vec<u32>) =
                        order.iter().partition(|&&j| {
                            let c = node.cands[j as usize];
                            !self.s.cover_mark.get(c)
                        });
                    skip_from = uncovered.len();
                    stats.pruned_cover += covered.len() as u64;
                    order = uncovered;
                    order.extend(covered);
                }
            }
        }

        // Expand children: pivot on each unskipped candidate in processing
        // order; the child's candidates are the ones later in the order.
        let is_seed = node.x.is_empty();
        let use_diameter = self.prune.diameter2 && self.cfg.gamma >= 0.5;
        // Rank of each candidate *vertex* in the processing order, for the
        // seed fast path's membership test (`u32::MAX` = not a candidate).
        let mut children: Vec<SearchNode> = Vec::with_capacity(skip_from);
        let rank: Option<Vec<u32>> = if is_seed && use_diameter {
            let mut r = vec![u32::MAX; self.g.num_vertices()];
            for (pos, &j) in order.iter().enumerate() {
                r[node.cands[j as usize] as usize] = pos as u32;
            }
            Some(r)
        } else {
            None
        };
        // Batched bitset child generation packs X once per node (with its
        // vertex → index map) and builds the candidate index map; pivots
        // are then *removed* from the packed candidate set one by one, so
        // at pivot `pos` the packed set is exactly the candidates at
        // later positions — the child's candidate set — and one `row(v)`
        // sweep yields the member bumps, the candidate bumps, and the
        // ascending candidate order for free (no sort, no point probes).
        if self.bits_on && rank.is_none() && skip_from > 0 {
            let cleared = self.s.x_active.len();
            self.s.x_bits.clear_active(&mut self.s.x_active);
            for (i, &u) in node.x.iter().enumerate() {
                self.s.x_pos[u as usize] = i as u32;
                self.s.x_bits.insert_tracked(u, &mut self.s.x_active);
            }
            for (j, &c) in node.cands.iter().enumerate() {
                self.s.cand_pos[c as usize] = j as u32;
            }
            stats.kernel_ops += (cleared + node.x.len() + node.cands.len()) as u64;
        }
        for (pos, &jidx) in order.iter().enumerate().take(skip_from) {
            let idx = jidx as usize;
            let v = node.cands[idx];
            if let Some(rank) = &rank {
                // Fast path for root children: a quasi-clique with γ ≥ 0.5
                // has diameter ≤ 2, so the seed's candidates come from its
                // two-hop neighborhood — no scan over the full candidate
                // list (which is the entire graph at the root).
                children.push(self.seed_child(v, pos as u32, rank, stats));
                continue;
            }
            if self.bits_on {
                children.push(self.pivot_child_batched(&node, v, order.len() - pos - 1, stats));
                continue;
            }
            self.mark_neighbors(v, stats);

            let mut child_x = node.x.clone();
            child_x.push(v);
            let mut child_x_indeg = node.x_indeg.clone();
            for (i, &u) in node.x.iter().enumerate() {
                if self.marked_adjacent(v, u, stats) {
                    child_x_indeg[i] += 1;
                }
            }
            child_x_indeg.push(node.cands_indeg[idx]);

            let remaining = order.len() - pos - 1;
            let mut child_pairs: Vec<(VertexId, u32)> = Vec::with_capacity(remaining);
            for &jnext in order.iter().skip(pos + 1) {
                let j = jnext as usize;
                let w = node.cands[j];
                let bump = self.marked_adjacent(v, w, stats) as u32;
                child_pairs.push((w, node.cands_indeg[j] + bump));
            }
            // Keep candidate lists ascending: each node re-derives its own
            // cover ordering, and sorted lists keep emission cheap.
            child_pairs.sort_unstable_by_key(|&(w, _)| w);
            children.push(SearchNode {
                x: child_x,
                x_indeg: child_x_indeg,
                cands: child_pairs.iter().map(|&(w, _)| w).collect(),
                cands_indeg: child_pairs.iter().map(|&(_, d)| d).collect(),
            });
        }
        match self.order {
            // Stack: push in reverse so the first pivot is processed first,
            // matching the canonical DFS order {1}, {1,2}, {1,2,3}, ...
            SearchOrder::Dfs => {
                for child in children.into_iter().rev() {
                    work.push_back(child);
                }
            }
            SearchOrder::Bfs => {
                for child in children {
                    work.push_back(child);
                }
            }
        }
    }

    /// Builds the root child `({v}, two-hop(v) ∩ later-ranked candidates)`.
    ///
    /// Relies on the candidate set still being packed/stamped from the
    /// last `pack_cands` call (`cand_bits` on the bitset path,
    /// `cand_mark` on the slice path); `rank` maps vertex ids to their
    /// position in the root's processing order (`u32::MAX` = not a
    /// candidate).
    fn seed_child(
        &mut self,
        v: VertexId,
        pos: u32,
        rank: &[u32],
        stats: &mut SearchStats,
    ) -> SearchNode {
        // Collect the two-hop reach of v (excluding v itself) — a
        // neighbor-list traversal with a visited stamp on both paths.
        self.s.nbr_mark.begin();
        self.s.nbr_mark.set(v);
        let mut reach: Vec<VertexId> = Vec::new();
        for &u in self.g.neighbors(v) {
            if !self.s.nbr_mark.get(u) {
                self.s.nbr_mark.set(u);
                reach.push(u);
            }
        }
        stats.kernel_ops += self.g.degree(v) as u64;
        let first_hop = reach.len();
        for i in 0..first_hop {
            let u = reach[i];
            for &w in self.g.neighbors(u) {
                if !self.s.nbr_mark.get(w) {
                    self.s.nbr_mark.set(w);
                    reach.push(w);
                }
            }
            stats.kernel_ops += self.g.degree(u) as u64;
        }
        stats.kernel_ops += reach.len() as u64;
        let bits_on = self.bits_on;
        let cand_bits = &self.s.cand_bits;
        let cand_mark = &self.s.cand_mark;
        let mut child_cands: Vec<VertexId> = reach
            .into_iter()
            .filter(|&w| {
                let is_cand = if bits_on {
                    cand_bits.contains(w)
                } else {
                    cand_mark.get(w)
                };
                is_cand && rank[w as usize] != u32::MAX && rank[w as usize] > pos
            })
            .collect();
        child_cands.sort_unstable();
        let child_indeg: Vec<u32> = if self.bits_on {
            stats.edge_tests += child_cands.len() as u64;
            stats.kernel_ops += child_cands.len() as u64;
            child_cands
                .iter()
                .map(|&w| self.s.adj.has_edge(v, w) as u32)
                .collect()
        } else {
            let nv = self.g.neighbors(v);
            stats.edge_tests += child_cands.len() as u64;
            stats.kernel_ops +=
                child_cands.len() as u64 * (1 + usize::BITS - nv.len().leading_zeros()) as u64;
            child_cands
                .iter()
                .map(|w| nv.binary_search(w).is_ok() as u32)
                .collect()
        };
        SearchNode {
            x: vec![v],
            x_indeg: vec![0],
            cands: child_cands,
            cands_indeg: child_indeg,
        }
    }

    /// Builds the child node of pivot `v` on the bitset path, fully
    /// batched: the caller has packed `X` (with `x_pos`) and built
    /// `cand_pos`, and removes pivots from the packed candidate set in
    /// processing order — so after `self.s.cand_bits.remove(v)` the packed
    /// set is exactly the child's candidate set (`later` vertices). One
    /// `row(v) ∧ X` sweep bumps the member indegs; one `row(v) ∧ cands`
    /// sweep emits the child's candidates *already ascending* with their
    /// indeg bumps read off the AND word — replacing `|X| + later` point
    /// probes (counted in [`SearchStats::probes_elided`]) and the
    /// per-child sort with `batch_ops` word touches.
    fn pivot_child_batched(
        &mut self,
        node: &SearchNode,
        v: VertexId,
        later: usize,
        stats: &mut SearchStats,
    ) -> SearchNode {
        let mut batch = 0u64;
        self.s.cand_bits.remove(v);
        let mut child_x = node.x.clone();
        let mut child_x_indeg = node.x_indeg.clone();
        {
            let row = self.s.adj.row(v);
            let x_words = self.s.x_bits.words();
            for &wi in &self.s.x_active {
                let wi = wi as usize;
                if x_words[wi] == 0 {
                    continue;
                }
                batch += 1;
                let mut m = row[wi] & x_words[wi];
                while m != 0 {
                    let bit = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let u = wi * 64 + bit;
                    child_x_indeg[self.s.x_pos[u] as usize] += 1;
                }
            }
        }
        stats.probes_elided += node.x.len() as u64;
        child_x.push(v);
        child_x_indeg.push(node.cands_indeg[self.s.cand_pos[v as usize] as usize]);
        let mut child_cands: Vec<VertexId> = Vec::with_capacity(later);
        let mut child_indeg: Vec<u32> = Vec::with_capacity(later);
        let row = self.s.adj.row(v);
        let cand_words = self.s.cand_bits.words();
        for &wi in &self.s.cand_active {
            let wi = wi as usize;
            let cw = cand_words[wi];
            if cw == 0 {
                continue;
            }
            batch += 1;
            let m = row[wi] & cw;
            let mut bits = cw;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let w = (wi * 64 + bit) as VertexId;
                let j = self.s.cand_pos[w as usize] as usize;
                child_cands.push(w);
                child_indeg.push(node.cands_indeg[j] + ((m >> bit) & 1) as u32);
            }
        }
        debug_assert_eq!(child_cands.len(), later);
        stats.probes_elided += later as u64;
        stats.batch_ops += batch;
        stats.kernel_ops += batch;
        SearchNode {
            x: child_x,
            x_indeg: child_x_indeg,
            cands: child_cands,
            cands_indeg: child_indeg,
        }
    }

    /// Gathered fused popcount `|row(v) ∩ set_words|` over the sparser of
    /// the row's precomputed active-word list and `active` (the packed
    /// set's) — the word-level galloping idiom every bitset exdeg kernel
    /// shares. Adds the touched word count to `gathered`.
    #[inline]
    fn gathered_degree(
        &self,
        v: VertexId,
        set_words: &[u64],
        active: &[u32],
        gathered: &mut usize,
    ) -> u32 {
        let ra = self.s.adj.row_active(v);
        let list = if ra.len() <= active.len() { ra } else { active };
        *gathered += list.len();
        gather_intersect_popcount_with(self.backend, self.s.adj.row(v), set_words, list) as u32
    }

    /// Packs/stamps the candidate set of `node` for the per-vertex exdeg
    /// kernels ([`Ctx::compute_x_exdegs`] / [`Ctx::compute_cands_exdegs`])
    /// and leaves it behind for [`Ctx::seed_child`].
    ///
    /// Bitset path: tracked insertion into `cand_bits` — each word is
    /// recorded in `cand_active` the first time it becomes nonzero, so the
    /// active-word list is a free by-product and the previous node's words
    /// are unpacked in `O(previous active)`, not `O(stride)`. Slice path:
    /// generation-stamp the candidates.
    fn pack_cands(&mut self, node: &SearchNode, stats: &mut SearchStats) {
        if self.bits_on {
            let cleared = self.s.cand_active.len();
            self.s.cand_bits.clear_active(&mut self.s.cand_active);
            for &v in &node.cands {
                self.s.cand_bits.insert_tracked(v, &mut self.s.cand_active);
            }
            stats.kernel_ops += (cleared + node.cands.len()) as u64;
        } else {
            self.s.cand_mark.begin();
            for &v in &node.cands {
                self.s.cand_mark.set(v);
            }
            stats.kernel_ops += node.cands.len() as u64;
        }
    }

    /// `exdeg = |N(·) ∩ cands|` for every member of `X`, against the
    /// candidate set packed by [`Ctx::pack_cands`].
    ///
    /// Bitset path: one gathered fused AND+popcount per member over the
    /// sparser of the member's row-active list and the candidate set's
    /// active list — sparse sides cost their nonzero words, never the
    /// full `⌈n/64⌉` stride. Slice path: neighbor-list scans against the
    /// candidate stamps.
    fn compute_x_exdegs(
        &mut self,
        node: &SearchNode,
        x_exdeg: &mut [u32],
        stats: &mut SearchStats,
    ) {
        if self.bits_on {
            let active: &[u32] = &self.s.cand_active;
            let cand_words = self.s.cand_bits.words();
            let mut gathered = 0usize;
            for (i, &u) in node.x.iter().enumerate() {
                x_exdeg[i] = self.gathered_degree(u, cand_words, active, &mut gathered);
            }
            stats.kernel_ops += gathered as u64;
            stats.fused_ops += node.x.len() as u64;
        } else {
            let mut ops = 0usize;
            for (i, &u) in node.x.iter().enumerate() {
                let mut d = 0;
                for &w in self.g.neighbors(u) {
                    d += self.s.cand_mark.get(w) as u32;
                }
                x_exdeg[i] = d;
                ops += self.g.degree(u);
            }
            stats.kernel_ops += ops as u64;
        }
    }

    /// `exdeg = |N(·) ∩ cands|` for every candidate, against the
    /// candidate set packed by [`Ctx::pack_cands`]. Computed *lazily*: a
    /// node killed by the member-side feasibility/interval check (which
    /// needs only `x_exdeg` and the candidate count) never pays for it.
    fn compute_cands_exdegs(
        &mut self,
        node: &SearchNode,
        cands_exdeg: &mut [u32],
        stats: &mut SearchStats,
    ) {
        if self.bits_on {
            let active: &[u32] = &self.s.cand_active;
            let cand_words = self.s.cand_bits.words();
            let mut gathered = 0usize;
            for (j, &v) in node.cands.iter().enumerate() {
                cands_exdeg[j] = self.gathered_degree(v, cand_words, active, &mut gathered);
            }
            stats.kernel_ops += gathered as u64;
            stats.fused_ops += node.cands.len() as u64;
        } else {
            let mut ops = 0usize;
            for (j, &v) in node.cands.iter().enumerate() {
                let mut d = 0;
                for &w in self.g.neighbors(v) {
                    d += self.s.cand_mark.get(w) as u32;
                }
                cands_exdeg[j] = d;
                ops += self.g.degree(v);
            }
            stats.kernel_ops += ops as u64;
        }
    }

    /// Whether `{u, w}` is an edge of the reduced graph: `O(1)` row probe
    /// on the bitset path, binary search on the slice path.
    #[inline]
    fn edge(&self, u: VertexId, w: VertexId, stats: &mut SearchStats) -> bool {
        stats.edge_tests += 1;
        if self.bits_on {
            stats.kernel_ops += 1;
            self.s.adj.has_edge(u, w)
        } else {
            let d = self.g.degree(u).min(self.g.degree(w));
            stats.kernel_ops += 1 + (usize::BITS - d.leading_zeros()) as u64;
            self.g.has_edge(u, w)
        }
    }

    /// Handles a found quasi-clique (degree property + min size hold).
    /// `set` may arrive unsorted (X grows in pivot order, and critical
    /// forcing appends out of order); it is sorted here.
    fn emit(&mut self, mut set: Vec<VertexId>, stats: &mut SearchStats) {
        set.sort_unstable();
        debug_assert!(self.cfg.is_quasi_clique(self.g, &set));
        stats.emitted += 1;
        match self.mode {
            MiningMode::Coverage => {
                for &v in &set {
                    if !self.s.covered[v as usize] {
                        self.s.covered[v as usize] = true;
                        self.remaining -= 1;
                    }
                }
            }
            MiningMode::EnumerateMaximal => {
                if !self.single_extendable(&set, stats) {
                    self.emitted.push(set);
                }
            }
            MiningMode::TopK(k) => {
                if !self.single_extendable(&set, stats) {
                    // Drop buffered subsets of the new set; skip the new set
                    // if a buffered superset exists.
                    if self.emitted.iter().any(|kept| is_subset(&set, kept)) {
                        return;
                    }
                    self.emitted.retain(|kept| !is_subset(kept, &set));
                    self.emitted.push(set);
                    self.topk_sizes = self.emitted.iter().map(Vec::len).collect();
                    self.topk_sizes.sort_unstable_by(|a, b| b.cmp(a));
                    if self.topk_sizes.len() >= k {
                        self.topk_bound = self.topk_sizes[k - 1];
                    }
                }
            }
        }
    }

    /// Whether a single vertex outside `set` extends it to a larger
    /// quasi-clique (then `set` is certainly not maximal). `set` sorted.
    ///
    /// Set-neighbor counts of the outside vertices accumulate in a scratch
    /// counter array (zeroed through the `touched` list afterwards); on
    /// the bitset path the outside neighbors come from `row(u) ∧ ¬set`
    /// word scans, on the slice path from neighbor-list scans against a
    /// stamp.
    fn single_extendable(&mut self, set: &[VertexId], stats: &mut SearchStats) -> bool {
        let req = self.cfg.required_degree(set.len() + 1);
        self.s.touched.clear();
        if self.bits_on {
            let cleared = self.s.aux_active.len();
            self.s.aux_bits.clear_active(&mut self.s.aux_active);
            for &u in set {
                self.s.aux_bits.insert_tracked(u, &mut self.s.aux_active);
            }
            stats.kernel_ops += (cleared + set.len()) as u64;
            stats.fused_ops += set.len() as u64;
            for &u in set {
                let row = self.s.adj.row(u);
                let set_words = self.s.aux_bits.words();
                // Fused and-not scan over the row's *active* words only
                // (zero row words contribute nothing to `row ∧ ¬set`):
                // counts outside neighbors without materializing the
                // difference, paying `min(deg, stride)` not `stride`.
                let row_active = self.s.adj.row_active(u);
                stats.kernel_ops += row_active.len() as u64;
                for &wi in row_active {
                    let wi = wi as usize;
                    let mut m = row[wi] & !set_words[wi];
                    while m != 0 {
                        let w = (wi * 64 + m.trailing_zeros() as usize) as VertexId;
                        m &= m - 1;
                        if self.s.counts[w as usize] == 0 {
                            self.s.touched.push(w);
                        }
                        self.s.counts[w as usize] += 1;
                    }
                }
            }
        } else {
            self.s.nbr_mark.begin();
            for &u in set {
                self.s.nbr_mark.set(u);
            }
            stats.kernel_ops += set.len() as u64;
            for &u in set {
                stats.kernel_ops += self.g.degree(u) as u64;
                for &w in self.g.neighbors(u) {
                    if !self.s.nbr_mark.get(w) {
                        if self.s.counts[w as usize] == 0 {
                            self.s.touched.push(w);
                        }
                        self.s.counts[w as usize] += 1;
                    }
                }
            }
        }
        // Outside vertices adjacent to enough members to survive at size
        // |set| + 1.
        let candidates: Vec<VertexId> = self
            .s
            .touched
            .iter()
            .copied()
            .filter(|&w| self.s.counts[w as usize] as usize >= req)
            .collect();
        // Zero the counters through the touched list before any early
        // return, keeping the scratch clean for the next emission.
        for &w in &self.s.touched {
            self.s.counts[w as usize] = 0;
        }
        if candidates.is_empty() {
            return false;
        }
        // Members whose degree would fall below the requirement unless the
        // new vertex is their neighbor.
        let deficient: Vec<VertexId> = if self.bits_on {
            let active: &[u32] = &self.s.aux_active;
            let set_words = self.s.aux_bits.words();
            let mut gathered = 0usize;
            let deficient: Vec<VertexId> = set
                .iter()
                .copied()
                .filter(|&u| {
                    (self.gathered_degree(u, set_words, active, &mut gathered) as usize) < req
                })
                .collect();
            stats.kernel_ops += gathered as u64;
            stats.fused_ops += set.len() as u64;
            deficient
        } else {
            set.iter()
                .copied()
                .filter(|&u| {
                    stats.kernel_ops += (self.g.degree(u).min(set.len())) as u64;
                    self.g.degree_within(u, set) < req
                })
                .collect()
        };
        candidates
            .iter()
            .any(|&w| deficient.iter().all(|&u| self.edge(u, w, stats)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::builder::graph_from_edges;
    use scpm_graph::figure1::{figure1, paper_vertex};

    fn sets(outcome: &MiningOutcome) -> Vec<Vec<VertexId>> {
        let mut s: Vec<Vec<VertexId>> =
            outcome.cliques.iter().map(|q| q.vertices.clone()).collect();
        s.sort();
        s
    }

    fn paper_set(labels: &[u32]) -> Vec<VertexId> {
        let mut v: Vec<VertexId> = labels.iter().map(|&l| paper_vertex(l)).collect();
        v.sort_unstable();
        v
    }

    /// Every 2^7 combination of the pruning switches.
    fn all_flag_combinations() -> Vec<PruneFlags> {
        let mut out = Vec::new();
        for bits in 0u32..128 {
            out.push(PruneFlags {
                feasibility: bits & 1 != 0,
                bounds: bits & 2 != 0,
                critical: bits & 4 != 0,
                cover_vertex: bits & 8 != 0,
                lookahead: bits & 16 != 0,
                covered_candidate: bits & 32 != 0,
                diameter2: bits & 64 != 0,
            });
        }
        out
    }

    #[test]
    fn figure1_maximal_quasicliques_match_table1() {
        let g = figure1();
        let miner = Miner::new(g.graph(), QcConfig::new(0.6, 4));
        let out = miner.enumerate_maximal();
        let expect: Vec<Vec<VertexId>> = {
            let mut e = vec![
                paper_set(&[3, 4, 5, 6]),
                paper_set(&[6, 7, 8, 9, 10, 11]),
                paper_set(&[3, 4, 6, 7]),
                paper_set(&[3, 5, 6, 7]),
                paper_set(&[3, 6, 7, 8]),
            ];
            e.sort();
            e
        };
        assert_eq!(sets(&out), expect);
    }

    #[test]
    fn figure1_coverage_is_vertices_3_to_11() {
        let g = figure1();
        let miner = Miner::new(g.graph(), QcConfig::new(0.6, 4));
        let out = miner.coverage();
        let expect: Vec<VertexId> = (3..=11).map(paper_vertex).collect();
        assert_eq!(out.covered, expect);
    }

    #[test]
    fn figure1_bfs_equals_dfs() {
        let g = figure1();
        let cfg = QcConfig::new(0.6, 4);
        let dfs = Miner::new(g.graph(), cfg).with_order(SearchOrder::Dfs);
        let bfs = Miner::new(g.graph(), cfg).with_order(SearchOrder::Bfs);
        assert_eq!(
            sets(&dfs.enumerate_maximal()),
            sets(&bfs.enumerate_maximal())
        );
        assert_eq!(dfs.coverage().covered, bfs.coverage().covered);
    }

    #[test]
    fn figure1_top_k() {
        let g = figure1();
        let miner = Miner::new(g.graph(), QcConfig::new(0.6, 4));
        let top2 = miner.top_k(2);
        assert_eq!(top2.cliques.len(), 2);
        // Largest first: the size-6 pattern, then the clique (ratio 1.0
        // beats the 0.67 sets).
        assert_eq!(top2.cliques[0].vertices, paper_set(&[6, 7, 8, 9, 10, 11]));
        assert_eq!(top2.cliques[1].vertices, paper_set(&[3, 4, 5, 6]));
        assert!((top2.cliques[1].min_degree_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clique_with_gamma_one() {
        let g = graph_from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (2, 4)]);
        // Two triangles sharing vertex 2.
        let miner = Miner::new(&g, QcConfig::new(1.0, 3));
        let out = miner.enumerate_maximal();
        assert_eq!(sets(&out), vec![vec![0, 1, 2], vec![2, 3, 4]]);
        let cov = miner.coverage();
        assert_eq!(cov.covered, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn no_quasicliques_in_sparse_graph() {
        let g = graph_from_edges(6, [(0, 1), (2, 3), (4, 5)]);
        let miner = Miner::new(&g, QcConfig::new(0.5, 3));
        assert!(miner.enumerate_maximal().cliques.is_empty());
        assert!(miner.coverage().covered.is_empty());
        assert!(miner.top_k(3).cliques.is_empty());
    }

    #[test]
    fn all_prune_flag_combinations_agree_on_figure1() {
        let g = figure1();
        let cfg = QcConfig::new(0.6, 4);
        let baseline_sets = sets(
            &Miner::new(g.graph(), cfg)
                .with_prune(PruneFlags::none())
                .enumerate_maximal(),
        );
        let baseline_cov = Miner::new(g.graph(), cfg)
            .with_prune(PruneFlags::none())
            .coverage()
            .covered;
        for flags in all_flag_combinations() {
            let miner = Miner::new(g.graph(), cfg).with_prune(flags);
            assert_eq!(sets(&miner.enumerate_maximal()), baseline_sets, "{flags:?}");
            assert_eq!(miner.coverage().covered, baseline_cov, "{flags:?}");
        }
    }

    #[test]
    fn cover_vertex_prunes_on_dense_graph() {
        // Complete graph K6: the cover vertex covers every other candidate.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let g = graph_from_edges(6, edges);
        let miner = Miner::new(&g, QcConfig::new(1.0, 3));
        let out = miner.enumerate_maximal();
        assert_eq!(sets(&out), vec![(0..6).collect::<Vec<_>>()]);
        // The lookahead collapses the root; cover pruning may or may not
        // fire before that. Run without lookahead to see cover pruning.
        let flags = PruneFlags {
            lookahead: false,
            ..PruneFlags::default()
        };
        let out = Miner::new(&g, QcConfig::new(1.0, 3))
            .with_prune(flags)
            .run(MiningMode::EnumerateMaximal);
        assert_eq!(sets(&out), vec![(0..6).collect::<Vec<_>>()]);
        assert!(out.stats.pruned_cover > 0, "stats: {:?}", out.stats);
    }

    #[test]
    fn critical_forcing_fires_on_sparse_quasiclique() {
        // A 5-cycle with a chord is a 0.5-quasi-clique of size 5; vertices
        // have exactly the required degree, making members critical early.
        let g = graph_from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let cfg = QcConfig::new(0.5, 5);
        let out = Miner::new(&g, cfg).enumerate_maximal();
        assert_eq!(sets(&out), vec![vec![0, 1, 2, 3, 4]]);
        let no_lookahead = PruneFlags {
            lookahead: false,
            ..PruneFlags::default()
        };
        let out2 = Miner::new(&g, cfg)
            .with_prune(no_lookahead)
            .enumerate_maximal();
        assert_eq!(sets(&out2), vec![vec![0, 1, 2, 3, 4]]);
        assert!(out2.stats.forced_critical > 0, "stats: {:?}", out2.stats);
    }

    #[test]
    fn bounds_kill_conflicting_nodes() {
        // Two triangles joined by one edge: no 0.9-quasi-clique of size 4.
        let g = graph_from_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (3, 5), (4, 5)]);
        let out = Miner::new(&g, QcConfig::new(0.9, 4)).enumerate_maximal();
        assert!(out.cliques.is_empty());
    }

    #[test]
    fn prune_flags_do_not_change_results() {
        let g = figure1();
        let cfg = QcConfig::new(0.6, 4);
        let baseline = sets(&Miner::new(g.graph(), cfg).enumerate_maximal());
        for (f, l, d) in [
            (false, true, true),
            (true, false, true),
            (true, true, false),
            (false, false, false),
        ] {
            let flags = PruneFlags {
                feasibility: f,
                lookahead: l,
                diameter2: d,
                ..PruneFlags::default()
            };
            let out = Miner::new(g.graph(), cfg)
                .with_prune(flags)
                .enumerate_maximal();
            assert_eq!(sets(&out), baseline, "flags {flags:?}");
        }
    }

    #[test]
    fn top_k_zero_is_empty() {
        let g = figure1();
        let out = Miner::new(g.graph(), QcConfig::new(0.6, 4)).top_k(0);
        assert!(out.cliques.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let g = figure1();
        let out = Miner::new(g.graph(), QcConfig::new(0.6, 4)).enumerate_maximal();
        assert!(out.stats.nodes_visited > 0);
        assert!(out.stats.emitted >= 5);
        assert!(out.stats.edge_tests > 0);
        assert!(out.stats.kernel_ops > 0);
    }

    /// Pre-bitset reference implementation of the containment filter:
    /// pairwise sorted-slice subset checks.
    fn containment_filter_naive(mut sets: Vec<Vec<VertexId>>) -> Vec<Vec<VertexId>> {
        sets.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        sets.dedup();
        let mut kept: Vec<Vec<VertexId>> = Vec::new();
        'outer: for set in sets {
            for bigger in &kept {
                if is_subset(&set, bigger) {
                    continue 'outer;
                }
            }
            kept.push(set);
        }
        kept
    }

    #[test]
    fn containment_filter_keeps_same_sets_as_naive_on_figure1() {
        // Feed the filter everything the unpruned figure-1 search emits
        // (raw emissions, before maximality filtering) and check the
        // bitset subset path keeps the identical list in identical order.
        let g = figure1();
        let miner = Miner::new(g.graph(), QcConfig::new(0.6, 4)).with_prune(PruneFlags::none());
        let raw = miner.enumerate_maximal();
        // Reconstruct an over-complete input: the five maximal sets plus
        // every emitted-size prefix pair and duplicates.
        let mut input: Vec<Vec<VertexId>> =
            raw.cliques.iter().map(|q| q.vertices.clone()).collect();
        let extra: Vec<Vec<VertexId>> = input
            .iter()
            .flat_map(|s| [s.clone(), s[..s.len() - 1].to_vec(), s[1..].to_vec()])
            .collect();
        input.extend(extra);
        let n = g.num_vertices();
        let mut stats = SearchStats::default();
        assert_eq!(
            containment_filter(input.clone(), n, KernelBackend::Scalar, &mut stats),
            containment_filter_naive(input)
        );
    }

    #[test]
    fn containment_filter_synthetic_cases() {
        let cases: Vec<Vec<Vec<VertexId>>> = vec![
            vec![],
            vec![vec![0, 1, 2], vec![0, 1], vec![1, 2], vec![3]],
            vec![vec![0, 1], vec![0, 1], vec![2, 3], vec![0, 2]],
            vec![vec![64, 65, 66], vec![64, 66], vec![65]],
        ];
        for sets in cases {
            let n = 70;
            let mut stats = SearchStats::default();
            assert_eq!(
                containment_filter(sets.clone(), n, KernelBackend::Scalar, &mut stats),
                containment_filter_naive(sets.clone()),
                "{sets:?}"
            );
        }
    }

    #[test]
    fn slice_and_bitset_representations_agree_on_figure1() {
        let g = figure1();
        let cfg = QcConfig::new(0.6, 4);
        for flags in [PruneFlags::default(), PruneFlags::none()] {
            let slice = Miner::new(g.graph(), cfg)
                .with_prune(flags)
                .with_repr(Representation::Slice);
            let bits = Miner::new(g.graph(), cfg)
                .with_prune(flags)
                .with_repr(Representation::Bitset);
            let (s, b) = (slice.enumerate_maximal(), bits.enumerate_maximal());
            assert_eq!(sets(&s), sets(&b));
            // The search trees are identical: every semantic counter (tree
            // shape, prune events, emissions) must match exactly; only the
            // modeled kernel costs may differ.
            assert_eq!(s.stats.semantic(), b.stats.semantic());
            assert_eq!(slice.coverage().covered, bits.coverage().covered);
            assert_eq!(sets(&slice.top_k(2)), sets(&bits.top_k(2)));
        }
    }

    #[test]
    fn bitset_falls_back_on_oversized_graphs() {
        // A graph wider than the pack cap must still mine correctly (the
        // engine silently uses the slice kernels).
        let mut edges = Vec::new();
        let base = (BITADJ_MAX_VERTICES + 3) as u32;
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((base - 4 + u, base - 4 + v));
            }
        }
        let g = graph_from_edges(base as usize, edges);
        let out = Miner::new(&g, QcConfig::new(1.0, 4)).enumerate_maximal();
        assert_eq!(out.cliques.len(), 1);
        assert_eq!(out.cliques[0].vertices.len(), 4);
    }
}
