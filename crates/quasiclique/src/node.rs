//! Search-tree nodes and the degree-feasibility bounds that prune them.
//!
//! A node is a pair `(X, cands)` from the set-enumeration tree of
//! Algorithm 1 in the paper: `X` is the current vertex set and `cands` the
//! candidate extensions, all with ids greater than `max(X)` so that every
//! subset is visited exactly once.

use crate::config::QcConfig;
use scpm_graph::csr::VertexId;

/// A candidate quasi-clique `(X, candExts(X))` with per-vertex bookkeeping.
#[derive(Clone, Debug)]
pub struct SearchNode {
    /// Members, ascending.
    pub x: Vec<VertexId>,
    /// `indeg[i] = |N(x[i]) ∩ X|`.
    pub x_indeg: Vec<u32>,
    /// Candidate extensions, ascending, all greater than `max(x)`.
    pub cands: Vec<VertexId>,
    /// `indeg[j] = |N(cands[j]) ∩ X|`.
    pub cands_indeg: Vec<u32>,
}

impl SearchNode {
    /// The root node: empty `X`, all (surviving) vertices as candidates.
    pub fn root(vertices: Vec<VertexId>) -> Self {
        let k = vertices.len();
        SearchNode {
            x: Vec::new(),
            x_indeg: Vec::new(),
            cands: vertices,
            cands_indeg: vec![0; k],
        }
    }

    /// Total size of the subtree's largest possible set.
    #[inline]
    pub fn upper_size(&self) -> usize {
        self.x.len() + self.cands.len()
    }
}

/// Feasibility of a *member* `u ∈ X`: is there a size
/// `s ∈ [max(min_size, |X|), |X| + |cands|]` at which `u` could satisfy the
/// degree requirement, assuming every one of its candidate neighbors joins?
///
/// `indeg` is `|N(u) ∩ X|`, `exdeg` is `|N(u) ∩ cands|`. The margin
/// function `f(t) = indeg + min(exdeg, t) − ⌈γ(|X|+t−1)⌉` (with
/// `t = s − |X|`) is non-decreasing while `t ≤ exdeg` (each step adds one
/// potential neighbor and the requirement grows by at most one since
/// `γ ≤ 1`) and non-increasing afterwards, so its maximum over the valid
/// range is attained at `t = clamp(exdeg, t_min, t_max)`.
pub fn member_feasible(
    cfg: &QcConfig,
    indeg: usize,
    exdeg: usize,
    x_len: usize,
    cands_len: usize,
) -> bool {
    let t_min = cfg.min_size.saturating_sub(x_len);
    let t_max = cands_len;
    if t_min > t_max {
        return false;
    }
    let t = exdeg.clamp(t_min, t_max);
    indeg + exdeg.min(t) >= cfg.required_degree(x_len + t)
}

/// Feasibility of a *candidate* `v ∈ cands`: is there a size
/// `s ∈ [max(min_size, |X|+1), |X| + |cands|]` at which `v` could satisfy
/// the requirement? Besides `v` itself, only `t − 1` other candidates can
/// join, so the margin is `f(t) = indeg + min(exdeg, t−1) − ⌈γ(|X|+t−1)⌉`,
/// maximized at `t = clamp(exdeg + 1, t_min, t_max)` by the same
/// piecewise-monotonicity argument.
pub fn candidate_feasible(
    cfg: &QcConfig,
    indeg: usize,
    exdeg: usize,
    x_len: usize,
    cands_len: usize,
) -> bool {
    let t_min = cfg.min_size.saturating_sub(x_len).max(1);
    let t_max = cands_len;
    if t_min > t_max {
        return false;
    }
    let t = (exdeg + 1).clamp(t_min, t_max);
    indeg + exdeg.min(t - 1) >= cfg.required_degree(x_len + t)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: scan every size in the valid range.
    fn member_feasible_naive(
        cfg: &QcConfig,
        indeg: usize,
        exdeg: usize,
        x_len: usize,
        cands_len: usize,
    ) -> bool {
        let lo = cfg.min_size.max(x_len);
        let hi = x_len + cands_len;
        (lo..=hi).any(|s| {
            let t = s - x_len;
            indeg + exdeg.min(t) >= cfg.required_degree(s)
        })
    }

    fn candidate_feasible_naive(
        cfg: &QcConfig,
        indeg: usize,
        exdeg: usize,
        x_len: usize,
        cands_len: usize,
    ) -> bool {
        let lo = cfg.min_size.max(x_len + 1);
        let hi = x_len + cands_len;
        (lo..=hi).any(|s| {
            let t = s - x_len;
            indeg + exdeg.min(t - 1) >= cfg.required_degree(s)
        })
    }

    #[test]
    fn closed_form_matches_naive_scan() {
        for &gamma in &[0.3, 0.5, 0.6, 0.75, 1.0] {
            for min_size in 1..=6 {
                let cfg = QcConfig::new(gamma, min_size);
                for x_len in 0..6 {
                    for cands_len in 0..8 {
                        for indeg in 0..=x_len {
                            for exdeg in 0..=cands_len {
                                assert_eq!(
                                    member_feasible(&cfg, indeg, exdeg, x_len, cands_len),
                                    member_feasible_naive(&cfg, indeg, exdeg, x_len, cands_len),
                                    "member γ={gamma} ms={min_size} x={x_len} c={cands_len} in={indeg} ex={exdeg}"
                                );
                                assert_eq!(
                                    candidate_feasible(&cfg, indeg, exdeg, x_len, cands_len),
                                    candidate_feasible_naive(&cfg, indeg, exdeg, x_len, cands_len),
                                    "cand γ={gamma} ms={min_size} x={x_len} c={cands_len} in={indeg} ex={exdeg}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn member_infeasible_when_range_empty() {
        let cfg = QcConfig::new(0.5, 10);
        // |X| + |cands| = 5 < min_size.
        assert!(!member_feasible(&cfg, 3, 2, 3, 2));
        assert!(!candidate_feasible(&cfg, 3, 2, 3, 2));
    }

    #[test]
    fn isolated_candidate_infeasible_for_clique() {
        let cfg = QcConfig::new(1.0, 3);
        // indeg 0, exdeg 0 in a node with |X| = 2: would need degree 2.
        assert!(!candidate_feasible(&cfg, 0, 0, 2, 3));
        // A candidate adjacent to both members and one other candidate is
        // feasible for size 3 (needs degree 2).
        assert!(candidate_feasible(&cfg, 2, 1, 2, 3));
    }

    #[test]
    fn root_node_shape() {
        let root = SearchNode::root(vec![0, 1, 2]);
        assert_eq!(root.upper_size(), 3);
        assert!(root.x.is_empty());
        assert_eq!(root.cands_indeg, vec![0, 0, 0]);
    }
}
