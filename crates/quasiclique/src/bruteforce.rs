//! Exponential reference implementations used to validate the engine on
//! small graphs (n ≤ ~18).

use crate::config::QcConfig;
use crate::engine::{pattern_order, QuasiClique};
use scpm_graph::csr::{CsrGraph, VertexId};

/// All vertex sets satisfying the degree property with `|Q| ≥ min_size`
/// (not only maximal ones).
pub fn all_quasi_cliques(g: &CsrGraph, cfg: &QcConfig) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    assert!(
        n <= 22,
        "brute force is exponential; {n} vertices is too many"
    );
    let mut out = Vec::new();
    for mask in 1u32..(1u32 << n) {
        if (mask.count_ones() as usize) < cfg.min_size {
            continue;
        }
        let set: Vec<VertexId> = (0..n as u32).filter(|&v| mask >> v & 1 == 1).collect();
        if cfg.is_quasi_clique(g, &set) {
            out.push(set);
        }
    }
    out
}

/// All *maximal* quasi-cliques: sets from [`all_quasi_cliques`] with no
/// proper superset in the collection.
pub fn maximal_quasi_cliques(g: &CsrGraph, cfg: &QcConfig) -> Vec<Vec<VertexId>> {
    let all = all_quasi_cliques(g, cfg);
    let mut maximal: Vec<Vec<VertexId>> = Vec::new();
    'outer: for set in &all {
        for other in &all {
            if other.len() > set.len() && is_subset(set, other) {
                continue 'outer;
            }
        }
        maximal.push(set.clone());
    }
    maximal.sort();
    maximal
}

/// The covered vertex set `K`: union of all quasi-cliques.
pub fn coverage(g: &CsrGraph, cfg: &QcConfig) -> Vec<VertexId> {
    let mut covered = vec![false; g.num_vertices()];
    for set in all_quasi_cliques(g, cfg) {
        for v in set {
            covered[v as usize] = true;
        }
    }
    (0..g.num_vertices() as VertexId)
        .filter(|&v| covered[v as usize])
        .collect()
}

/// The top-`k` maximal quasi-cliques by size then minimum-degree ratio.
pub fn top_k(g: &CsrGraph, cfg: &QcConfig, k: usize) -> Vec<QuasiClique> {
    let mut scored: Vec<QuasiClique> = maximal_quasi_cliques(g, cfg)
        .into_iter()
        .map(|set| {
            let ratio = QcConfig::min_degree_ratio(g, &set);
            let density = QcConfig::edge_density(g, &set);
            QuasiClique {
                vertices: set,
                min_degree_ratio: ratio,
                edge_density: density,
            }
        })
        .collect();
    scored.sort_by(pattern_order);
    scored.truncate(k);
    scored
}

fn is_subset(a: &[VertexId], b: &[VertexId]) -> bool {
    a.iter().all(|x| b.binary_search(x).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::builder::graph_from_edges;

    #[test]
    fn triangle_only() {
        let g = graph_from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let cfg = QcConfig::new(1.0, 3);
        assert_eq!(maximal_quasi_cliques(&g, &cfg), vec![vec![0, 1, 2]]);
        assert_eq!(coverage(&g, &cfg), vec![0, 1, 2]);
    }

    #[test]
    fn all_contains_non_maximal() {
        // K4: every triple and the full set satisfy γ=0.6.
        let g = graph_from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let cfg = QcConfig::new(0.6, 3);
        let all = all_quasi_cliques(&g, &cfg);
        assert_eq!(all.len(), 5); // 4 triples + the 4-set
        let maximal = maximal_quasi_cliques(&g, &cfg);
        assert_eq!(maximal, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn top_k_ordering() {
        // Triangle {0,1,2} and 4-cycle {3,4,5,6}.
        let g = graph_from_edges(7, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (5, 6), (6, 3)]);
        let cfg = QcConfig::new(0.6, 3);
        let top = top_k(&g, &cfg, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].vertices, vec![3, 4, 5, 6]); // larger first
        assert_eq!(top[1].vertices, vec![0, 1, 2]);
    }
}
