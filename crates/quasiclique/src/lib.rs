//! Quasi-clique mining substrate for structural correlation pattern mining.
//!
//! Implements the dense-subgraph machinery of the paper: given a minimum
//! density `γ ∈ (0, 1]` and a minimum size, a **γ-quasi-clique** is a
//! maximal vertex set `Q` in which every vertex is adjacent to at least
//! `⌈γ·(|Q|−1)⌉` of the others (Definition 1). The [`Miner`] explores the
//! set-enumeration tree of candidate quasi-cliques (Algorithm 1) in BFS or
//! DFS order with Quick-style pruning [Liu & Wong, PKDD 2008] and supports
//! three output modes: full maximal enumeration, vertex coverage (the `K`
//! set behind the structural correlation `ε`), and top-k patterns.
//!
//! ```
//! use scpm_quasiclique::{Miner, QcConfig};
//! use scpm_graph::builder::graph_from_edges;
//!
//! // Two triangles sharing a vertex.
//! let g = graph_from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)]);
//! let miner = Miner::new(&g, QcConfig::new(1.0, 3));
//! let out = miner.enumerate_maximal();
//! assert_eq!(out.cliques.len(), 2);
//! ```

#![deny(missing_docs)]

pub mod bounds;
pub mod bruteforce;
pub mod config;
pub mod engine;
pub mod node;
pub mod reduce;

pub use bounds::SizeInterval;
pub use config::{ceil_gamma, QcConfig, Representation};
pub use engine::{
    pattern_order, EngineScratch, Miner, MiningMode, MiningOutcome, PruneFlags, QuasiClique,
    SearchOrder, SearchStats, BITADJ_MAX_VERTICES,
};
pub use reduce::reduce_vertices;
