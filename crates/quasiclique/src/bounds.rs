//! Size-interval bounds and the critical-vertex technique of the Quick
//! algorithm (Liu & Wong, PKDD 2008 — reference \[10\] of the paper).
//!
//! For a search node `(X, cands)` the techniques here narrow the interval
//! of *extension sizes* `t = |Q| − |X|` that any qualifying quasi-clique
//! `Q` with `X ⊆ Q ⊆ X ∪ cands` can have:
//!
//! * **Upper bound** `t_max`: a member `v ∈ X` ends with degree at most
//!   `indeg(v) + exdeg(v)`, so `|Q| ≤ ⌊(indeg(v) + exdeg(v))/γ⌋ + 1` for
//!   every member; the minimum over members (and `|cands|`) caps `t`.
//! * **Lower bound** `t_min`: a member `v` with `indeg(v)` below the
//!   requirement needs at least `L_v` of its candidate neighbors added,
//!   where `L_v` is the smallest `t` with
//!   `indeg(v) + min(exdeg(v), t) ≥ ⌈γ·(|X| + t − 1)⌉`; the maximum over
//!   members (and `min_size − |X|`) floors `t`.
//!
//! An empty interval kills the subtree. A non-empty interval strengthens
//! candidate feasibility (the candidate must work for some `t` *inside*
//! the interval, not merely for some `t` in `[1, |cands|]`).
//!
//! **Critical vertices**: if a member `v` satisfies
//! `indeg(v) + exdeg(v) = ⌈γ·(|X| + t_min − 1)⌉` with `t_min ≥ 1`, then
//! every qualifying quasi-clique in the subtree contains *all* candidate
//! neighbors of `v` — the degree requirement at the smallest possible size
//! already consumes every potential neighbor. Those candidates can be
//! moved into `X` wholesale, collapsing up to `2^|N(v) ∩ cands|` subtree
//! branches.

use crate::config::QcConfig;

/// The inclusive interval `[t_min, t_max]` of extension counts that
/// qualifying quasi-cliques of a node may still have.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeInterval {
    /// Minimum number of candidates that must be added.
    pub t_min: usize,
    /// Maximum number of candidates that can be added.
    pub t_max: usize,
}

impl SizeInterval {
    /// Whether the interval contains no feasible extension count.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.t_min > self.t_max
    }
}

/// The smallest `t ∈ [0, cands_len]` at which member `v` (with the given
/// `indeg`/`exdeg`) can satisfy the degree requirement, or `None` if no
/// such `t` exists.
///
/// The margin `f(t) = indeg + min(exdeg, t) − ⌈γ·(x_len + t − 1)⌉` is
/// non-decreasing for `t ≤ exdeg` (each step adds a potential neighbor
/// while the requirement grows by at most one, `γ ≤ 1`) and non-increasing
/// beyond, so the feasible set is a contiguous interval and a linear scan
/// from below finds its left end; the scan can stop at `t = exdeg` if the
/// margin is still negative there only when it stays negative for all
/// larger `t`, which holds because `f` only decreases past that point.
pub fn member_min_extension(
    cfg: &QcConfig,
    indeg: usize,
    exdeg: usize,
    x_len: usize,
    cands_len: usize,
) -> Option<usize> {
    let cap = exdeg.min(cands_len);
    for t in 0..=cap {
        if indeg + t >= cfg.required_degree(x_len + t) {
            return Some(t);
        }
    }
    // Past t = exdeg the attainable degree is frozen at indeg + exdeg while
    // the requirement keeps growing, so the margin is maximal at t = cap;
    // if it failed there it fails everywhere beyond as well -- except that
    // required_degree is a ceiling and can stay flat. Scan the flat region.
    for t in (cap + 1)..=cands_len {
        let req = cfg.required_degree(x_len + t);
        if indeg + exdeg.min(t) >= req {
            return Some(t);
        }
        if req > indeg + exdeg {
            // Requirement has outgrown the attainable degree for good.
            return None;
        }
    }
    None
}

/// The largest quasi-clique size member `v` can be part of:
/// `⌊(indeg + exdeg)/γ⌋ + 1` (its final degree cannot exceed
/// `indeg + exdeg`, and a size-`s` quasi-clique requires
/// `⌈γ·(s−1)⌉ ≤ deg`).
#[inline]
pub fn member_max_size(cfg: &QcConfig, indeg: usize, exdeg: usize) -> usize {
    // ceil(gamma * (s-1)) <= d  ⟺  gamma * (s-1) <= d  ⟺  s <= d/gamma + 1.
    ((indeg + exdeg) as f64 / cfg.gamma + 1.0 + 1e-9).floor() as usize
}

/// Computes the extension-size interval of a node from its members'
/// `indeg`/`exdeg` bookkeeping. Returns `None` when some member can never
/// satisfy the requirement (subtree dead).
pub fn extension_interval(
    cfg: &QcConfig,
    x_indeg: &[u32],
    x_exdeg: &[u32],
    x_len: usize,
    cands_len: usize,
) -> Option<SizeInterval> {
    debug_assert_eq!(x_indeg.len(), x_len);
    let mut t_min = cfg.min_size.saturating_sub(x_len);
    let mut t_max = cands_len;
    for i in 0..x_len {
        let indeg = x_indeg[i] as usize;
        let exdeg = x_exdeg[i] as usize;
        let lv = member_min_extension(cfg, indeg, exdeg, x_len, cands_len)?;
        t_min = t_min.max(lv);
        let max_size = member_max_size(cfg, indeg, exdeg);
        t_max = t_max.min(max_size.saturating_sub(x_len));
    }
    Some(SizeInterval { t_min, t_max })
}

/// Whether candidate `v` (with the given `indeg`/`exdeg`) can satisfy the
/// degree requirement for some extension count `t` inside `interval`
/// (`t ≥ 1` since `v` itself is one of the added vertices).
///
/// Mirrors [`crate::node::candidate_feasible`] but over the narrowed
/// interval: the margin `f(t) = indeg + min(exdeg, t−1) − ⌈γ(x_len+t−1)⌉`
/// is maximized at `t = clamp(exdeg + 1, lo, hi)` by piecewise
/// monotonicity.
pub fn candidate_feasible_in(
    cfg: &QcConfig,
    indeg: usize,
    exdeg: usize,
    x_len: usize,
    interval: SizeInterval,
) -> bool {
    let lo = interval.t_min.max(1);
    let hi = interval.t_max;
    if lo > hi {
        return false;
    }
    let t = (exdeg + 1).clamp(lo, hi);
    indeg + exdeg.min(t - 1) >= cfg.required_degree(x_len + t)
}

/// Index of the first critical member of `X`, if any.
///
/// A member `v` is critical when `indeg(v) + exdeg(v)` equals the degree
/// requirement at the smallest feasible size `|X| + t_min` with
/// `t_min ≥ 1`: every qualifying quasi-clique `Q` in the subtree has
/// `|Q| ≥ |X| + t_min`, so
/// `deg_Q(v) ≥ ⌈γ(|X| + t_min − 1)⌉ = indeg(v) + exdeg(v) ≥ deg_Q(v)`,
/// forcing every candidate neighbor of `v` into `Q`. The engine moves
/// those candidates into `X` wholesale and iterates to a fixpoint.
pub fn critical_member(
    cfg: &QcConfig,
    x_indeg: &[u32],
    x_exdeg: &[u32],
    x_len: usize,
    interval: SizeInterval,
) -> Option<usize> {
    if interval.t_min == 0 || interval.is_empty() {
        return None;
    }
    let req = cfg.required_degree(x_len + interval.t_min);
    (0..x_len).find(|&i| {
        let reach = x_indeg[i] as usize + x_exdeg[i] as usize;
        x_exdeg[i] > 0 && reach == req
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(gamma: f64, min_size: usize) -> QcConfig {
        QcConfig::new(gamma, min_size)
    }

    /// Reference scan for `member_min_extension`.
    fn min_ext_naive(
        c: &QcConfig,
        indeg: usize,
        exdeg: usize,
        x_len: usize,
        cands_len: usize,
    ) -> Option<usize> {
        (0..=cands_len).find(|&t| indeg + exdeg.min(t) >= c.required_degree(x_len + t))
    }

    #[test]
    fn member_min_extension_matches_naive_scan() {
        for &gamma in &[0.3, 0.5, 0.6, 0.8, 1.0] {
            for min_size in 1..=5 {
                let c = cfg(gamma, min_size);
                for x_len in 0..6 {
                    for cands_len in 0..8 {
                        for indeg in 0..=x_len {
                            for exdeg in 0..=cands_len {
                                assert_eq!(
                                    member_min_extension(&c, indeg, exdeg, x_len, cands_len),
                                    min_ext_naive(&c, indeg, exdeg, x_len, cands_len),
                                    "γ={gamma} ms={min_size} x={x_len} c={cands_len} \
                                     in={indeg} ex={exdeg}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn member_max_size_is_tight() {
        let c = cfg(0.5, 3);
        // d = 3, γ = 0.5: s ≤ 3/0.5 + 1 = 7.
        assert_eq!(member_max_size(&c, 2, 1), 7);
        // The bound is achievable: ceil(0.5 * 6) = 3 = d.
        assert_eq!(c.required_degree(7), 3);
        assert!(c.required_degree(8) > 3);
        // γ = 1 (clique): d = 3 ⇒ s ≤ 4.
        assert_eq!(member_max_size(&cfg(1.0, 2), 3, 0), 4);
    }

    #[test]
    fn interval_empty_when_member_starved() {
        let c = cfg(1.0, 3);
        // A member with indeg 0, exdeg 0 in |X| = 2 can never reach degree 2.
        assert_eq!(extension_interval(&c, &[0, 2], &[0, 0], 2, 5), None);
    }

    #[test]
    fn interval_narrows_both_ends() {
        let c = cfg(0.5, 4);
        // |X| = 2, members with indeg 1, exdeg 2 each.
        // t_min from min_size: 4 − 2 = 2. Member L_v: t=0: 1 ≥ ceil(0.5·1)=1 ✓
        // so member lower bound is 0; t_min = 2.
        // t_max: member max size = ⌊3/0.5⌋+1 = 7 ⇒ t ≤ 5, and cands_len = 4.
        let iv = extension_interval(&c, &[1, 1], &[2, 2], 2, 4).unwrap();
        assert_eq!(iv, SizeInterval { t_min: 2, t_max: 4 });
        assert!(!iv.is_empty());
    }

    #[test]
    fn interval_detects_conflict() {
        let c = cfg(1.0, 5);
        // |X| = 2 members fully connected (indeg 1) with exdeg 1: max size
        // = ⌊2/1⌋ + 1 = 3 ⇒ t_max = 1, but min_size needs t ≥ 3.
        let iv = extension_interval(&c, &[1, 1], &[1, 1], 2, 6).unwrap();
        assert!(iv.is_empty());
    }

    #[test]
    fn candidate_feasible_in_respects_interval() {
        let c = cfg(0.5, 3);
        let wide = SizeInterval { t_min: 1, t_max: 5 };
        // Candidate with indeg 0, exdeg 2, |X| = 1: at t = 3 it has
        // 0 + min(2, 2) = 2 ≥ ceil(0.5·3) = 2 ✓.
        assert!(candidate_feasible_in(&c, 0, 2, 1, wide));
        // Narrowed to t ∈ [5, 5]: 0 + 2 < ceil(0.5·5) = 3 ✗.
        let narrow = SizeInterval { t_min: 5, t_max: 5 };
        assert!(!candidate_feasible_in(&c, 0, 2, 1, narrow));
        // Empty interval.
        assert!(!candidate_feasible_in(
            &c,
            5,
            5,
            1,
            SizeInterval { t_min: 3, t_max: 2 }
        ));
    }

    #[test]
    fn critical_member_detection() {
        let c = cfg(1.0, 4);
        // |X| = 2, t_min = 2 ⇒ requirement at size 4 is 3. A member with
        // indeg 1 + exdeg 2 = 3 is critical.
        let iv = SizeInterval { t_min: 2, t_max: 3 };
        assert_eq!(critical_member(&c, &[1, 2], &[2, 2], 2, iv), Some(0));
        // With indeg 2 + exdeg 2 = 4 > 3 nobody is critical.
        assert_eq!(critical_member(&c, &[2, 2], &[2, 2], 2, iv), None);
        // t_min = 0 disables the technique.
        assert_eq!(
            critical_member(&c, &[1, 2], &[2, 2], 2, SizeInterval { t_min: 0, t_max: 3 }),
            None
        );
        // Zero exdeg cannot force anything.
        let iv2 = SizeInterval { t_min: 1, t_max: 2 };
        // req at |X|+1 = 3 is 2; indeg 2 + exdeg 0 = 2 but exdeg = 0.
        assert_eq!(critical_member(&c, &[2, 2], &[0, 0], 2, iv2), None);
    }
}
