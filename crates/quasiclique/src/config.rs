//! Quasi-clique parameters and the degree-threshold arithmetic shared by
//! every component (Definition 1 of the paper).

use scpm_graph::csr::{CsrGraph, VertexId};

/// How the search engine represents adjacency and candidate sets in its
/// hot loops (`PruneFlags`-style switch for A/B runs; results are
/// identical either way, only the kernel costs differ).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Representation {
    /// Sorted-slice scans, stamp-array marking and binary searches over
    /// the CSR neighbor lists — the pre-bitset baseline, kept for
    /// ablations and as the fallback for graphs too large to pack.
    Slice,
    /// Packed `u64`-word bitsets: a dense
    /// [`BitAdjacency`](scpm_graph::bitadj::BitAdjacency) matrix per
    /// reduced subgraph (`O(1)` edge tests),
    /// [`VertexBitset`](scpm_graph::bitadj::VertexBitset) popcount kernels
    /// for external degrees, and batched row-AND promotion sweeps in the
    /// child-generation / forcing hot paths — all through the blocked
    /// scalar kernels. Falls back to [`Representation::Slice`] when the
    /// reduced subgraph exceeds
    /// [`BITADJ_MAX_VERTICES`](crate::engine::BITADJ_MAX_VERTICES).
    #[default]
    Bitset,
    /// The bitset path with the explicit-SIMD kernel backend resolved at
    /// pack time
    /// ([`detect_kernel_backend`](scpm_graph::bitadj::detect_kernel_backend):
    /// AVX2 → NEON → scalar). Identical search tree and counters to
    /// [`Representation::Bitset`] — only the instructions per word differ.
    /// On builds without the `simd` feature this is exactly the scalar
    /// bitset path.
    Simd,
}

/// Parameters of the quasi-clique definition: a vertex set `Q` is a
/// `γ`-quasi-clique iff `|Q| ≥ min_size` and every `v ∈ Q` has
/// `deg_Q(v) ≥ ⌈γ·(|Q|−1)⌉`.
///
/// ```
/// use scpm_quasiclique::QcConfig;
/// use scpm_graph::builder::graph_from_edges;
///
/// // A 4-cycle: every vertex has degree 2 = ⌈0.6·3⌉, so the cycle is a
/// // 0.6-quasi-clique of size 4 — but not a 0.7-quasi-clique.
/// let g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
/// let cfg = QcConfig::new(0.6, 4);
/// assert_eq!(cfg.min_required_degree(), 2);
/// assert!(cfg.is_quasi_clique(&g, &[0, 1, 2, 3]));
/// assert!(!QcConfig::new(0.7, 4).is_quasi_clique(&g, &[0, 1, 2, 3]));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QcConfig {
    /// Minimum density `γ ∈ (0, 1]`.
    pub gamma: f64,
    /// Minimum quasi-clique size.
    pub min_size: usize,
}

/// `⌈γ·k⌉` computed robustly against floating-point drift (e.g.
/// `0.6 * 5 = 3.0000000000000004` must yield 3, not 4).
pub fn ceil_gamma(gamma: f64, k: usize) -> usize {
    let x = gamma * k as f64;
    ((x - 1e-9).ceil().max(0.0)) as usize
}

impl QcConfig {
    /// Creates a validated configuration.
    ///
    /// # Panics
    /// Panics if `gamma ∉ (0, 1]` or `min_size == 0`.
    pub fn new(gamma: f64, min_size: usize) -> Self {
        assert!(
            gamma > 0.0 && gamma <= 1.0,
            "gamma must be in (0, 1], got {gamma}"
        );
        assert!(min_size >= 1, "min_size must be at least 1");
        QcConfig { gamma, min_size }
    }

    /// The degree every member of a size-`size` quasi-clique must reach:
    /// `⌈γ·(size−1)⌉`.
    #[inline]
    pub fn required_degree(&self, size: usize) -> usize {
        if size == 0 {
            return 0;
        }
        ceil_gamma(self.gamma, size - 1)
    }

    /// The global lower bound `z = ⌈γ·(min_size−1)⌉`: a vertex with fewer
    /// neighbors can never belong to any qualifying quasi-clique, because
    /// `required_degree` is non-decreasing in the size.
    #[inline]
    pub fn min_required_degree(&self) -> usize {
        self.required_degree(self.min_size)
    }

    /// Whether the sorted vertex set `set` satisfies the quasi-clique
    /// predicate in `g` (degree property plus minimum size; maximality is
    /// a separate, global property).
    pub fn is_quasi_clique(&self, g: &CsrGraph, set: &[VertexId]) -> bool {
        if set.len() < self.min_size {
            return false;
        }
        let req = self.required_degree(set.len());
        set.iter().all(|&v| g.degree_within(v, set) >= req)
    }

    /// `min_v deg_Q(v) / (|Q|−1)`: the density figure the paper reports in
    /// its pattern tables (`γ` column).
    pub fn min_degree_ratio(g: &CsrGraph, set: &[VertexId]) -> f64 {
        if set.len() < 2 {
            return 1.0;
        }
        let min_deg = set
            .iter()
            .map(|&v| g.degree_within(v, set))
            .min()
            .unwrap_or(0);
        min_deg as f64 / (set.len() - 1) as f64
    }

    /// Edge density `|E(Q)| / C(|Q|, 2)`.
    pub fn edge_density(g: &CsrGraph, set: &[VertexId]) -> f64 {
        if set.len() < 2 {
            return 1.0;
        }
        let pairs = set.len() * (set.len() - 1) / 2;
        g.edges_within(set) as f64 / pairs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::builder::graph_from_edges;

    #[test]
    fn ceil_gamma_robust_to_fp_drift() {
        // 0.6 * 5 = 3.0000000000000004 in f64.
        assert_eq!(ceil_gamma(0.6, 5), 3);
        assert_eq!(ceil_gamma(0.5, 3), 2);
        assert_eq!(ceil_gamma(1.0, 4), 4);
        assert_eq!(ceil_gamma(0.7, 0), 0);
        assert_eq!(ceil_gamma(0.34, 3), 2); // 1.02 -> 2
    }

    #[test]
    fn required_degree_monotone_in_size() {
        let cfg = QcConfig::new(0.6, 4);
        let degs: Vec<usize> = (1..20).map(|s| cfg.required_degree(s)).collect();
        assert!(degs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cfg.required_degree(4), 2); // ceil(0.6*3) = 2
        assert_eq!(cfg.required_degree(6), 3); // ceil(0.6*5) = 3
        assert_eq!(cfg.min_required_degree(), 2);
    }

    #[test]
    fn clique_is_quasi_clique_at_gamma_1() {
        let g = graph_from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let cfg = QcConfig::new(1.0, 4);
        assert!(cfg.is_quasi_clique(&g, &[0, 1, 2, 3]));
        assert!(!cfg.is_quasi_clique(&g, &[0, 1, 2])); // below min_size
    }

    #[test]
    fn cycle_is_half_dense_quasi_clique() {
        // 4-cycle: every vertex has degree 2 = ceil(0.6 * 3).
        let g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(QcConfig::new(0.6, 4).is_quasi_clique(&g, &[0, 1, 2, 3]));
        assert!(!QcConfig::new(0.7, 4).is_quasi_clique(&g, &[0, 1, 2, 3]));
    }

    #[test]
    fn ratios_and_density() {
        let g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let all = [0, 1, 2, 3];
        // Degrees: 0:3, 1:2, 2:3, 3:2 → min ratio 2/3.
        assert!((QcConfig::min_degree_ratio(&g, &all) - 2.0 / 3.0).abs() < 1e-12);
        assert!((QcConfig::edge_density(&g, &all) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(QcConfig::min_degree_ratio(&g, &[0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0, 1]")]
    fn rejects_bad_gamma() {
        QcConfig::new(0.0, 3);
    }
}
