//! Directed regressions for the batched promotion kernels on the paper's
//! Figure 1: exact expected promotion outcomes (the emitted maximal
//! sets) and exact probe counts, pinned per representation.
//!
//! These are deliberately brittle: any change to child-generation bump
//! extraction, critical-vertex forcing, or the cover partition shifts
//! `edge_tests` / `probes_elided` / `batch_ops` and must be re-derived
//! consciously, not absorbed silently. On Figure 1 every batched site
//! elides exactly the point probes the slice path performs there, so the
//! decomposition `slice.edge_tests = bitset.edge_tests +
//! bitset.probes_elided` holds exactly (it is *not* a general invariant:
//! short-circuited maximality checks can break it on other graphs).

use scpm_graph::builder::graph_from_edges;
use scpm_graph::figure1::{figure1, paper_vertex};
use scpm_quasiclique::{Miner, PruneFlags, QcConfig, Representation};

fn paper_set(vs: &[u32]) -> Vec<u32> {
    let mut s: Vec<u32> = vs.iter().map(|&v| paper_vertex(v)).collect();
    s.sort_unstable();
    s
}

/// The five Table-1 maximal 0.6-quasi-cliques of Figure 1.
fn table1_sets() -> Vec<Vec<u32>> {
    let mut e = vec![
        paper_set(&[3, 4, 5, 6]),
        paper_set(&[6, 7, 8, 9, 10, 11]),
        paper_set(&[3, 4, 6, 7]),
        paper_set(&[3, 5, 6, 7]),
        paper_set(&[3, 6, 7, 8]),
    ];
    e.sort();
    e
}

fn sorted_sets(out: &scpm_quasiclique::MiningOutcome) -> Vec<Vec<u32>> {
    let mut s: Vec<Vec<u32>> = out.cliques.iter().map(|q| q.vertices.clone()).collect();
    s.sort();
    s
}

/// Exact probe counts for every representation and mode under the
/// default pruning flags. The slice path answers each promotion query
/// point-wise (`edge_tests`); the bitset path answers the same queries
/// with row-AND sweeps (`probes_elided` + `batch_ops` words) and only
/// the seed-child membership probes and short-circuited maximality
/// checks remain as point probes.
#[test]
fn figure1_probe_counts_are_pinned() {
    let g = figure1();
    let cfg = QcConfig::new(0.6, 4);
    // (mode, edge_tests, probes_elided, batch_ops, forced_critical,
    //  pruned_cover, nodes_visited)
    let slice_expect = [
        ("maximal", 243, 0, 0, 5, 20, 33),
        ("coverage", 180, 0, 0, 2, 17, 25),
        ("top2", 243, 0, 0, 5, 20, 33),
    ];
    let bitset_expect = [
        ("maximal", 31, 212, 72, 5, 20, 33),
        ("coverage", 27, 153, 47, 2, 17, 25),
        ("top2", 31, 212, 72, 5, 20, 33),
    ];
    for (repr, expect) in [
        (Representation::Slice, &slice_expect),
        (Representation::Bitset, &bitset_expect),
        // Simd must be counter-for-counter identical to Bitset.
        (Representation::Simd, &bitset_expect),
    ] {
        let m = Miner::new(g.graph(), cfg).with_repr(repr);
        for (mode, stats) in [
            ("maximal", m.enumerate_maximal().stats),
            ("coverage", m.coverage().stats),
            ("top2", m.top_k(2).stats),
        ] {
            let &(emode, edge_tests, probes_elided, batch_ops, forced, cover, nodes) =
                expect.iter().find(|e| e.0 == mode).expect("mode in table");
            assert_eq!(mode, emode);
            assert_eq!(
                (
                    stats.edge_tests,
                    stats.probes_elided,
                    stats.batch_ops,
                    stats.forced_critical,
                    stats.pruned_cover,
                    stats.nodes_visited,
                ),
                (edge_tests, probes_elided, batch_ops, forced, cover, nodes),
                "{repr:?} {mode}"
            );
        }
    }
}

/// Critical-vertex forcing in isolation (all other optional prunes off):
/// forcing fires 11 times on Figure 1's maximal enumeration, the
/// promotion outcome is still exactly Table 1, and the batched path
/// answers all but 4 of the 283 promotion probes in bulk.
#[test]
fn critical_forcing_promotes_exact_sets() {
    let g = figure1();
    let cfg = QcConfig::new(0.6, 4);
    let flags = PruneFlags {
        feasibility: true,
        bounds: true,
        critical: true,
        cover_vertex: false,
        lookahead: false,
        covered_candidate: false,
        diameter2: false,
    };
    let slice = Miner::new(g.graph(), cfg)
        .with_repr(Representation::Slice)
        .with_prune(flags)
        .enumerate_maximal();
    let bitset = Miner::new(g.graph(), cfg)
        .with_repr(Representation::Bitset)
        .with_prune(flags)
        .enumerate_maximal();
    assert_eq!(sorted_sets(&slice), table1_sets());
    assert_eq!(sorted_sets(&bitset), table1_sets());
    assert_eq!(slice.stats.forced_critical, 11);
    assert_eq!(bitset.stats.forced_critical, 11);
    assert_eq!(slice.stats.nodes_visited, 43);
    assert_eq!(bitset.stats.nodes_visited, 43);
    assert_eq!(
        (slice.stats.edge_tests, slice.stats.probes_elided),
        (283, 0)
    );
    assert_eq!(
        (bitset.stats.edge_tests, bitset.stats.probes_elided),
        (4, 279)
    );
    assert_eq!(bitset.stats.batch_ops, 98);
    // Site-by-site: every elided probe is one the slice path performed.
    assert_eq!(
        slice.stats.edge_tests,
        bitset.stats.edge_tests + bitset.stats.probes_elided
    );
}

/// Bump extraction on a hand-derivable micro-graph — two triangles
/// sharing vertex 2 at γ=1: the only promotions that survive are the two
/// triangles themselves, and the batched child generation answers 24 of
/// the 28 promotion probes in 12 swept words.
#[test]
fn bump_extraction_promotes_exact_sets() {
    let g = graph_from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (2, 4)]);
    let cfg = QcConfig::new(1.0, 3);
    let expect: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![2, 3, 4]];
    let slice = Miner::new(&g, cfg)
        .with_repr(Representation::Slice)
        .enumerate_maximal();
    let bitset = Miner::new(&g, cfg)
        .with_repr(Representation::Bitset)
        .enumerate_maximal();
    assert_eq!(sorted_sets(&slice), expect);
    assert_eq!(sorted_sets(&bitset), expect);
    assert_eq!(slice.stats.forced_critical, 2);
    assert_eq!(bitset.stats.forced_critical, 2);
    assert_eq!(
        (
            slice.stats.edge_tests,
            slice.stats.probes_elided,
            slice.stats.batch_ops
        ),
        (28, 0, 0)
    );
    assert_eq!(
        (
            bitset.stats.edge_tests,
            bitset.stats.probes_elided,
            bitset.stats.batch_ops
        ),
        (4, 24, 12)
    );
    assert_eq!(slice.stats.nodes_visited, 5);
    assert_eq!(bitset.stats.nodes_visited, 5);
}
