//! Property tests: the search engine must agree with the exponential
//! reference implementation on arbitrary small graphs, for both search
//! orders, all pruning-flag combinations, and all three mining modes.

use proptest::prelude::*;
use scpm_graph::builder::GraphBuilder;
use scpm_graph::csr::CsrGraph;
use scpm_quasiclique::bruteforce;
use scpm_quasiclique::{pattern_order, Miner, PruneFlags, QcConfig, Representation, SearchOrder};

fn small_graph() -> impl Strategy<Value = CsrGraph> {
    (4usize..=10).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..(n * (n - 1) / 2)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

fn qc_params() -> impl Strategy<Value = QcConfig> {
    (
        prop_oneof![Just(0.5), Just(0.6), Just(0.75), Just(1.0)],
        3usize..=5,
    )
        .prop_map(|(gamma, min_size)| QcConfig::new(gamma, min_size))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn maximal_enumeration_matches_bruteforce(g in small_graph(), cfg in qc_params()) {
        let expect = bruteforce::maximal_quasi_cliques(&g, &cfg);
        for order in [SearchOrder::Dfs, SearchOrder::Bfs] {
            let out = Miner::new(&g, cfg).with_order(order).enumerate_maximal();
            let mut got: Vec<Vec<u32>> = out.cliques.iter().map(|q| q.vertices.clone()).collect();
            got.sort();
            prop_assert_eq!(&got, &expect, "order {:?}", order);
        }
    }

    #[test]
    fn coverage_matches_bruteforce(g in small_graph(), cfg in qc_params()) {
        let expect = bruteforce::coverage(&g, &cfg);
        for order in [SearchOrder::Dfs, SearchOrder::Bfs] {
            let out = Miner::new(&g, cfg).with_order(order).coverage();
            prop_assert_eq!(&out.covered, &expect, "order {:?}", order);
        }
    }

    #[test]
    fn coverage_equals_union_of_maximal(g in small_graph(), cfg in qc_params()) {
        let out = Miner::new(&g, cfg).enumerate_maximal();
        let mut union: Vec<u32> = out.cliques.iter().flat_map(|q| q.vertices.iter().copied()).collect();
        union.sort_unstable();
        union.dedup();
        let cov = Miner::new(&g, cfg).coverage();
        prop_assert_eq!(cov.covered, union);
    }

    #[test]
    fn top_k_is_prefix_of_full_ranking(g in small_graph(), cfg in qc_params(), k in 1usize..=4) {
        let expect = bruteforce::top_k(&g, &cfg, k);
        let got = Miner::new(&g, cfg).top_k(k);
        prop_assert_eq!(got.cliques.len(), expect.len());
        for (a, b) in got.cliques.iter().zip(expect.iter()) {
            // Size and ratio must match the reference ranking; vertex sets
            // may differ among exact ties.
            prop_assert_eq!(a.size(), b.size());
            prop_assert!((a.min_degree_ratio - b.min_degree_ratio).abs() < 1e-12);
        }
        // And each returned set must be a genuine maximal quasi-clique.
        let maximal = bruteforce::maximal_quasi_cliques(&g, &cfg);
        for q in &got.cliques {
            prop_assert!(maximal.contains(&q.vertices));
        }
    }

    #[test]
    fn pruning_flags_are_semantically_inert(g in small_graph(), cfg in qc_params(),
                                            bits in 0u32..128) {
        let baseline = {
            let mut s: Vec<Vec<u32>> = Miner::new(&g, cfg).enumerate_maximal()
                .cliques.into_iter().map(|q| q.vertices).collect();
            s.sort();
            s
        };
        let flags = PruneFlags {
            feasibility: bits & 1 != 0,
            bounds: bits & 2 != 0,
            critical: bits & 4 != 0,
            cover_vertex: bits & 8 != 0,
            lookahead: bits & 16 != 0,
            covered_candidate: bits & 32 != 0,
            diameter2: bits & 64 != 0,
        };
        let mut got: Vec<Vec<u32>> = Miner::new(&g, cfg).with_prune(flags).enumerate_maximal()
            .cliques.into_iter().map(|q| q.vertices).collect();
        got.sort();
        prop_assert_eq!(got, baseline, "flags {:?}", flags);
        // Coverage must also be invariant under the flags.
        let cov_base = Miner::new(&g, cfg).coverage().covered;
        let cov = Miner::new(&g, cfg).with_prune(flags).coverage().covered;
        prop_assert_eq!(cov, cov_base);
    }

    /// End-to-end three-way differential: the sorted-slice, scalar-bitset
    /// and SIMD-bitset engines must emit identical `MiningOutcome`s —
    /// same cliques, same coverage, same search tree (all semantic
    /// counters equal; only the modeled kernel costs may differ between
    /// slice and bitset) — in every mode, for every flag combination.
    /// The two bitset backends must additionally agree on *every*
    /// counter: the word-count work model is backend-independent. On a
    /// build without the `simd` feature the third leg degenerates to
    /// scalar-vs-scalar, so the test runs (and must pass) either way.
    #[test]
    fn bitset_and_slice_outcomes_are_identical(g in small_graph(), cfg in qc_params(),
                                               bits in 0u32..128, k in 1usize..=4) {
        let flags = PruneFlags {
            feasibility: bits & 1 != 0,
            bounds: bits & 2 != 0,
            critical: bits & 4 != 0,
            cover_vertex: bits & 8 != 0,
            lookahead: bits & 16 != 0,
            covered_candidate: bits & 32 != 0,
            diameter2: bits & 64 != 0,
        };
        let slice = Miner::new(&g, cfg).with_prune(flags).with_repr(Representation::Slice);
        let packed = Miner::new(&g, cfg).with_prune(flags).with_repr(Representation::Bitset);
        let simd = Miner::new(&g, cfg).with_prune(flags).with_repr(Representation::Simd);

        let (s, p, v) = (slice.enumerate_maximal(), packed.enumerate_maximal(), simd.enumerate_maximal());
        prop_assert_eq!(&s.cliques, &p.cliques, "maximal, flags {:?}", flags);
        prop_assert_eq!(s.stats.semantic(), p.stats.semantic(), "maximal stats, flags {:?}", flags);
        prop_assert_eq!(&v.cliques, &p.cliques, "simd maximal, flags {:?}", flags);
        prop_assert_eq!(v.stats, p.stats, "simd maximal stats, flags {:?}", flags);
        // Fused-kernel counters: the engine's hot loops report them only
        // on the bitset path; the (representation-independent) packed
        // containment filter contributes equally to both. Hence the
        // bitset run always reports at least the slice run's counts, and
        // the fused kernels (incremental exdeg updates included) must not
        // disturb any semantic counter.
        prop_assert!(
            s.stats.fused_ops <= p.stats.fused_ops,
            "maximal fused_ops slice {} > bitset {}, flags {:?}",
            s.stats.fused_ops, p.stats.fused_ops, flags
        );
        // The batched promotion kernels exist only on the bitset path.
        prop_assert_eq!(s.stats.probes_elided, 0, "slice maximal probes_elided, flags {:?}", flags);
        prop_assert_eq!(s.stats.batch_ops, 0, "slice maximal batch_ops, flags {:?}", flags);
        prop_assert!(
            p.stats.batch_ops <= p.stats.kernel_ops,
            "maximal batch_ops {} > kernel_ops {}, flags {:?}",
            p.stats.batch_ops, p.stats.kernel_ops, flags
        );

        let (s, p, v) = (slice.coverage(), packed.coverage(), simd.coverage());
        prop_assert_eq!(&s.covered, &p.covered, "coverage, flags {:?}", flags);
        prop_assert_eq!(s.stats.semantic(), p.stats.semantic(), "coverage stats, flags {:?}", flags);
        prop_assert_eq!(&v.covered, &p.covered, "simd coverage, flags {:?}", flags);
        prop_assert_eq!(v.stats, p.stats, "simd coverage stats, flags {:?}", flags);
        // Coverage mode never runs the containment filter, so the slice
        // path must report no fused-kernel work at all there.
        prop_assert_eq!(s.stats.fused_ops, 0, "slice coverage fused_ops, flags {:?}", flags);
        prop_assert_eq!(s.stats.blocks_skipped, 0, "slice coverage blocks_skipped, flags {:?}", flags);
        prop_assert_eq!(s.stats.probes_elided, 0, "slice coverage probes_elided, flags {:?}", flags);
        prop_assert_eq!(s.stats.batch_ops, 0, "slice coverage batch_ops, flags {:?}", flags);

        let (s, p, v) = (slice.top_k(k), packed.top_k(k), simd.top_k(k));
        prop_assert_eq!(&s.cliques, &p.cliques, "top-{}, flags {:?}", k, flags);
        prop_assert_eq!(s.stats.semantic(), p.stats.semantic(), "top-k stats, flags {:?}", flags);
        prop_assert_eq!(&v.cliques, &p.cliques, "simd top-{}, flags {:?}", k, flags);
        prop_assert_eq!(v.stats, p.stats, "simd top-k stats, flags {:?}", flags);
        prop_assert!(
            s.stats.fused_ops <= p.stats.fused_ops,
            "top-k fused_ops slice {} > bitset {}, flags {:?}",
            s.stats.fused_ops, p.stats.fused_ops, flags
        );
        prop_assert_eq!(s.stats.probes_elided, 0, "slice top-k probes_elided, flags {:?}", flags);
        prop_assert_eq!(s.stats.batch_ops, 0, "slice top-k batch_ops, flags {:?}", flags);
    }

    #[test]
    fn emitted_patterns_satisfy_definition(g in small_graph(), cfg in qc_params()) {
        let out = Miner::new(&g, cfg).enumerate_maximal();
        for q in &out.cliques {
            prop_assert!(cfg.is_quasi_clique(&g, &q.vertices));
            prop_assert!(q.min_degree_ratio >= cfg.gamma - 1e-9);
            // Reported ratio/density must be consistent with direct
            // recomputation on the input graph.
            prop_assert!((q.min_degree_ratio - QcConfig::min_degree_ratio(&g, &q.vertices)).abs() < 1e-12);
            prop_assert!((q.edge_density - QcConfig::edge_density(&g, &q.vertices)).abs() < 1e-12);
        }
    }

    #[test]
    fn ranking_is_sorted(g in small_graph(), cfg in qc_params()) {
        let out = Miner::new(&g, cfg).enumerate_maximal();
        for w in out.cliques.windows(2) {
            prop_assert_ne!(pattern_order(&w[0], &w[1]), std::cmp::Ordering::Greater);
        }
    }
}
