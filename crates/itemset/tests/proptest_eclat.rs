//! Property tests: Eclat, Apriori and dEclat must agree with the
//! brute-force reference (and one another) on random attributed graphs.

use proptest::prelude::*;
use scpm_graph::attributed::{AttributedGraph, AttributedGraphBuilder};
use scpm_itemset::closed::closed_bruteforce;
use scpm_itemset::{apriori, bruteforce, closed_itemsets, declat, eclat, EclatConfig, Tidset};

/// Random attributed graph: `n` vertices, `k` attributes, random
/// assignments (topology irrelevant to itemset mining).
fn attributed() -> impl Strategy<Value = AttributedGraph> {
    (2usize..=12, 1usize..=6).prop_flat_map(|(n, k)| {
        proptest::collection::vec(proptest::collection::vec(0u32..k as u32, 0..=k), n).prop_map(
            move |assignments| {
                let mut b = AttributedGraphBuilder::new(n);
                for a in 0..k as u32 {
                    b.intern_attr(&format!("attr{a}"));
                }
                for (v, attrs) in assignments.iter().enumerate() {
                    for &a in attrs {
                        b.add_attr(v as u32, a);
                    }
                }
                b.build()
            },
        )
    })
}

fn normalize(v: Vec<scpm_itemset::FrequentItemset>) -> Vec<(Vec<u32>, Vec<u32>)> {
    let mut out: Vec<(Vec<u32>, Vec<u32>)> = v
        .into_iter()
        .map(|fi| (fi.items, fi.tids.as_slice().to_vec()))
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn eclat_matches_bruteforce(g in attributed(), min_support in 1usize..=5) {
        let cfg = EclatConfig { min_support, max_size: usize::MAX };
        prop_assert_eq!(normalize(eclat(&g, &cfg)), normalize(bruteforce(&g, &cfg)));
    }

    #[test]
    fn three_miners_agree(g in attributed(), min_support in 1usize..=5, max_size in 1usize..=4) {
        let cfg = EclatConfig { min_support, max_size };
        let counted = |v: Vec<scpm_itemset::CountedItemset>| {
            let mut out: Vec<(Vec<u32>, usize)> =
                v.into_iter().map(|c| (c.items, c.support)).collect();
            out.sort();
            out
        };
        let vertical: Vec<(Vec<u32>, usize)> = {
            let mut out: Vec<(Vec<u32>, usize)> = eclat(&g, &cfg)
                .into_iter()
                .map(|fi| (fi.items.clone(), fi.support()))
                .collect();
            out.sort();
            out
        };
        prop_assert_eq!(&counted(apriori(&g, &cfg)), &vertical, "apriori vs eclat");
        prop_assert_eq!(&counted(declat(&g, &cfg)), &vertical, "declat vs eclat");
    }

    #[test]
    fn closed_matches_bruteforce(g in attributed(), min_support in 1usize..=4) {
        let cfg = EclatConfig { min_support, max_size: usize::MAX };
        let norm = |v: Vec<scpm_itemset::ClosedItemset>| {
            let mut out: Vec<(Vec<u32>, Vec<u32>)> = v
                .into_iter()
                .map(|c| (c.items, c.tids.as_slice().to_vec()))
                .collect();
            out.sort();
            out
        };
        prop_assert_eq!(
            norm(closed_itemsets(&g, &cfg)),
            norm(closed_bruteforce(&g, &cfg))
        );
    }

    #[test]
    fn closure_preserves_all_supports(g in attributed(), min_support in 1usize..=3) {
        // Lossless-summary property: every frequent itemset's support is
        // recoverable as the max support of a closed superset.
        let cfg = EclatConfig { min_support, max_size: usize::MAX };
        let closed = closed_itemsets(&g, &cfg);
        for fi in eclat(&g, &cfg) {
            let sup = closed
                .iter()
                .filter(|c| fi.items.iter().all(|x| c.items.contains(x)))
                .map(|c| c.support())
                .max();
            prop_assert_eq!(sup, Some(fi.support()), "itemset {:?}", fi.items);
        }
    }

    #[test]
    fn supports_are_antimonotone(g in attributed()) {
        let cfg = EclatConfig { min_support: 1, max_size: usize::MAX };
        let all = eclat(&g, &cfg);
        // Every itemset's support is at most the support of each subset
        // obtained by dropping one item.
        let lookup: std::collections::HashMap<Vec<u32>, usize> =
            all.iter().map(|fi| (fi.items.clone(), fi.support())).collect();
        for fi in &all {
            if fi.items.len() < 2 { continue; }
            for drop in 0..fi.items.len() {
                let mut sub = fi.items.clone();
                sub.remove(drop);
                let sup = lookup.get(&sub).copied().unwrap_or(0);
                prop_assert!(fi.support() <= sup,
                    "{:?} support {} > subset {:?} support {}", fi.items, fi.support(), sub, sup);
            }
        }
    }

    #[test]
    fn max_size_truncates(g in attributed(), max_size in 1usize..=3) {
        let cfg = EclatConfig { min_support: 1, max_size };
        let all = eclat(&g, &cfg);
        prop_assert!(all.iter().all(|fi| fi.items.len() <= max_size));
        // The truncated run is exactly the full run filtered by size.
        let full = eclat(&g, &EclatConfig { min_support: 1, max_size: usize::MAX });
        let filtered: Vec<_> = full.into_iter().filter(|fi| fi.items.len() <= max_size).collect();
        prop_assert_eq!(normalize(all), normalize(filtered));
    }

    #[test]
    fn tidset_ops_model_sets(
        a in proptest::collection::vec(0u32..60, 0..30),
        b in proptest::collection::vec(0u32..60, 0..30),
    ) {
        use std::collections::BTreeSet;
        let ta = Tidset::from_unsorted(a.clone());
        let tb = Tidset::from_unsorted(b.clone());
        let sa: BTreeSet<u32> = a.into_iter().collect();
        let sb: BTreeSet<u32> = b.into_iter().collect();
        let inter: Vec<u32> = sa.intersection(&sb).copied().collect();
        let ti = ta.intersect(&tb);
        prop_assert_eq!(ti.as_slice(), inter.as_slice());
        prop_assert_eq!(ta.intersect_count(&tb), inter.len());
        prop_assert_eq!(ta.is_subset_of(&tb), sa.is_subset(&sb));
    }
}
