//! Vertical transaction-id sets (tidsets).
//!
//! In the attributed-graph setting a "transaction" is a vertex and an
//! "item" is an attribute, so the tidset of an attribute set `S` is exactly
//! the induced vertex set `V(S)` from the paper. Tidsets are sorted,
//! duplicate-free `u32` vectors; support is their length.

/// A sorted, duplicate-free set of transaction (vertex) ids.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Tidset(Vec<u32>);

impl Tidset {
    /// Creates an empty tidset.
    pub fn new() -> Self {
        Tidset(Vec::new())
    }

    /// Creates a tidset from an arbitrary id list (sorted and deduplicated).
    pub fn from_unsorted(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Tidset(ids)
    }

    /// Creates a tidset from an already-sorted, duplicate-free list.
    ///
    /// # Panics
    /// Debug-panics if the input is not strictly sorted.
    pub fn from_sorted(ids: Vec<u32>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        Tidset(ids)
    }

    /// Support: the number of transactions.
    #[inline]
    pub fn support(&self) -> usize {
        self.0.len()
    }

    /// Whether the tidset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The ids as a sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Membership test (`O(log n)`).
    pub fn contains(&self, id: u32) -> bool {
        self.0.binary_search(&id).is_ok()
    }

    /// Intersection with another tidset, galloping through the larger
    /// operand when the sizes are skewed (the dominant shape in vertical
    /// mining, where a rare item's tidset meets very frequent ones); see
    /// [`intersect_adaptive_into`](scpm_graph::csr::intersect_adaptive_into).
    pub fn intersect(&self, other: &Tidset) -> Tidset {
        let mut out = Vec::with_capacity(self.0.len().min(other.0.len()));
        scpm_graph::csr::intersect_adaptive_into(&self.0, &other.0, &mut out);
        Tidset(out)
    }

    /// Fused intersect-and-threshold: `self ∩ other` if its support
    /// reaches `min_support`, `None` otherwise — a single pass that
    /// *abandons early* once the remaining elements cannot reach the
    /// threshold, replacing the intersect-then-count-then-discard pattern
    /// of the Eclat/CHARM extension loops.
    pub fn intersect_min_support(&self, other: &Tidset, min_support: usize) -> Option<Tidset> {
        let (a, b) = (&self.0, &other.0);
        if a.len().min(b.len()) < min_support {
            return None;
        }
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            // Even matching everything left cannot reach the threshold.
            if out.len() + (a.len() - i).min(b.len() - j) < min_support {
                return None;
            }
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        if out.len() >= min_support {
            Some(Tidset(out))
        } else {
            None
        }
    }

    /// Size of the intersection without materializing it.
    pub fn intersect_count(&self, other: &Tidset) -> usize {
        scpm_graph::csr::intersect_count(&self.0, &other.0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Tidset) -> bool {
        if self.0.len() > other.0.len() {
            return false;
        }
        self.intersect_count(other) == self.0.len()
    }
}

impl From<Vec<u32>> for Tidset {
    fn from(ids: Vec<u32>) -> Self {
        Tidset::from_unsorted(ids)
    }
}

impl From<&[u32]> for Tidset {
    fn from(ids: &[u32]) -> Self {
        Tidset::from_unsorted(ids.to_vec())
    }
}

impl<'a> IntoIterator for &'a Tidset {
    type Item = u32;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u32>>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let t = Tidset::from_unsorted(vec![5, 1, 3, 1, 5]);
        assert_eq!(t.as_slice(), &[1, 3, 5]);
        assert_eq!(t.support(), 3);
    }

    #[test]
    fn intersect_basic() {
        let a = Tidset::from_sorted(vec![1, 2, 4, 8]);
        let b = Tidset::from_sorted(vec![2, 3, 4, 9]);
        assert_eq!(a.intersect(&b).as_slice(), &[2, 4]);
        assert_eq!(a.intersect_count(&b), 2);
    }

    #[test]
    fn intersect_min_support_matches_composition() {
        let a = Tidset::from_sorted(vec![1, 2, 4, 8, 16, 32]);
        let b = Tidset::from_sorted(vec![2, 3, 4, 9, 16, 33]);
        let merged = a.intersect(&b);
        for min in 0..=merged.support() {
            assert_eq!(
                a.intersect_min_support(&b, min),
                Some(merged.clone()),
                "min {min}"
            );
        }
        for min in merged.support() + 1..=8 {
            assert_eq!(a.intersect_min_support(&b, min), None, "min {min}");
        }
        assert_eq!(Tidset::new().intersect_min_support(&a, 1), None);
        assert_eq!(
            Tidset::new().intersect_min_support(&a, 0),
            Some(Tidset::new())
        );
    }

    #[test]
    fn intersect_skewed_gallops_identically() {
        let small = Tidset::from_sorted(vec![5, 100, 900]);
        let large = Tidset::from_sorted((0..1000).collect());
        assert_eq!(small.intersect(&large).as_slice(), &[5, 100, 900]);
        assert_eq!(large.intersect(&small).as_slice(), &[5, 100, 900]);
    }

    #[test]
    fn intersect_with_empty() {
        let a = Tidset::from_sorted(vec![1, 2]);
        let e = Tidset::new();
        assert!(a.intersect(&e).is_empty());
        assert!(e.is_empty());
    }

    #[test]
    fn subset_checks() {
        let a = Tidset::from_sorted(vec![2, 4]);
        let b = Tidset::from_sorted(vec![1, 2, 3, 4]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(Tidset::new().is_subset_of(&a));
    }

    #[test]
    fn contains_and_iter() {
        let a = Tidset::from_sorted(vec![3, 7]);
        assert!(a.contains(3));
        assert!(!a.contains(4));
        let collected: Vec<u32> = (&a).into_iter().collect();
        assert_eq!(collected, vec![3, 7]);
    }
}
