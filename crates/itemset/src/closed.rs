//! Closed frequent itemset mining (CHARM-style, Zaki & Hsiao).
//!
//! An itemset is **closed** when no proper superset has the same tidset.
//! In the attributed-graph setting two attribute sets with equal induced
//! vertex sets `V(S)` produce *identical* structural correlation rows and
//! patterns, so mining closed attribute sets removes exact redundancy
//! from SCPM's output — the itemset-side analogue of the closed
//! quasi-clique work the paper cites (\[20\], \[21\]).
//!
//! The miner runs the Eclat prefix-class search with the two CHARM
//! property shortcuts:
//!
//! * `t(X) = t(Y)` — `Y` can be merged into every itemset of `X`'s
//!   subtree (they always co-occur); `Y`'s own branch is dropped.
//! * `t(X) ⊂ t(Y)` — `Y` joins `X`'s closure but keeps its own branch
//!   (`Y` occurs in more transactions).
//!
//! A final subsumption check against an index by `(support, tidset hash)`
//! removes the non-closed survivors.

use std::collections::HashMap;

use crate::eclat::EclatConfig;
use crate::tidset::Tidset;
use scpm_graph::attributed::{AttrId, AttributedGraph};

/// A closed frequent itemset with its tidset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClosedItemset {
    /// Sorted item (attribute) ids.
    pub items: Vec<AttrId>,
    /// Vertices containing every item.
    pub tids: Tidset,
}

impl ClosedItemset {
    /// Support `σ(S)`.
    pub fn support(&self) -> usize {
        self.tids.support()
    }
}

/// Mines all closed frequent itemsets. `config.max_size` bounds the
/// *explored* itemset size; closures may exceed it only through property-1
/// merges of co-occurring items, which faithfully reflects the data.
pub fn closed_itemsets(graph: &AttributedGraph, config: &EclatConfig) -> Vec<ClosedItemset> {
    assert!(config.min_support >= 1, "min_support must be at least 1");
    let mut found: Vec<ClosedItemset> = Vec::new();
    if config.max_size == 0 {
        return found;
    }
    let mut roots: Vec<(Vec<AttrId>, Tidset)> = graph
        .attributes()
        .filter(|&a| graph.support(a) >= config.min_support)
        .map(|a| {
            (
                vec![a],
                Tidset::from_sorted(graph.vertices_with(a).to_vec()),
            )
        })
        .collect();
    // CHARM processes items by ascending support so that property-1 merges
    // fire as early as possible.
    roots.sort_by_key(|(_, t)| t.support());
    explore(roots, config, &mut found);
    subsumption_filter(found)
}

/// One prefix class: each entry is `(itemset, tidset)`; extensions come
/// from later entries, with the CHARM tidset-relation shortcuts.
fn explore(class: Vec<(Vec<AttrId>, Tidset)>, config: &EclatConfig, out: &mut Vec<ClosedItemset>) {
    let mut class = class;
    let mut i = 0;
    while i < class.len() {
        let mut items = class[i].0.clone();
        let tids = class[i].1.clone();
        let mut next: Vec<(Vec<AttrId>, Tidset)> = Vec::new();
        let mut j = i + 1;
        while j < class.len() {
            // Fused intersect-and-threshold (single pass, early abandon).
            let merged = tids.intersect_min_support(&class[j].1, config.min_support);
            if let Some(merged) = merged {
                let j_tids = &class[j].1;
                if merged.support() == tids.support() && merged.support() == j_tids.support() {
                    // t(X) = t(Y): absorb Y's last item into X everywhere
                    // and drop Y's branch.
                    items.extend(last_items(&class[j].0, &items));
                    class.remove(j);
                    continue; // do not advance j (element shifted left)
                } else if merged.support() == tids.support() {
                    // t(X) ⊂ t(Y): Y's item always accompanies X.
                    items.extend(last_items(&class[j].0, &items));
                } else if items.len() < config.max_size {
                    let mut child = items.clone();
                    child.extend(last_items(&class[j].0, &child));
                    next.push((child, merged));
                }
            }
            j += 1;
        }
        items.sort_unstable();
        items.dedup();
        // Propagate the (possibly grown) prefix into the children.
        for (child_items, _) in next.iter_mut() {
            child_items.extend(items.iter().copied());
            child_items.sort_unstable();
            child_items.dedup();
        }
        out.push(ClosedItemset {
            items,
            tids: tids.clone(),
        });
        if !next.is_empty() {
            explore(next, config, out);
        }
        i += 1;
    }
}

/// The items of `src` missing from `base` (CHARM merges whole generators).
fn last_items(src: &[AttrId], base: &[AttrId]) -> Vec<AttrId> {
    src.iter().copied().filter(|x| !base.contains(x)).collect()
}

/// Removes itemsets whose tidset equals a proper superset's (non-closed
/// survivors), then deduplicates.
fn subsumption_filter(mut sets: Vec<ClosedItemset>) -> Vec<ClosedItemset> {
    sets.sort_by(|a, b| {
        b.items
            .len()
            .cmp(&a.items.len())
            .then_with(|| a.items.cmp(&b.items))
    });
    sets.dedup_by(|a, b| a.items == b.items);
    // Index by support: only equal-support sets can share a tidset.
    let mut by_support: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut keep = vec![true; sets.len()];
    for (idx, set) in sets.iter().enumerate() {
        let bucket = by_support.entry(set.support()).or_default();
        for &bigger in bucket.iter() {
            // `sets` is sorted by descending size: `bigger` has ≥ items.
            if sets[bigger].items.len() > set.items.len()
                && set.tids == sets[bigger].tids
                && is_subset(&set.items, &sets[bigger].items)
            {
                keep[idx] = false;
                break;
            }
        }
        if keep[idx] {
            bucket.push(idx);
        }
    }
    let mut out: Vec<ClosedItemset> = sets
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(s, _)| s)
        .collect();
    out.sort_by(|a, b| a.items.cmp(&b.items));
    out
}

fn is_subset(a: &[AttrId], b: &[AttrId]) -> bool {
    let mut i = 0;
    for &x in b {
        if i == a.len() {
            return true;
        }
        if a[i] == x {
            i += 1;
        } else if a[i] < x {
            return false;
        }
    }
    i == a.len()
}

/// Brute-force reference: closed = no superset-with-equal-support among
/// all frequent itemsets. Exponential; small universes only.
pub fn closed_bruteforce(graph: &AttributedGraph, config: &EclatConfig) -> Vec<ClosedItemset> {
    let all = crate::eclat::bruteforce(
        graph,
        &EclatConfig {
            min_support: config.min_support,
            max_size: usize::MAX,
        },
    );
    let mut out = Vec::new();
    'outer: for fi in &all {
        for other in &all {
            if other.items.len() > fi.items.len()
                && is_subset(&fi.items, &other.items)
                && other.tids == fi.tids
            {
                continue 'outer;
            }
        }
        out.push(ClosedItemset {
            items: fi.items.clone(),
            tids: fi.tids.clone(),
        });
    }
    out.sort_by(|a, b| a.items.cmp(&b.items));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::attributed::AttributedGraphBuilder;
    use scpm_graph::figure1::figure1;

    fn names(g: &AttributedGraph, sets: &[ClosedItemset]) -> Vec<(Vec<String>, usize)> {
        let mut out: Vec<(Vec<String>, usize)> = sets
            .iter()
            .map(|c| {
                let mut n: Vec<String> = c
                    .items
                    .iter()
                    .map(|&a| g.attr_name(a).to_string())
                    .collect();
                n.sort();
                (n, c.support())
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn matches_bruteforce_on_figure1() {
        let g = figure1();
        for min_support in 1..=6 {
            let cfg = EclatConfig {
                min_support,
                max_size: usize::MAX,
            };
            assert_eq!(
                names(&g, &closed_itemsets(&g, &cfg)),
                names(&g, &closed_bruteforce(&g, &cfg)),
                "min_support {min_support}"
            );
        }
    }

    #[test]
    fn co_occurring_items_collapse() {
        // x and y always appear together; z sometimes.
        let mut b = AttributedGraphBuilder::new(3);
        for v in 0..3u32 {
            b.add_attr_named(v, "x");
            b.add_attr_named(v, "y");
        }
        b.add_attr_named(0, "z");
        let g = b.build();
        let cfg = EclatConfig {
            min_support: 1,
            max_size: usize::MAX,
        };
        let got = names(&g, &closed_itemsets(&g, &cfg));
        // Closed sets: {x,y} (support 3) and {x,y,z} (support 1); neither
        // {x} nor {y} alone is closed.
        assert_eq!(
            got,
            vec![
                (vec!["x".into(), "y".into()], 3),
                (vec!["x".into(), "y".into(), "z".into()], 1),
            ]
        );
    }

    #[test]
    fn closed_sets_are_a_lossless_summary() {
        // Every frequent itemset's support equals the support of its
        // smallest closed superset.
        let g = figure1();
        let cfg = EclatConfig {
            min_support: 2,
            max_size: usize::MAX,
        };
        let closed = closed_itemsets(&g, &cfg);
        for fi in crate::eclat::eclat(&g, &cfg) {
            let closure_support = closed
                .iter()
                .filter(|c| is_subset(&fi.items, &c.items))
                .map(|c| c.support())
                .max()
                .unwrap_or(0);
            assert_eq!(
                closure_support,
                fi.support(),
                "itemset {:?} lost by closure",
                fi.items
            );
        }
    }

    #[test]
    fn closed_count_never_exceeds_frequent_count() {
        let g = figure1();
        let cfg = EclatConfig {
            min_support: 2,
            max_size: usize::MAX,
        };
        let closed = closed_itemsets(&g, &cfg).len();
        let frequent = crate::eclat::eclat(&g, &cfg).len();
        assert!(closed <= frequent, "{closed} > {frequent}");
        assert!(closed >= 1);
    }

    #[test]
    fn empty_when_nothing_frequent() {
        let g = figure1();
        let cfg = EclatConfig {
            min_support: 100,
            max_size: usize::MAX,
        };
        assert!(closed_itemsets(&g, &cfg).is_empty());
    }
}
