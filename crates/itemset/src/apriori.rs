//! The Apriori algorithm (Agrawal et al., SIGMOD 1993 — reference \[1\] of
//! the paper): breadth-first frequent itemset mining over the *horizontal*
//! representation.
//!
//! Level-`k+1` candidates are joined from level-`k` frequent sets sharing
//! a `(k−1)`-prefix and pruned when any `k`-subset is infrequent (the
//! Apriori property — the support function is anti-monotone). Supports are
//! counted by scanning transactions, not by tidset intersection, which is
//! the defining contrast with [`eclat`](fn@crate::eclat::eclat): Apriori touches the data
//! once per level but keeps a candidate table; Eclat materializes
//! per-itemset tidsets but never rescans. The SCPM ablations use both to
//! show the traversal-order trade-off on the attribute lattice.

use std::collections::HashSet;

use crate::eclat::{EclatConfig, FrequentItemset};
use crate::tidset::Tidset;
use scpm_graph::attributed::{AttrId, AttributedGraph};

/// A frequent itemset with its support (no tidset — Apriori is
/// horizontal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountedItemset {
    /// Sorted item (attribute) ids.
    pub items: Vec<AttrId>,
    /// Number of transactions (vertices) containing every item.
    pub support: usize,
}

/// Mines all frequent itemsets level-wise. Returns them grouped in level
/// order, each level sorted lexicographically.
pub fn apriori(graph: &AttributedGraph, config: &EclatConfig) -> Vec<CountedItemset> {
    assert!(config.min_support >= 1, "min_support must be at least 1");
    let mut out: Vec<CountedItemset> = Vec::new();
    if config.max_size == 0 {
        return out;
    }

    // Level 1 from the inverted index.
    let mut level: Vec<Vec<AttrId>> = graph
        .attributes()
        .filter(|&a| graph.support(a) >= config.min_support)
        .map(|a| vec![a])
        .collect();
    for items in &level {
        out.push(CountedItemset {
            items: items.clone(),
            support: graph.support(items[0]),
        });
    }

    let mut size = 1usize;
    while !level.is_empty() && size < config.max_size {
        let candidates = generate_candidates(&level);
        if candidates.is_empty() {
            break;
        }
        let supports = count_supports(graph, &candidates);
        let mut next: Vec<Vec<AttrId>> = Vec::new();
        for (items, support) in candidates.into_iter().zip(supports) {
            if support >= config.min_support {
                out.push(CountedItemset {
                    items: items.clone(),
                    support,
                });
                next.push(items);
            }
        }
        level = next;
        size += 1;
    }
    out
}

/// Joins level-`k` sets on their `(k−1)`-prefix and applies the
/// all-subsets pruning. `level` must be sorted lexicographically with
/// sorted member lists (as produced by [`apriori`]).
fn generate_candidates(level: &[Vec<AttrId>]) -> Vec<Vec<AttrId>> {
    let k = level[0].len();
    let alive: HashSet<&[AttrId]> = level.iter().map(|v| v.as_slice()).collect();
    let mut out = Vec::new();
    for i in 0..level.len() {
        for j in (i + 1)..level.len() {
            if level[i][..k - 1] != level[j][..k - 1] {
                break; // sorted level: prefix classes are contiguous
            }
            let mut candidate = level[i].clone();
            candidate.push(level[j][k - 1]);
            // Subset pruning: dropping either of the two last items
            // reproduces the parents; check the remaining k−1 subsets.
            let mut subset = Vec::with_capacity(k);
            let pruned = (0..k - 1).any(|drop| {
                subset.clear();
                subset.extend(
                    candidate
                        .iter()
                        .enumerate()
                        .filter(|&(p, _)| p != drop)
                        .map(|(_, &x)| x),
                );
                !alive.contains(subset.as_slice())
            });
            if !pruned {
                out.push(candidate);
            }
        }
    }
    out
}

/// Counts each candidate's support with one pass over the transactions.
///
/// Candidates are grouped by first item; for every vertex, only groups
/// whose first item the vertex carries are checked, each with a sorted
/// two-pointer containment test.
fn count_supports(graph: &AttributedGraph, candidates: &[Vec<AttrId>]) -> Vec<usize> {
    // Group candidate indices by first item.
    let mut by_first: std::collections::HashMap<AttrId, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, c) in candidates.iter().enumerate() {
        by_first.entry(c[0]).or_default().push(i);
    }
    let mut supports = vec![0usize; candidates.len()];
    for v in 0..graph.num_vertices() as u32 {
        let attrs = graph.attributes_of(v);
        if attrs.len() < 2 {
            continue;
        }
        for &a in attrs {
            if let Some(group) = by_first.get(&a) {
                for &ci in group {
                    if is_subset(&candidates[ci], attrs) {
                        supports[ci] += 1;
                    }
                }
            }
        }
    }
    supports
}

/// Whether sorted `needle ⊆` sorted `haystack`.
fn is_subset(needle: &[AttrId], haystack: &[AttrId]) -> bool {
    let mut i = 0usize;
    for &x in haystack {
        if i == needle.len() {
            return true;
        }
        if needle[i] == x {
            i += 1;
        } else if needle[i] < x {
            return false;
        }
    }
    i == needle.len()
}

/// Convenience: converts Apriori output to the Eclat result type by
/// re-deriving tidsets from the graph (for cross-checking in tests).
pub fn with_tidsets(graph: &AttributedGraph, counted: &[CountedItemset]) -> Vec<FrequentItemset> {
    counted
        .iter()
        .map(|c| FrequentItemset {
            items: c.items.clone(),
            tids: Tidset::from_sorted(graph.vertices_with_all(&c.items)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eclat::{bruteforce, eclat};
    use scpm_graph::attributed::AttributedGraphBuilder;
    use scpm_graph::figure1::figure1;

    fn normalize_counted(v: &[CountedItemset]) -> Vec<(Vec<AttrId>, usize)> {
        let mut out: Vec<(Vec<AttrId>, usize)> =
            v.iter().map(|c| (c.items.clone(), c.support)).collect();
        out.sort();
        out
    }

    fn normalize_eclat(v: Vec<FrequentItemset>) -> Vec<(Vec<AttrId>, usize)> {
        let mut out: Vec<(Vec<AttrId>, usize)> = v
            .into_iter()
            .map(|fi| (fi.items.clone(), fi.support()))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn apriori_matches_eclat_on_figure1() {
        let g = figure1();
        for min_support in 1..=6 {
            let cfg = EclatConfig {
                min_support,
                max_size: usize::MAX,
            };
            assert_eq!(
                normalize_counted(&apriori(&g, &cfg)),
                normalize_eclat(eclat(&g, &cfg)),
                "min_support {min_support}"
            );
        }
    }

    #[test]
    fn apriori_matches_bruteforce_with_size_cap() {
        let g = figure1();
        for max_size in 1..=3 {
            let cfg = EclatConfig {
                min_support: 2,
                max_size,
            };
            assert_eq!(
                normalize_counted(&apriori(&g, &cfg)),
                normalize_eclat(bruteforce(&g, &cfg)),
                "max_size {max_size}"
            );
        }
    }

    #[test]
    fn subset_pruning_culls_candidates() {
        // Items: a appears with b, b with c, but never a with c. The join
        // of {a,b} and ... there is no join ({a,b} and {b,c} differ in the
        // first position), so build a case where the subset check fires:
        // {a,b}, {a,c}, {b,c} frequent but {a,b,c} has support 0 —
        // generated by joining {a,b},{a,c}; subset {b,c} IS frequent, so
        // the candidate survives generation and dies in counting.
        let mut b = AttributedGraphBuilder::new(6);
        for (v, names) in [
            (0u32, vec!["a", "b"]),
            (1, vec!["a", "b"]),
            (2, vec!["a", "c"]),
            (3, vec!["a", "c"]),
            (4, vec!["b", "c"]),
            (5, vec!["b", "c"]),
        ] {
            for n in names {
                b.add_attr_named(v, n);
            }
        }
        let g = b.build();
        let cfg = EclatConfig {
            min_support: 2,
            max_size: usize::MAX,
        };
        let got = normalize_counted(&apriori(&g, &cfg));
        assert!(got.iter().all(|(items, _)| items.len() <= 2));
        assert_eq!(got, normalize_eclat(eclat(&g, &cfg)));
    }

    #[test]
    fn is_subset_cases() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }

    #[test]
    fn with_tidsets_rederives_vertex_sets() {
        let g = figure1();
        let cfg = EclatConfig {
            min_support: 3,
            max_size: usize::MAX,
        };
        let counted = apriori(&g, &cfg);
        for fi in with_tidsets(&g, &counted) {
            assert_eq!(fi.tids.as_slice(), g.vertices_with_all(&fi.items));
        }
    }

    #[test]
    fn empty_result_when_nothing_frequent() {
        let g = figure1();
        let cfg = EclatConfig {
            min_support: 100,
            max_size: usize::MAX,
        };
        assert!(apriori(&g, &cfg).is_empty());
    }
}
