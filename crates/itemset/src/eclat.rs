//! The Eclat algorithm (Zaki, TKDE 2000): depth-first frequent itemset
//! mining over vertical tidsets.
//!
//! The paper's naive baseline enumerates all frequent attribute sets with
//! Eclat and then mines quasi-cliques from each induced subgraph; this
//! module provides that enumeration. Items are attribute ids, transactions
//! are vertices, and the tidset of an itemset is the induced vertex set
//! `V(S)`.

use crate::tidset::Tidset;
use scpm_graph::attributed::{AttrId, AttributedGraph};

/// Configuration for [`eclat`].
#[derive(Clone, Copy, Debug)]
pub struct EclatConfig {
    /// Minimum support `σmin` (absolute count).
    pub min_support: usize,
    /// Upper bound on itemset size (`usize::MAX` for unbounded).
    pub max_size: usize,
}

impl Default for EclatConfig {
    fn default() -> Self {
        EclatConfig {
            min_support: 1,
            max_size: usize::MAX,
        }
    }
}

/// A frequent itemset together with its tidset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrequentItemset {
    /// Sorted item (attribute) ids.
    pub items: Vec<AttrId>,
    /// Vertices containing every item: `V(S)`.
    pub tids: Tidset,
}

impl FrequentItemset {
    /// Support `σ(S)`.
    pub fn support(&self) -> usize {
        self.tids.support()
    }
}

/// Mines all frequent itemsets of an attributed graph.
///
/// Returns itemsets in depth-first prefix order; each itemset's `items` are
/// sorted ascending.
pub fn eclat(graph: &AttributedGraph, config: &EclatConfig) -> Vec<FrequentItemset> {
    let mut out = Vec::new();
    eclat_visit(graph, config, |fi| out.push(fi.clone()));
    out
}

/// Visitor-based Eclat: calls `visit` for every frequent itemset without
/// retaining them (used when the caller streams results).
pub fn eclat_visit<F>(graph: &AttributedGraph, config: &EclatConfig, mut visit: F)
where
    F: FnMut(&FrequentItemset),
{
    assert!(config.min_support >= 1, "min_support must be at least 1");
    if config.max_size == 0 {
        return;
    }
    // Level-1 frequent items.
    let mut roots: Vec<(AttrId, Tidset)> = graph
        .attributes()
        .filter(|&a| graph.support(a) >= config.min_support)
        .map(|a| (a, Tidset::from_sorted(graph.vertices_with(a).to_vec())))
        .collect();
    // Ascending support order tends to shrink tidsets fastest.
    roots.sort_by_key(|(_, t)| t.support());

    let mut current = FrequentItemset {
        items: Vec::new(),
        tids: Tidset::new(),
    };
    extend(&roots, config, &mut current, &mut visit);
}

/// Recursive prefix-class extension.
fn extend<F>(
    class: &[(AttrId, Tidset)],
    config: &EclatConfig,
    current: &mut FrequentItemset,
    visit: &mut F,
) where
    F: FnMut(&FrequentItemset),
{
    for (i, (item, tids)) in class.iter().enumerate() {
        current.items.push(*item);
        let saved = std::mem::replace(&mut current.tids, tids.clone());
        current.items.sort_unstable();
        visit(current);
        // Build the next prefix class from the remaining items.
        if current.items.len() < config.max_size {
            let mut next_class: Vec<(AttrId, Tidset)> = Vec::new();
            for (other, other_tids) in class.iter().skip(i + 1) {
                // Fused intersect-and-threshold: abandons an extension as
                // soon as the remaining tids cannot reach min_support.
                if let Some(merged) = tids.intersect_min_support(other_tids, config.min_support) {
                    next_class.push((*other, merged));
                }
            }
            if !next_class.is_empty() {
                extend(&next_class, config, current, visit);
            }
        }
        // Restore state. `items` was sorted for the visit; remove `item` by
        // value.
        let pos = current.items.iter().position(|x| x == item).unwrap();
        current.items.remove(pos);
        current.tids = saved;
    }
}

/// Brute-force frequent itemset miner for cross-checking (exponential; only
/// for small attribute universes).
pub fn bruteforce(graph: &AttributedGraph, config: &EclatConfig) -> Vec<FrequentItemset> {
    let attrs: Vec<AttrId> = graph.attributes().collect();
    assert!(attrs.len() <= 20, "bruteforce is for small universes");
    let mut out = Vec::new();
    for mask in 1u32..(1 << attrs.len()) {
        let items: Vec<AttrId> = attrs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &a)| a)
            .collect();
        if items.len() > config.max_size {
            continue;
        }
        let tids = Tidset::from_sorted(graph.vertices_with_all(&items));
        if tids.support() >= config.min_support {
            out.push(FrequentItemset { items, tids });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::attributed::AttributedGraphBuilder;
    use scpm_graph::figure1::figure1;

    fn normalize(mut v: Vec<FrequentItemset>) -> Vec<(Vec<AttrId>, usize)> {
        let mut out: Vec<(Vec<AttrId>, usize)> = v
            .drain(..)
            .map(|fi| (fi.items.clone(), fi.support()))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn figure1_frequent_attributes() {
        let g = figure1();
        let result = eclat(
            &g,
            &EclatConfig {
                min_support: 3,
                max_size: usize::MAX,
            },
        );
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        let c = g.attr_id("C").unwrap();
        let d = g.attr_id("D").unwrap();
        let sets = normalize(result);
        // σ(A)=11, σ(B)=6, σ(C)=3, σ(D)=3, σ(E)=2 → E infrequent.
        assert!(sets.contains(&(vec![a], 11)));
        assert!(sets.contains(&(vec![b], 6)));
        assert!(sets.contains(&(vec![c], 3)));
        assert!(sets.contains(&(vec![d], 3)));
        assert!(sets.contains(&(vec![a, b], 6)));
        assert!(sets.contains(&(vec![a, c], 3)));
        assert!(sets.contains(&(vec![a, d], 3)));
        assert!(!sets
            .iter()
            .any(|(items, _)| items.contains(&g.attr_id("E").unwrap())));
        // {B,C}: only vertex 6 → infrequent at σmin=3.
        assert!(!sets.contains(&(vec![b, c], 1)));
    }

    #[test]
    fn eclat_matches_bruteforce() {
        let g = figure1();
        for min_support in 1..=6 {
            let cfg = EclatConfig {
                min_support,
                max_size: usize::MAX,
            };
            assert_eq!(
                normalize(eclat(&g, &cfg)),
                normalize(bruteforce(&g, &cfg)),
                "min_support {min_support}"
            );
        }
    }

    #[test]
    fn max_size_limits_depth() {
        let g = figure1();
        let cfg = EclatConfig {
            min_support: 1,
            max_size: 1,
        };
        let result = eclat(&g, &cfg);
        assert!(result.iter().all(|fi| fi.items.len() == 1));
        assert_eq!(result.len(), 5);
    }

    #[test]
    fn empty_when_support_unreachable() {
        let g = figure1();
        let cfg = EclatConfig {
            min_support: 12,
            max_size: usize::MAX,
        };
        assert!(eclat(&g, &cfg).is_empty());
    }

    #[test]
    fn tids_are_correct_vertex_sets() {
        let g = figure1();
        let cfg = EclatConfig {
            min_support: 3,
            max_size: usize::MAX,
        };
        for fi in eclat(&g, &cfg) {
            assert_eq!(
                fi.tids.as_slice(),
                g.vertices_with_all(&fi.items).as_slice(),
                "itemset {:?}",
                fi.items
            );
        }
    }

    #[test]
    fn single_vertex_graph() {
        let mut b = AttributedGraphBuilder::new(1);
        b.add_attr_named(0, "x");
        b.add_attr_named(0, "y");
        let g = b.build();
        let cfg = EclatConfig::default();
        let sets = normalize(eclat(&g, &cfg));
        assert_eq!(sets.len(), 3); // {x}, {y}, {x,y}
    }
}
