//! Frequent itemset mining substrate for structural correlation pattern
//! mining.
//!
//! In the attributed-graph setting, *items* are attributes, *transactions*
//! are vertices, and the tidset of an itemset `S` is the induced vertex set
//! `V(S)` — so support here is exactly the paper's `σ(S) = |V(S)|`. The
//! [`eclat`](fn@eclat) miner (Zaki, TKDE 2000) is used by the naive baseline; the
//! [`Tidset`] machinery is shared with the SCPM attribute-set search.

#![deny(missing_docs)]

pub mod apriori;
pub mod closed;
pub mod declat;
pub mod eclat;
pub mod tidset;

pub use apriori::{apriori, CountedItemset};
pub use closed::{closed_itemsets, ClosedItemset};
pub use declat::declat;
pub use eclat::{bruteforce, eclat, eclat_visit, EclatConfig, FrequentItemset};
pub use tidset::Tidset;
