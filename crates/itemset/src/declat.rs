//! dEclat — Eclat with *diffsets* (Zaki & Gouda; the diffset optimization
//! of the vertical miner in reference \[19\] of the paper).
//!
//! Instead of carrying the tidset `t(PX)` of every itemset, dEclat keeps
//! the **diffset** `d(PX) = t(P) \ t(PX)`: the transactions of the prefix
//! that the extension loses. Supports come from
//! `σ(PX) = σ(P) − |d(PX)|`, and at depth the recurrence
//! `d(PXY) = d(PY) \ d(PX)` needs only the two parents' diffsets. On
//! dense databases diffsets are far smaller than tidsets — the classic
//! trade: Eclat's intersections shrink with depth on sparse data, dEclat's
//! differences shrink with density.
//!
//! The miner returns exactly the same `(itemset, support)` pairs as
//! [`eclat`](fn@crate::eclat::eclat); the itemset benches compare the two representations
//! on the attribute databases of the paper's datasets.

use crate::apriori::CountedItemset;
use crate::eclat::EclatConfig;
use scpm_graph::attributed::{AttrId, AttributedGraph};

/// Sorted-set difference `a \ b`.
fn diff(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] > b[j] {
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
    out
}

/// One node of the prefix tree: the last item, the diffset w.r.t. the
/// parent prefix, and the absolute support.
struct Node {
    item: AttrId,
    diffset: Vec<u32>,
    support: usize,
}

/// Mines all frequent itemsets with diffsets. Output order is depth-first
/// prefix order; each itemset's `items` are sorted ascending.
pub fn declat(graph: &AttributedGraph, config: &EclatConfig) -> Vec<CountedItemset> {
    assert!(config.min_support >= 1, "min_support must be at least 1");
    let mut out = Vec::new();
    if config.max_size == 0 {
        return out;
    }
    // Level 1: diffsets relative to the universe are complements, but they
    // are never materialized — level-2 diffsets come from tidset
    // differences directly: d(XY) = t(X) \ t(Y).
    let mut roots: Vec<(AttrId, &[u32])> = graph
        .attributes()
        .filter(|&a| graph.support(a) >= config.min_support)
        .map(|a| (a, graph.vertices_with(a)))
        .collect();
    roots.sort_by_key(|&(_, t)| t.len());

    let mut prefix: Vec<AttrId> = Vec::new();
    for (i, &(item, tids)) in roots.iter().enumerate() {
        prefix.push(item);
        out.push(CountedItemset {
            items: sorted(&prefix),
            support: tids.len(),
        });
        if config.max_size > 1 {
            // Build the level-2 class under this root.
            let mut class: Vec<Node> = Vec::new();
            for &(other, other_tids) in roots.iter().skip(i + 1) {
                let d = diff(tids, other_tids);
                let support = tids.len() - d.len();
                if support >= config.min_support {
                    class.push(Node {
                        item: other,
                        diffset: d,
                        support,
                    });
                }
            }
            extend(&class, config, &mut prefix, &mut out);
        }
        prefix.pop();
    }
    out
}

/// Recursive prefix-class extension on diffsets:
/// `d(PXY) = d(PY) \ d(PX)`, `σ(PXY) = σ(PX) − |d(PXY)|`.
fn extend(
    class: &[Node],
    config: &EclatConfig,
    prefix: &mut Vec<AttrId>,
    out: &mut Vec<CountedItemset>,
) {
    for (i, node) in class.iter().enumerate() {
        prefix.push(node.item);
        out.push(CountedItemset {
            items: sorted(prefix),
            support: node.support,
        });
        if prefix.len() < config.max_size {
            let mut next: Vec<Node> = Vec::new();
            for other in class.iter().skip(i + 1) {
                let d = diff(&other.diffset, &node.diffset);
                let support = node.support - d.len();
                if support >= config.min_support {
                    next.push(Node {
                        item: other.item,
                        diffset: d,
                        support,
                    });
                }
            }
            if !next.is_empty() {
                extend(&next, config, prefix, out);
            }
        }
        prefix.pop();
    }
}

fn sorted(items: &[AttrId]) -> Vec<AttrId> {
    let mut v = items.to_vec();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eclat::eclat;
    use scpm_graph::figure1::figure1;

    fn normalize(v: Vec<CountedItemset>) -> Vec<(Vec<AttrId>, usize)> {
        let mut out: Vec<(Vec<AttrId>, usize)> =
            v.into_iter().map(|c| (c.items, c.support)).collect();
        out.sort();
        out
    }

    #[test]
    fn diff_basic() {
        assert_eq!(diff(&[1, 2, 3, 5], &[2, 4, 5]), vec![1, 3]);
        assert_eq!(diff(&[], &[1]), Vec::<u32>::new());
        assert_eq!(diff(&[1, 2], &[]), vec![1, 2]);
    }

    #[test]
    fn declat_matches_eclat_on_figure1() {
        let g = figure1();
        for min_support in 1..=6 {
            let cfg = EclatConfig {
                min_support,
                max_size: usize::MAX,
            };
            let de = normalize(declat(&g, &cfg));
            let ec: Vec<(Vec<AttrId>, usize)> = {
                let mut v: Vec<(Vec<AttrId>, usize)> = eclat(&g, &cfg)
                    .into_iter()
                    .map(|fi| (fi.items.clone(), fi.support()))
                    .collect();
                v.sort();
                v
            };
            assert_eq!(de, ec, "min_support {min_support}");
        }
    }

    #[test]
    fn declat_respects_max_size() {
        let g = figure1();
        let cfg = EclatConfig {
            min_support: 1,
            max_size: 2,
        };
        let result = declat(&g, &cfg);
        assert!(result.iter().all(|c| c.items.len() <= 2));
        assert!(result.iter().any(|c| c.items.len() == 2));
    }

    #[test]
    fn supports_are_true_intersection_sizes() {
        let g = figure1();
        let cfg = EclatConfig {
            min_support: 2,
            max_size: usize::MAX,
        };
        for c in declat(&g, &cfg) {
            assert_eq!(
                c.support,
                g.vertices_with_all(&c.items).len(),
                "itemset {:?}",
                c.items
            );
        }
    }
}
