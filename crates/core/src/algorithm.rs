//! The SCPM algorithm (Algorithms 2 and 3 of the paper).
//!
//! SCPM traverses the attribute-set lattice depth-first using vertical
//! tidset intersections (the Eclat prefix-class scheme the paper builds
//! on), computes the structural correlation of each frequent attribute set
//! via coverage search, emits top-k patterns for qualifying sets, and
//! prunes extensions with Theorems 4 and 5. Theorem 3 shrinks each induced
//! graph to the parents' covered vertices before mining.

use std::sync::Arc;
use std::time::Instant;

use scpm_graph::attributed::{AttrId, AttributedGraph};
use scpm_graph::csr::{intersect_into, VertexId};
use scpm_itemset::Tidset;
use scpm_quasiclique::{QuasiClique, SearchStats};

use crate::correlation::CorrelationEngine;
use crate::incremental::{EvalRecord, IncrementalCtx};
use crate::nullmodel::{AnalyticalModel, NullModelCache};
use crate::params::ScpmParams;
use crate::pattern::{AttributeSetReport, Pattern, ScpmResult};

/// Largest mining subgraph (by vertex count) an [`EnumEntry`] keeps alive
/// for child projection. Entries survive until their branch (or scheduler
/// task class) completes, so an uncapped frontier over hub attributes
/// would pin many large CSR copies simultaneously; over-cap entries store
/// `None` and their children fall back to global extraction (identical
/// results, pre-projection cost).
const PROJECT_RETAIN_MAX_VERTICES: usize = 1 << 14;

/// An attribute set queued for extension: its attributes, tidset `V(S)`,
/// covered set `K_S`, and (when one was built and is under
/// [`PROJECT_RETAIN_MAX_VERTICES`]) its mining subgraph `G[mining(S)]` —
/// children project their subgraphs out of it instead of re-extracting
/// from the global graph (`Arc` because the work-stealing driver shares
/// entries across workers).
#[derive(Clone, Debug)]
pub(crate) struct EnumEntry {
    pub attrs: Vec<AttrId>,
    pub tids: Tidset,
    pub cover: Vec<VertexId>,
    pub sub: Option<Arc<scpm_graph::induced::InducedSubgraph>>,
    /// Incremental runs only: whether this entry was replayed from the
    /// previous generation's memo, so its cover — and therefore the mining
    /// set it restricts its children to — is bit-identical to the previous
    /// run's. A child may only replay its own memo record when *both*
    /// parents are stable; entries evaluated live are conservatively
    /// unstable. Non-incremental runs never read the flag.
    pub stable: bool,
}

/// The SCPM miner. Construct once per graph/parameter combination and call
/// [`Scpm::run`].
///
/// ```
/// use scpm_core::{Scpm, ScpmParams};
/// use scpm_graph::figure1::figure1;
///
/// // Figure 1 with Table 1's parameters: σmin = 3, γmin = 0.6,
/// // min_size = 4, εmin = 0.5 — exactly seven patterns qualify.
/// let g = figure1();
/// let result = Scpm::new(&g, ScpmParams::new(3, 0.6, 4).with_eps_min(0.5)).run();
/// assert_eq!(result.patterns.len(), 7);
/// assert_eq!(result.stats.attribute_sets_qualified, 3); // {A}, {B}, {A,B}
/// ```
pub struct Scpm<'g> {
    graph: &'g AttributedGraph,
    params: ScpmParams,
    model: AnalyticalModel,
    incr: Option<IncrementalCtx>,
}

impl<'g> Scpm<'g> {
    /// Binds the algorithm to a graph and parameter set (building the
    /// analytical null model of Theorem 2 once).
    pub fn new(graph: &'g AttributedGraph, params: ScpmParams) -> Self {
        let model = AnalyticalModel::new(graph.graph(), &params.quasi_clique);
        Scpm {
            graph,
            params,
            model,
            incr: None,
        }
    }

    /// Like [`Scpm::new`], but memoizing `exp(σ)` in a caller-provided
    /// [`NullModelCache`]. Repeated runs over the *same graph* — parameter
    /// sweeps, the experiment binaries, the parallel driver's workers —
    /// share one cache so each support value is evaluated once globally.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use scpm_core::{NullModelCache, Scpm, ScpmParams};
    /// use scpm_graph::figure1::figure1;
    ///
    /// let g = figure1();
    /// let cache = Arc::new(NullModelCache::new());
    /// let params = ScpmParams::new(3, 0.6, 4);
    /// let first = Scpm::with_cache(&g, params.clone(), cache.clone()).run();
    /// let warm = Scpm::with_cache(&g, params, cache.clone()).run();
    ///
    /// // The second run found every exp(σ) it needed already memoized.
    /// assert!(cache.hits() > 0);
    /// assert_eq!(first.reports.len(), warm.reports.len());
    /// ```
    pub fn with_cache(
        graph: &'g AttributedGraph,
        params: ScpmParams,
        cache: Arc<NullModelCache>,
    ) -> Self {
        let model = AnalyticalModel::new(graph.graph(), &params.quasi_clique).with_cache(cache);
        Scpm {
            graph,
            params,
            model,
            incr: None,
        }
    }

    /// Binds the algorithm to a graph with a caller-supplied null model
    /// instead of deriving one from `graph`'s topology. This is the
    /// out-of-core driver's constructor: [`crate::segments`] evaluates
    /// attribute sets on per-segment *working* graphs (only the edges
    /// incident to the segment's tidsets), but ε must still be normalized
    /// against the **full** graph's degree distribution — a model built
    /// from the working graph would skew `exp(σ)` and flip δ decisions.
    ///
    /// The caller is responsible for `model` describing the same vertex
    /// universe `graph` was built over.
    pub fn with_model(
        graph: &'g AttributedGraph,
        params: ScpmParams,
        model: AnalyticalModel,
    ) -> Self {
        Scpm {
            graph,
            params,
            model,
            incr: None,
        }
    }

    /// Attaches an incremental context (see [`crate::incremental`]): a
    /// recording context fills an evaluation memo during an otherwise
    /// ordinary run; an update context additionally replays memo records
    /// for attribute sets outside the delta's dirty region. The run's
    /// reports, patterns and counters are byte-identical either way.
    pub fn with_incremental(mut self, ctx: IncrementalCtx) -> Self {
        self.incr = Some(ctx);
        self
    }

    /// Detaches the incremental context after a run, yielding the memo
    /// recorded for the next generation and this run's reuse counters.
    pub fn take_incremental(&mut self) -> Option<IncrementalCtx> {
        self.incr.take()
    }

    /// The shared `exp(σ)` memo of this run's null model.
    pub fn null_cache(&self) -> &Arc<NullModelCache> {
        self.model.cache()
    }

    /// The underlying null model (shared with examples and benches).
    pub fn model(&self) -> &AnalyticalModel {
        &self.model
    }

    /// The bound parameters.
    pub fn params(&self) -> &ScpmParams {
        &self.params
    }

    /// The bound graph.
    pub fn graph(&self) -> &AttributedGraph {
        self.graph
    }

    /// A correlation engine bound to this run's graph and parameters
    /// (useful for ad-hoc ε evaluations outside a full run).
    pub fn engine(&self) -> CorrelationEngine<'g> {
        CorrelationEngine::new(
            self.graph,
            self.params.quasi_clique,
            self.params.search_order,
            self.params.qc_prune,
            self.params.repr,
            self.params.prune.vertex_pruning,
        )
    }

    /// Runs SCPM and returns all reports, patterns and counters.
    pub fn run(&self) -> ScpmResult {
        let start = Instant::now();
        let engine = self.engine();
        let mut result = ScpmResult::default();
        let level1 = self.level1_entries(&engine, &mut result);
        self.enumerate_class(&engine, &level1, &mut result);
        result.stats.elapsed = start.elapsed();
        result
    }

    /// Level 1 of Algorithm 2: frequent single attributes, their ε/δ and
    /// the survivors of the extension gates.
    pub(crate) fn level1_entries(
        &self,
        engine: &CorrelationEngine<'g>,
        result: &mut ScpmResult,
    ) -> Vec<EnumEntry> {
        let mut entries = Vec::new();
        for a in self.graph.attributes() {
            if self.graph.support(a) < self.params.sigma_min {
                continue;
            }
            let tids = Tidset::from_sorted(self.graph.vertices_with(a).to_vec());
            if let Some(entry) = self.evaluate(engine, vec![a], tids, None, None, true, result) {
                entries.push(entry);
            }
        }
        entries
    }

    /// Evaluates one attribute set: computes ε and δ_lb (projecting the
    /// mining subgraph from `parent_sub` when the caller holds one),
    /// records the report, emits top-k patterns when the set qualifies
    /// (reusing the coverage subgraph), and returns an [`EnumEntry`] when
    /// the Theorem 4/5 gates allow extension.
    ///
    /// `parents_stable` feeds the incremental replay gate: it must be true
    /// only when every parent entry's cover is bit-identical to the
    /// previous generation's (level 1 has no parents and passes `true`).
    /// Under an update context, a clean set with stable parents and a memo
    /// record is replayed instead of searched — producing byte-identical
    /// reports, patterns and counters (see [`crate::incremental`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn evaluate(
        &self,
        engine: &CorrelationEngine<'g>,
        attrs: Vec<AttrId>,
        tids: Tidset,
        parent_cover: Option<&[VertexId]>,
        parent_sub: Option<&scpm_graph::induced::InducedSubgraph>,
        parents_stable: bool,
        result: &mut ScpmResult,
    ) -> Option<EnumEntry> {
        let replayed = self
            .incr
            .as_ref()
            .and_then(|ctx| ctx.replayable(&attrs, parents_stable).cloned());
        if let Some(record) = replayed {
            return self.replay(engine, attrs, tids, parent_cover, record, result);
        }
        let support = tids.support();
        let outcome = engine.epsilon_projected(tids.as_slice(), parent_cover, parent_sub);
        let sub_built = outcome.sub.is_some();
        result.stats.attribute_sets_examined += 1;
        result.stats.qc_nodes_coverage += outcome.stats.nodes_visited;
        result.stats.qc_edge_tests += outcome.stats.edge_tests;
        result.stats.qc_kernel_ops += outcome.stats.kernel_ops;
        result.stats.qc_fused_ops += outcome.stats.fused_ops;
        result.stats.qc_blocks_skipped += outcome.stats.blocks_skipped;
        result.stats.qc_probes_elided += outcome.stats.probes_elided;
        result.stats.qc_batch_ops += outcome.stats.batch_ops;
        let epsilon = outcome.epsilon;
        let delta_lb = self.model.normalize(epsilon, support);
        let qualified = epsilon >= self.params.eps_min && delta_lb >= self.params.delta_min;
        let mut live_ops = outcome.stats.kernel_ops;
        let mut topk: Option<(Vec<QuasiClique>, SearchStats)> = None;

        if attrs.len() >= self.params.min_attrs {
            result.reports.push(AttributeSetReport {
                attrs: attrs.clone(),
                support,
                covered: outcome.covered.len(),
                epsilon,
                delta_lb,
                qualified,
            });
            if qualified {
                result.stats.attribute_sets_qualified += 1;
                // The top-k search runs on the same mining set as the
                // coverage search — reuse its subgraph verbatim.
                if let Some(sub) = outcome.sub.as_deref() {
                    let (cliques, tk_stats) = engine.top_k_on(sub, self.params.k);
                    live_ops += tk_stats.kernel_ops;
                    result.stats.qc_nodes_topk += tk_stats.nodes_visited;
                    result.stats.qc_edge_tests += tk_stats.edge_tests;
                    result.stats.qc_kernel_ops += tk_stats.kernel_ops;
                    result.stats.qc_fused_ops += tk_stats.fused_ops;
                    result.stats.qc_blocks_skipped += tk_stats.blocks_skipped;
                    result.stats.qc_probes_elided += tk_stats.probes_elided;
                    result.stats.qc_batch_ops += tk_stats.batch_ops;
                    for clique in &cliques {
                        result.patterns.push(Pattern {
                            attrs: attrs.clone(),
                            clique: clique.clone(),
                        });
                    }
                    topk = Some((cliques, tk_stats));
                }
            }
        } else if qualified {
            result.stats.attribute_sets_qualified += 1;
        }

        if let Some(ctx) = &self.incr {
            ctx.count_live(live_ops);
            ctx.store(
                &attrs,
                EvalRecord {
                    support,
                    epsilon,
                    covered: outcome.covered.clone(),
                    coverage_stats: outcome.stats,
                    sub_built,
                    topk,
                },
            );
        }

        // Extension gates (Theorems 4 and 5): `|K_S|` bounds `ε`/`δ` of any
        // superset with support ≥ σmin.
        if attrs.len() >= self.params.max_attrs {
            return None;
        }
        let covered_count = outcome.covered.len() as f64;
        let sigma_min = self.params.sigma_min as f64;
        if self.params.prune.eps_pruning && covered_count < self.params.eps_min * sigma_min {
            result.stats.pruned_eps_bound += 1;
            return None;
        }
        if self.params.prune.delta_pruning {
            let exp_floor = self.model.expected(self.params.sigma_min);
            if covered_count < self.params.delta_min * exp_floor * sigma_min {
                result.stats.pruned_delta_bound += 1;
                return None;
            }
        }
        // Retain the mining subgraph for child projection only when it is
        // modestly sized: a frontier entry lives until its whole branch
        // (or, under the work-stealing driver, its task class) drains, so
        // retaining hub-attribute subgraphs without a cap would hold many
        // large CSR copies at once. Children of an over-cap entry extract
        // from the global graph — the pre-projection behavior, identical
        // results.
        let sub = outcome
            .sub
            .filter(|s| s.num_vertices() <= PROJECT_RETAIN_MAX_VERTICES);
        Some(EnumEntry {
            attrs,
            tids,
            cover: outcome.covered,
            sub,
            stable: false,
        })
    }

    /// The replay twin of [`Scpm::evaluate`]: reproduces the fresh path's
    /// reports, patterns, counters and gate decisions from a memo record,
    /// without a coverage search. Sound because the set is clean (its
    /// `V(S)` and `G(S)` are unchanged, so ε and `K_S` are too) and its
    /// parents are stable (so the restricted mining set — and with it every
    /// search counter — is bit-identical). δ_lb and the Theorem-5 floor are
    /// recomputed against the *new* graph's null model, so qualification
    /// may flip even for a clean set; a set that turns qualified here runs
    /// its first top-k search live (the global-extraction search is
    /// byte-equivalent to the projected one a full mine would run).
    fn replay(
        &self,
        engine: &CorrelationEngine<'g>,
        attrs: Vec<AttrId>,
        tids: Tidset,
        parent_cover: Option<&[VertexId]>,
        record: EvalRecord,
        result: &mut ScpmResult,
    ) -> Option<EnumEntry> {
        let ctx = self.incr.as_ref().expect("replay without a context");
        let support = tids.support();
        debug_assert_eq!(
            support, record.support,
            "replayed a set whose support changed — dirty-set bug"
        );
        result.stats.attribute_sets_examined += 1;
        result.stats.qc_nodes_coverage += record.coverage_stats.nodes_visited;
        result.stats.qc_edge_tests += record.coverage_stats.edge_tests;
        result.stats.qc_kernel_ops += record.coverage_stats.kernel_ops;
        result.stats.qc_fused_ops += record.coverage_stats.fused_ops;
        result.stats.qc_blocks_skipped += record.coverage_stats.blocks_skipped;
        result.stats.qc_probes_elided += record.coverage_stats.probes_elided;
        result.stats.qc_batch_ops += record.coverage_stats.batch_ops;
        let epsilon = record.epsilon;
        let delta_lb = self.model.normalize(epsilon, support);
        let qualified = epsilon >= self.params.eps_min && delta_lb >= self.params.delta_min;
        let mut reused_ops = record.coverage_stats.kernel_ops;
        let mut topk = record.topk.clone();

        if attrs.len() >= self.params.min_attrs {
            result.reports.push(AttributeSetReport {
                attrs: attrs.clone(),
                support,
                covered: record.covered.len(),
                epsilon,
                delta_lb,
                qualified,
            });
            if qualified {
                result.stats.attribute_sets_qualified += 1;
                if record.sub_built {
                    let (cliques, tk_stats) = match topk.take() {
                        Some((cliques, tk_stats)) => {
                            reused_ops += tk_stats.kernel_ops;
                            (cliques, tk_stats)
                        }
                        None => engine.top_k(tids.as_slice(), parent_cover, self.params.k),
                    };
                    result.stats.qc_nodes_topk += tk_stats.nodes_visited;
                    result.stats.qc_edge_tests += tk_stats.edge_tests;
                    result.stats.qc_kernel_ops += tk_stats.kernel_ops;
                    result.stats.qc_fused_ops += tk_stats.fused_ops;
                    result.stats.qc_blocks_skipped += tk_stats.blocks_skipped;
                    result.stats.qc_probes_elided += tk_stats.probes_elided;
                    result.stats.qc_batch_ops += tk_stats.batch_ops;
                    for clique in &cliques {
                        result.patterns.push(Pattern {
                            attrs: attrs.clone(),
                            clique: clique.clone(),
                        });
                    }
                    topk = Some((cliques, tk_stats));
                }
            }
        } else if qualified {
            result.stats.attribute_sets_qualified += 1;
        }

        ctx.count_reuse(reused_ops);
        ctx.store(
            &attrs,
            EvalRecord {
                support,
                epsilon,
                covered: record.covered.clone(),
                coverage_stats: record.coverage_stats,
                sub_built: record.sub_built,
                topk,
            },
        );

        if attrs.len() >= self.params.max_attrs {
            return None;
        }
        let covered_count = record.covered.len() as f64;
        let sigma_min = self.params.sigma_min as f64;
        if self.params.prune.eps_pruning && covered_count < self.params.eps_min * sigma_min {
            result.stats.pruned_eps_bound += 1;
            return None;
        }
        if self.params.prune.delta_pruning {
            let exp_floor = self.model.expected(self.params.sigma_min);
            if covered_count < self.params.delta_min * exp_floor * sigma_min {
                result.stats.pruned_delta_bound += 1;
                return None;
            }
        }
        // No retained subgraph: children that evaluate live fall back to
        // global extraction, which is byte-equivalent to projection.
        Some(EnumEntry {
            attrs,
            tids,
            cover: record.covered,
            sub: None,
            stable: true,
        })
    }

    /// Algorithm 3 over a prefix class: every entry is extended with each
    /// later entry of the same class, depth-first.
    pub(crate) fn enumerate_class(
        &self,
        engine: &CorrelationEngine<'g>,
        class: &[EnumEntry],
        result: &mut ScpmResult,
    ) {
        for i in 0..class.len() {
            self.enumerate_branch(engine, class, i, result);
        }
    }

    /// One branch of Algorithm 3: extends `class[i]` with every later
    /// sibling, then recurses into the new class.
    pub(crate) fn enumerate_branch(
        &self,
        engine: &CorrelationEngine<'g>,
        class: &[EnumEntry],
        i: usize,
        result: &mut ScpmResult,
    ) {
        let next = self.extend_branch(engine, class, i, result);
        if !next.is_empty() {
            self.enumerate_class(engine, &next, result);
        }
    }

    /// The extension step of one branch, *without* the recursion: evaluates
    /// every `class[i] ∪ {sibling}` (emitting their reports/patterns into
    /// `result` in sibling order) and returns the surviving child class.
    /// [`Scpm::enumerate_branch`] recurses on the return value; the
    /// work-stealing driver instead turns each child branch into a
    /// stealable task.
    pub(crate) fn extend_branch(
        &self,
        engine: &CorrelationEngine<'g>,
        class: &[EnumEntry],
        i: usize,
        result: &mut ScpmResult,
    ) -> Vec<EnumEntry> {
        let mut next: Vec<EnumEntry> = Vec::new();
        let mut cover_buf: Vec<VertexId> = Vec::new();
        for j in (i + 1)..class.len() {
            if let Some(entry) = self.extend_pair(engine, class, i, j, &mut cover_buf, result) {
                next.push(entry);
            }
        }
        next
    }

    /// One iteration of the extension loop: evaluates
    /// `class[i] ∪ {class[j]}`'s new attribute, emitting its report into
    /// `result` and returning the child [`EnumEntry`] when the set stays
    /// extensible. `cover_buf` is caller-provided scratch for the
    /// Theorem 3 cover intersection. This is the work-stealing driver's
    /// finest task granularity.
    pub(crate) fn extend_pair(
        &self,
        engine: &CorrelationEngine<'g>,
        class: &[EnumEntry],
        i: usize,
        j: usize,
        cover_buf: &mut Vec<VertexId>,
        result: &mut ScpmResult,
    ) -> Option<EnumEntry> {
        self.extend_pair_refs(engine, &class[i], &class[j], cover_buf, result)
    }

    /// [`Scpm::extend_pair`] on explicit entry references. The out-of-core
    /// driver ([`crate::segments`]) calls this with `sibling` entries it
    /// materializes one at a time from spilled covers and the mapped
    /// inverted index, so a root's whole sibling class never has to be
    /// resident at once.
    pub(crate) fn extend_pair_refs(
        &self,
        engine: &CorrelationEngine<'g>,
        base: &EnumEntry,
        sibling: &EnumEntry,
        cover_buf: &mut Vec<VertexId>,
        result: &mut ScpmResult,
    ) -> Option<EnumEntry> {
        // Fused intersect-and-threshold: the σmin gate abandons the merge
        // as soon as the remaining tids cannot reach it.
        let Some(tids) = base
            .tids
            .intersect_min_support(&sibling.tids, self.params.sigma_min)
        else {
            result.stats.pruned_support += 1;
            return None;
        };
        let mut attrs = base.attrs.clone();
        attrs.push(*sibling.attrs.last().expect("non-empty attribute set"));
        // Theorem 3: the child's cover is contained in both parents'.
        let parent_cover = if self.params.prune.vertex_pruning {
            intersect_into(&base.cover, &sibling.cover, cover_buf);
            Some(cover_buf.as_slice())
        } else {
            None
        };
        // The child's mining set is contained in `base`'s (the tidset
        // shrinks, and the cover restriction lies inside `base`'s mining
        // set), so the child subgraph projects out of `base.sub`.
        self.evaluate(
            engine,
            attrs,
            tids,
            parent_cover,
            base.sub.as_deref(),
            base.stable && sibling.stable,
            result,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::figure1::{figure1, paper_vertex};

    fn table1_params() -> ScpmParams {
        ScpmParams::new(3, 0.6, 4).with_eps_min(0.5)
    }

    #[test]
    fn figure1_qualifying_sets_match_table1() {
        let g = figure1();
        let scpm = Scpm::new(&g, table1_params());
        let result = scpm.run();
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        let mut qualified: Vec<Vec<AttrId>> = result
            .reports
            .iter()
            .filter(|r| r.qualified)
            .map(|r| r.attrs.clone())
            .collect();
        qualified.sort();
        let mut expect = vec![vec![a], vec![b], vec![a, b]];
        expect.sort();
        assert_eq!(qualified, expect);
    }

    #[test]
    fn figure1_pattern_rows_match_table1() {
        let g = figure1();
        let result = Scpm::new(&g, table1_params()).run();
        // Table 1 has exactly 7 rows.
        assert_eq!(result.patterns.len(), 7);
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        let set = |labels: &[u32]| -> Vec<u32> {
            let mut v: Vec<u32> = labels.iter().map(|&l| paper_vertex(l)).collect();
            v.sort_unstable();
            v
        };
        let mut rows: Vec<(Vec<AttrId>, Vec<u32>)> = result
            .patterns
            .iter()
            .map(|p| (p.attrs.clone(), p.clique.vertices.clone()))
            .collect();
        rows.sort();
        let mut expect = vec![
            (vec![a], set(&[6, 7, 8, 9, 10, 11])),
            (vec![a], set(&[3, 4, 5, 6])),
            (vec![a], set(&[3, 4, 6, 7])),
            (vec![a], set(&[3, 5, 6, 7])),
            (vec![a], set(&[3, 6, 7, 8])),
            (vec![b], set(&[6, 7, 8, 9, 10, 11])),
            (vec![a, b], set(&[6, 7, 8, 9, 10, 11])),
        ];
        expect.sort();
        assert_eq!(rows, expect);
    }

    #[test]
    fn figure1_epsilon_and_support_columns() {
        let g = figure1();
        let result = Scpm::new(&g, table1_params()).run();
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        let ra = result.report_for(&[a]).unwrap();
        assert_eq!(ra.support, 11);
        assert!((ra.epsilon - 9.0 / 11.0).abs() < 1e-12);
        let rab = result.report_for(&[a, b]).unwrap();
        assert_eq!(rab.support, 6);
        assert!((rab.epsilon - 1.0).abs() < 1e-12);
        let rb = result.report_for(&[b]).unwrap();
        assert_eq!(rb.support, 6);
        assert!((rb.epsilon - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eps_min_filters_but_does_not_block_extension() {
        // With εmin = 0.9 the set {A} (ε = 0.82) must not qualify, yet
        // {A,B} (ε = 1.0) must still be found.
        let g = figure1();
        let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.9);
        let result = Scpm::new(&g, params).run();
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        assert!(!result.report_for(&[a]).unwrap().qualified);
        assert!(result.report_for(&[a, b]).unwrap().qualified);
    }

    #[test]
    fn top_k_limits_patterns_per_set() {
        let g = figure1();
        let params = table1_params().with_top_k(1);
        let result = Scpm::new(&g, params).run();
        let a = g.attr_id("A").unwrap();
        let pa = result.patterns_for(&[a]);
        assert_eq!(pa.len(), 1);
        // The largest pattern for {A} is the size-6 quasi-clique.
        assert_eq!(pa[0].clique.size(), 6);
    }

    #[test]
    fn min_attrs_suppresses_singleton_reports() {
        let g = figure1();
        let params = table1_params().with_min_attrs(2);
        let result = Scpm::new(&g, params).run();
        assert!(result.reports.iter().all(|r| r.attrs.len() >= 2));
        // {A,B} still present.
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        assert!(result.report_for(&[a, b]).is_some());
    }

    #[test]
    fn max_attrs_limits_depth() {
        let g = figure1();
        let params = ScpmParams::new(1, 0.6, 4).with_max_attrs(1);
        let result = Scpm::new(&g, params).run();
        assert!(result.reports.iter().all(|r| r.attrs.len() == 1));
    }

    #[test]
    fn stats_counters_track_run() {
        let g = figure1();
        let result = Scpm::new(&g, table1_params()).run();
        // Level 1 examines {A}, {B}, {C}, {D} (E is infrequent); {C} and
        // {D} have |K| = 0 and are Theorem-4 pruned, so only {A,B} is
        // examined at level 2.
        assert_eq!(result.stats.attribute_sets_examined, 5);
        assert_eq!(result.stats.pruned_eps_bound, 2);
        assert_eq!(result.stats.attribute_sets_qualified, 3);
        assert!(result.stats.qc_nodes_coverage > 0);
        assert!(result.stats.elapsed.as_nanos() > 0);
    }
}
