//! Parameters of the structural correlation pattern mining problem
//! (Definition 4 plus the algorithmic knobs of §3.2).

use scpm_quasiclique::{PruneFlags, QcConfig, Representation, SearchOrder};

/// Switches for SCPM's attribute-level pruning rules (Theorems 3–5). Used
/// by ablation benches; disabling a rule never changes results.
#[derive(Clone, Copy, Debug)]
pub struct ScpmPruneFlags {
    /// Theorem 3: restrict each induced graph to the parents' covered sets.
    pub vertex_pruning: bool,
    /// Theorem 4: stop extending `S` when `|K_S| < εmin·σmin`.
    pub eps_pruning: bool,
    /// Theorem 5: stop extending `S` when `|K_S| < δmin·exp(σmin)·σmin`.
    pub delta_pruning: bool,
}

impl Default for ScpmPruneFlags {
    fn default() -> Self {
        ScpmPruneFlags {
            vertex_pruning: true,
            eps_pruning: true,
            delta_pruning: true,
        }
    }
}

/// Full parameter set of an SCPM run.
#[derive(Clone, Debug)]
pub struct ScpmParams {
    /// Minimum attribute-set support `σmin`.
    pub sigma_min: usize,
    /// Quasi-clique density `γmin` and size `min_size`.
    pub quasi_clique: QcConfig,
    /// Minimum structural correlation `εmin`.
    pub eps_min: f64,
    /// Minimum normalized structural correlation `δmin` (applied to the
    /// analytical lower bound `δ_lb`).
    pub delta_min: f64,
    /// Number of top patterns reported per qualifying attribute set.
    pub k: usize,
    /// Traversal order of the quasi-clique search (SCPM-BFS / SCPM-DFS).
    pub search_order: SearchOrder,
    /// Upper bound on attribute-set size (`usize::MAX` = unbounded).
    pub max_attrs: usize,
    /// Minimum attribute-set size for *reporting* (the paper's case
    /// studies use 2 for DBLP); sets of any size are still traversed.
    pub min_attrs: usize,
    /// Attribute-level pruning switches.
    pub prune: ScpmPruneFlags,
    /// Quasi-clique-level pruning switches.
    pub qc_prune: PruneFlags,
    /// Engine hot-loop representation (packed bitsets by default; the
    /// sorted-slice baseline is selectable for A/B runs — results are
    /// identical either way, see `docs/PERFORMANCE.md`).
    pub repr: Representation,
}

impl ScpmParams {
    /// Baseline parameters: everything permissive except the required
    /// thresholds.
    pub fn new(sigma_min: usize, gamma_min: f64, min_size: usize) -> Self {
        ScpmParams {
            sigma_min: sigma_min.max(1),
            quasi_clique: QcConfig::new(gamma_min, min_size),
            eps_min: 0.0,
            delta_min: 0.0,
            k: usize::MAX,
            search_order: SearchOrder::Dfs,
            max_attrs: usize::MAX,
            min_attrs: 1,
            prune: ScpmPruneFlags::default(),
            qc_prune: PruneFlags::default(),
            repr: Representation::default(),
        }
    }

    /// Sets `εmin`, builder style.
    pub fn with_eps_min(mut self, eps_min: f64) -> Self {
        self.eps_min = eps_min;
        self
    }

    /// Sets `δmin`, builder style.
    pub fn with_delta_min(mut self, delta_min: f64) -> Self {
        self.delta_min = delta_min;
        self
    }

    /// Sets the per-attribute-set top-`k`, builder style.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the search order, builder style.
    pub fn with_order(mut self, order: SearchOrder) -> Self {
        self.search_order = order;
        self
    }

    /// Sets the reporting size floor, builder style.
    pub fn with_min_attrs(mut self, min_attrs: usize) -> Self {
        self.min_attrs = min_attrs.max(1);
        self
    }

    /// Sets the traversal size cap, builder style.
    pub fn with_max_attrs(mut self, max_attrs: usize) -> Self {
        self.max_attrs = max_attrs.max(1);
        self
    }

    /// Sets the engine hot-loop representation, builder style.
    pub fn with_repr(mut self, repr: Representation) -> Self {
        self.repr = repr;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let p = ScpmParams::new(10, 0.5, 4)
            .with_eps_min(0.1)
            .with_delta_min(2.0)
            .with_top_k(5)
            .with_order(SearchOrder::Bfs)
            .with_min_attrs(2)
            .with_max_attrs(3);
        assert_eq!(p.sigma_min, 10);
        assert_eq!(p.quasi_clique.min_size, 4);
        assert_eq!(p.eps_min, 0.1);
        assert_eq!(p.delta_min, 2.0);
        assert_eq!(p.k, 5);
        assert_eq!(p.search_order, SearchOrder::Bfs);
        assert_eq!(p.min_attrs, 2);
        assert_eq!(p.max_attrs, 3);
    }

    #[test]
    fn sigma_min_floors_at_one() {
        let p = ScpmParams::new(0, 0.5, 4);
        assert_eq!(p.sigma_min, 1);
    }
}
