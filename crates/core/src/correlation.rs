//! Structural correlation computation (Definition 2 and §3.2.2).
//!
//! For an attribute set `S` with induced vertex set `V(S)`, the structural
//! correlation is `ε(S) = |K_S| / |V(S)|` where `K_S` is the set of
//! vertices of `G(S)` covered by γ-quasi-cliques. Coverage is computed by
//! the quasi-clique engine in coverage mode — no full enumeration needed.
//!
//! Theorem 3 (vertex pruning) is applied here: for `S ⊇ S_parent`,
//! `K_S ⊆ K_parent`, so vertices of `V(S) \ K_parent` can be deleted from
//! the mining graph before the search (they still count in the support
//! denominator).

use std::cell::RefCell;

use scpm_graph::attributed::AttributedGraph;
use scpm_graph::csr::{intersect_into, VertexId};
use scpm_graph::induced::InducedSubgraph;
use scpm_quasiclique::{
    EngineScratch, Miner, MiningMode, MiningOutcome, PruneFlags, QcConfig, QuasiClique, SearchOrder,
};

/// Result of one structural correlation evaluation.
#[derive(Clone, Debug)]
pub struct CorrelationOutcome {
    /// Covered vertices `K_S`, sorted global ids.
    pub covered: Vec<VertexId>,
    /// `ε(S) = |K_S| / |V(S)|` (0 when the support is 0).
    pub epsilon: f64,
    /// Nodes visited by the coverage search.
    pub qc_nodes: u64,
}

/// Evaluates `ε` and mines top-k patterns on induced subgraphs.
///
/// The engine owns reusable quasi-clique scratch memory, so repeated
/// evaluations (one per attribute set in a mining run) recycle their
/// buffers; the parallel driver gives each worker its own engine. That
/// interior scratch makes the engine `Send` but not `Sync` — share the
/// graph, not the engine.
///
/// ```
/// use scpm_core::{Scpm, ScpmParams};
/// use scpm_graph::figure1::figure1;
///
/// let g = figure1();
/// let scpm = Scpm::new(&g, ScpmParams::new(3, 0.6, 4));
/// let engine = scpm.engine();
///
/// // ε({A}) = 9/11: nine of A's eleven vertices are covered by
/// // 0.6-quasi-cliques of size ≥ 4 inside G({A}).
/// let a = g.attr_id("A").unwrap();
/// let outcome = engine.epsilon(g.vertices_with(a), None);
/// assert_eq!(outcome.covered.len(), 9);
/// assert!((outcome.epsilon - 9.0 / 11.0).abs() < 1e-12);
/// ```
pub struct CorrelationEngine<'g> {
    graph: &'g AttributedGraph,
    cfg: QcConfig,
    order: SearchOrder,
    prune: PruneFlags,
    /// Apply Theorem 3 restriction when a parent cover is provided.
    vertex_pruning: bool,
    /// Reusable quasi-clique search buffers, recycled across evaluations.
    scratch: RefCell<EngineScratch>,
}

impl<'g> CorrelationEngine<'g> {
    /// Creates an engine bound to an attributed graph.
    pub fn new(
        graph: &'g AttributedGraph,
        cfg: QcConfig,
        order: SearchOrder,
        prune: PruneFlags,
        vertex_pruning: bool,
    ) -> Self {
        CorrelationEngine {
            graph,
            cfg,
            order,
            prune,
            vertex_pruning,
            scratch: RefCell::new(EngineScratch::new()),
        }
    }

    /// The mining vertex set for `S`: `V(S)` restricted by the parent cover
    /// when Theorem 3 is active.
    fn mining_set(
        &self,
        vertices: &[VertexId],
        parent_cover: Option<&[VertexId]>,
    ) -> Vec<VertexId> {
        match parent_cover {
            Some(cover) if self.vertex_pruning => {
                let mut out = Vec::with_capacity(cover.len().min(vertices.len()));
                intersect_into(vertices, cover, &mut out);
                out
            }
            _ => vertices.to_vec(),
        }
    }

    /// Computes `ε(S)` given `V(S)` (sorted global ids) and, optionally,
    /// the parents' covered set for Theorem 3 restriction.
    pub fn epsilon(
        &self,
        vertices: &[VertexId],
        parent_cover: Option<&[VertexId]>,
    ) -> CorrelationOutcome {
        if vertices.is_empty() {
            return CorrelationOutcome {
                covered: Vec::new(),
                epsilon: 0.0,
                qc_nodes: 0,
            };
        }
        let mining = self.mining_set(vertices, parent_cover);
        if mining.len() < self.cfg.min_size {
            return CorrelationOutcome {
                covered: Vec::new(),
                epsilon: 0.0,
                qc_nodes: 0,
            };
        }
        let sub = InducedSubgraph::extract(self.graph.graph(), &mining);
        let outcome = self.run_miner(&sub.graph, MiningMode::Coverage);
        let covered: Vec<VertexId> = outcome
            .covered
            .iter()
            .map(|&local| sub.to_original(local))
            .collect();
        let epsilon = covered.len() as f64 / vertices.len() as f64;
        CorrelationOutcome {
            covered,
            epsilon,
            qc_nodes: outcome.stats.nodes_visited,
        }
    }

    /// Mines the top-`k` patterns of `G(S)` (size primary, density
    /// secondary), with the same Theorem 3 restriction as [`Self::epsilon`].
    /// Returns cliques in global ids plus the nodes visited.
    pub fn top_k(
        &self,
        vertices: &[VertexId],
        parent_cover: Option<&[VertexId]>,
        k: usize,
    ) -> (Vec<QuasiClique>, u64) {
        if k == 0 || vertices.is_empty() {
            return (Vec::new(), 0);
        }
        let mining = self.mining_set(vertices, parent_cover);
        if mining.len() < self.cfg.min_size {
            return (Vec::new(), 0);
        }
        let sub = InducedSubgraph::extract(self.graph.graph(), &mining);
        let outcome = self.run_miner(&sub.graph, MiningMode::TopK(k));
        let cliques = relabel(&sub, outcome);
        (cliques.0, cliques.1)
    }

    /// Enumerates *all* maximal quasi-cliques of `G(S)` (used by the naive
    /// baseline; no Theorem 3 restriction is applied).
    pub fn enumerate_all(&self, vertices: &[VertexId]) -> (Vec<QuasiClique>, u64) {
        if vertices.len() < self.cfg.min_size {
            return (Vec::new(), 0);
        }
        let sub = InducedSubgraph::extract(self.graph.graph(), vertices);
        let outcome = self.run_miner(&sub.graph, MiningMode::EnumerateMaximal);
        relabel(&sub, outcome)
    }

    /// Runs one configured search over `g`, reusing the engine's scratch.
    fn run_miner(&self, g: &scpm_graph::csr::CsrGraph, mode: MiningMode) -> MiningOutcome {
        Miner::new(g, self.cfg)
            .with_order(self.order)
            .with_prune(self.prune)
            .run_with(mode, &mut self.scratch.borrow_mut())
    }
}

/// Maps a mining outcome's cliques back to global vertex ids.
fn relabel(sub: &InducedSubgraph, outcome: MiningOutcome) -> (Vec<QuasiClique>, u64) {
    let cliques = outcome
        .cliques
        .into_iter()
        .map(|q| QuasiClique {
            vertices: sub.to_original_set(&q.vertices),
            min_degree_ratio: q.min_degree_ratio,
            edge_density: q.edge_density,
        })
        .collect();
    (cliques, outcome.stats.nodes_visited)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::figure1::{figure1, paper_vertex};

    fn engine(g: &AttributedGraph) -> CorrelationEngine<'_> {
        CorrelationEngine::new(
            g,
            QcConfig::new(0.6, 4),
            SearchOrder::Dfs,
            PruneFlags::default(),
            true,
        )
    }

    #[test]
    fn figure1_epsilon_values_match_paper() {
        let g = figure1();
        let eng = engine(&g);
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        let c = g.attr_id("C").unwrap();

        let va = g.vertices_with(a).to_vec();
        let out_a = eng.epsilon(&va, None);
        assert!((out_a.epsilon - 9.0 / 11.0).abs() < 1e-12);

        let vc = g.vertices_with(c).to_vec();
        assert_eq!(eng.epsilon(&vc, None).epsilon, 0.0);

        let vab = g.vertices_with_all(&[a, b]);
        let out_ab = eng.epsilon(&vab, None).epsilon;
        assert!((out_ab - 1.0).abs() < 1e-12);

        let vb = g.vertices_with(b).to_vec();
        assert!((eng.epsilon(&vb, None).epsilon - 1.0).abs() < 1e-12);
    }

    #[test]
    fn theorem3_restriction_preserves_epsilon() {
        let g = figure1();
        let eng = engine(&g);
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        let va = g.vertices_with(a).to_vec();
        let k_a = eng.epsilon(&va, None).covered;
        let vab = g.vertices_with_all(&[a, b]);
        let with_parent = eng.epsilon(&vab, Some(&k_a));
        let without = eng.epsilon(&vab, None);
        assert_eq!(with_parent.covered, without.covered);
        assert_eq!(with_parent.epsilon, without.epsilon);
    }

    #[test]
    fn top_k_patterns_for_attribute_a() {
        let g = figure1();
        let eng = engine(&g);
        let a = g.attr_id("A").unwrap();
        let va = g.vertices_with(a).to_vec();
        let (top, _) = eng.top_k(&va, None, 2);
        assert_eq!(top.len(), 2);
        let six: Vec<u32> = (6..=11).map(paper_vertex).collect();
        assert_eq!(top[0].vertices, six);
        let clique: Vec<u32> = (3..=6).map(paper_vertex).collect();
        assert_eq!(top[1].vertices, clique);
    }

    #[test]
    fn enumerate_all_counts_five_for_a() {
        let g = figure1();
        let eng = engine(&g);
        let a = g.attr_id("A").unwrap();
        let (all, _) = eng.enumerate_all(g.vertices_with(a));
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let g = figure1();
        let eng = engine(&g);
        assert_eq!(eng.epsilon(&[], None).epsilon, 0.0);
        assert_eq!(eng.epsilon(&[0, 1], None).epsilon, 0.0); // below min_size
        assert!(eng.top_k(&[], None, 3).0.is_empty());
    }
}
