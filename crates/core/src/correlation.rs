//! Structural correlation computation (Definition 2 and §3.2.2).
//!
//! For an attribute set `S` with induced vertex set `V(S)`, the structural
//! correlation is `ε(S) = |K_S| / |V(S)|` where `K_S` is the set of
//! vertices of `G(S)` covered by γ-quasi-cliques. Coverage is computed by
//! the quasi-clique engine in coverage mode — no full enumeration needed.
//!
//! Theorem 3 (vertex pruning) is applied here: for `S ⊇ S_parent`,
//! `K_S ⊆ K_parent`, so vertices of `V(S) \ K_parent` can be deleted from
//! the mining graph before the search (they still count in the support
//! denominator).
//!
//! **Incremental projection.** The mining vertex set of a child attribute
//! set is always contained in its parent's (`V(S ∪ {a}) ⊆ V(S)`, and the
//! cover restriction only shrinks it further), so when the lattice driver
//! hands down the parent's already-extracted [`InducedSubgraph`], the
//! child's subgraph is *projected* out of the parent's compact CSR
//! ([`InducedSubgraph::project`]) instead of re-merged against the global
//! graph — and the coverage subgraph is reused verbatim by the top-k
//! search of the same attribute set. Both constructions are byte-identical
//! to a fresh global extraction (tested), so every downstream guarantee
//! (determinism sweep, files→mine byte-identity) is unaffected.

use std::cell::RefCell;
use std::sync::Arc;

use scpm_graph::attributed::AttributedGraph;
use scpm_graph::bitadj::VertexBitset;
use scpm_graph::csr::{intersect_into, VertexId};
use scpm_graph::induced::InducedSubgraph;
use scpm_quasiclique::{
    EngineScratch, Miner, MiningMode, MiningOutcome, PruneFlags, QcConfig, QuasiClique,
    Representation, SearchOrder, SearchStats,
};

/// Result of one structural correlation evaluation.
#[derive(Clone, Debug)]
pub struct CorrelationOutcome {
    /// Covered vertices `K_S`, sorted global ids.
    pub covered: Vec<VertexId>,
    /// `ε(S) = |K_S| / |V(S)|` (0 when the support is 0).
    pub epsilon: f64,
    /// Counters of the coverage search (zeroed when the evaluation
    /// short-circuited below `min_size`).
    pub stats: SearchStats,
    /// The extracted mining subgraph `G[mining(S)]`, when one was built
    /// (`None` when the evaluation short-circuited). The lattice driver
    /// stashes it on the enumeration entry so child evaluations project
    /// from it and the same set's top-k search reuses it.
    pub sub: Option<Arc<InducedSubgraph>>,
}

impl CorrelationOutcome {
    fn short_circuit() -> Self {
        CorrelationOutcome {
            covered: Vec::new(),
            epsilon: 0.0,
            stats: SearchStats::default(),
            sub: None,
        }
    }
}

/// Evaluates `ε` and mines top-k patterns on induced subgraphs.
///
/// The engine owns reusable quasi-clique scratch memory, so repeated
/// evaluations (one per attribute set in a mining run) recycle their
/// buffers; the parallel driver gives each worker its own engine. That
/// interior scratch makes the engine `Send` but not `Sync` — share the
/// graph, not the engine.
///
/// ```
/// use scpm_core::{Scpm, ScpmParams};
/// use scpm_graph::figure1::figure1;
///
/// let g = figure1();
/// let scpm = Scpm::new(&g, ScpmParams::new(3, 0.6, 4));
/// let engine = scpm.engine();
///
/// // ε({A}) = 9/11: nine of A's eleven vertices are covered by
/// // 0.6-quasi-cliques of size ≥ 4 inside G({A}).
/// let a = g.attr_id("A").unwrap();
/// let outcome = engine.epsilon(g.vertices_with(a), None);
/// assert_eq!(outcome.covered.len(), 9);
/// assert!((outcome.epsilon - 9.0 / 11.0).abs() < 1e-12);
/// ```
pub struct CorrelationEngine<'g> {
    graph: &'g AttributedGraph,
    cfg: QcConfig,
    order: SearchOrder,
    prune: PruneFlags,
    repr: Representation,
    /// Apply Theorem 3 restriction when a parent cover is provided.
    vertex_pruning: bool,
    /// Reusable quasi-clique search buffers, recycled across evaluations.
    scratch: RefCell<EngineScratch>,
    /// Reusable parent-local keep set for subgraph projection.
    keep: RefCell<VertexBitset>,
}

impl<'g> CorrelationEngine<'g> {
    /// Creates an engine bound to an attributed graph.
    pub fn new(
        graph: &'g AttributedGraph,
        cfg: QcConfig,
        order: SearchOrder,
        prune: PruneFlags,
        repr: Representation,
        vertex_pruning: bool,
    ) -> Self {
        CorrelationEngine {
            graph,
            cfg,
            order,
            prune,
            repr,
            vertex_pruning,
            scratch: RefCell::new(EngineScratch::new()),
            keep: RefCell::new(VertexBitset::empty(0)),
        }
    }

    /// The mining vertex set for `S`: `V(S)` restricted by the parent cover
    /// when Theorem 3 is active.
    fn mining_set(
        &self,
        vertices: &[VertexId],
        parent_cover: Option<&[VertexId]>,
    ) -> Vec<VertexId> {
        match parent_cover {
            Some(cover) if self.vertex_pruning => {
                let mut out = Vec::with_capacity(cover.len().min(vertices.len()));
                intersect_into(vertices, cover, &mut out);
                out
            }
            _ => vertices.to_vec(),
        }
    }

    /// Computes `ε(S)` given `V(S)` (sorted global ids) and, optionally,
    /// the parents' covered set for Theorem 3 restriction. Extracts the
    /// mining subgraph from the global graph; lattice drivers that hold
    /// the parent's subgraph should use [`Self::epsilon_projected`].
    pub fn epsilon(
        &self,
        vertices: &[VertexId],
        parent_cover: Option<&[VertexId]>,
    ) -> CorrelationOutcome {
        self.epsilon_projected(vertices, parent_cover, None)
    }

    /// Like [`Self::epsilon`], but carving the mining subgraph out of
    /// `parent`'s (the enclosing attribute set's already-extracted
    /// subgraph) when one is supplied — the incremental-projection fast
    /// path of the lattice DFS. Output is identical either way.
    pub fn epsilon_projected(
        &self,
        vertices: &[VertexId],
        parent_cover: Option<&[VertexId]>,
        parent: Option<&InducedSubgraph>,
    ) -> CorrelationOutcome {
        if vertices.is_empty() {
            return CorrelationOutcome::short_circuit();
        }
        let mining = self.mining_set(vertices, parent_cover);
        if mining.len() < self.cfg.min_size {
            return CorrelationOutcome::short_circuit();
        }
        let sub = Arc::new(self.subgraph_for(&mining, parent));
        let outcome = self.run_miner(&sub.graph, MiningMode::Coverage);
        let covered: Vec<VertexId> = outcome
            .covered
            .iter()
            .map(|&local| sub.to_original(local))
            .collect();
        let epsilon = covered.len() as f64 / vertices.len() as f64;
        CorrelationOutcome {
            covered,
            epsilon,
            stats: outcome.stats,
            sub: Some(sub),
        }
    }

    /// Extracts `G[mining]`, projecting from `parent`'s compact CSR when
    /// the mining set is contained in it (always the case on the lattice
    /// paths; falls back to a global extraction otherwise).
    fn subgraph_for(
        &self,
        mining: &[VertexId],
        parent: Option<&InducedSubgraph>,
    ) -> InducedSubgraph {
        if let Some(parent) = parent {
            let mut keep = self.keep.borrow_mut();
            keep.reset(parent.num_vertices());
            // Merge `mining` against the parent's (sorted) global-id list,
            // packing matched parent-local ids.
            let originals = &parent.original;
            let mut matched = 0usize;
            let (mut i, mut j) = (0usize, 0usize);
            while i < mining.len() && j < originals.len() {
                match mining[i].cmp(&originals[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        keep.insert(j as VertexId);
                        matched += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            debug_assert_eq!(
                matched,
                mining.len(),
                "lattice child mining set must be contained in the parent's"
            );
            if matched == mining.len() {
                return parent.project(&keep);
            }
        }
        InducedSubgraph::extract(self.graph.graph(), mining)
    }

    /// Mines the top-`k` patterns of `G(S)` (size primary, density
    /// secondary), with the same Theorem 3 restriction as [`Self::epsilon`].
    /// Returns cliques in global ids plus the search counters.
    pub fn top_k(
        &self,
        vertices: &[VertexId],
        parent_cover: Option<&[VertexId]>,
        k: usize,
    ) -> (Vec<QuasiClique>, SearchStats) {
        if k == 0 || vertices.is_empty() {
            return (Vec::new(), SearchStats::default());
        }
        let mining = self.mining_set(vertices, parent_cover);
        if mining.len() < self.cfg.min_size {
            return (Vec::new(), SearchStats::default());
        }
        let sub = InducedSubgraph::extract(self.graph.graph(), &mining);
        self.top_k_on(&sub, k)
    }

    /// Mines the top-`k` patterns on an already-extracted mining subgraph
    /// — the reuse path for drivers that just ran [`Self::epsilon`] on the
    /// same attribute set (same mining set ⇒ same subgraph, no second
    /// extraction).
    pub fn top_k_on(&self, sub: &InducedSubgraph, k: usize) -> (Vec<QuasiClique>, SearchStats) {
        if k == 0 {
            return (Vec::new(), SearchStats::default());
        }
        let outcome = self.run_miner(&sub.graph, MiningMode::TopK(k));
        relabel(sub, outcome)
    }

    /// Enumerates *all* maximal quasi-cliques of `G(S)` (used by the naive
    /// baseline; no Theorem 3 restriction is applied).
    pub fn enumerate_all(&self, vertices: &[VertexId]) -> (Vec<QuasiClique>, SearchStats) {
        if vertices.len() < self.cfg.min_size {
            return (Vec::new(), SearchStats::default());
        }
        let sub = InducedSubgraph::extract(self.graph.graph(), vertices);
        let outcome = self.run_miner(&sub.graph, MiningMode::EnumerateMaximal);
        relabel(&sub, outcome)
    }

    /// Runs one configured search over `g`, reusing the engine's scratch.
    fn run_miner(&self, g: &scpm_graph::csr::CsrGraph, mode: MiningMode) -> MiningOutcome {
        Miner::new(g, self.cfg)
            .with_order(self.order)
            .with_prune(self.prune)
            .with_repr(self.repr)
            .run_with(mode, &mut self.scratch.borrow_mut())
    }
}

/// Maps a mining outcome's cliques back to global vertex ids.
fn relabel(sub: &InducedSubgraph, outcome: MiningOutcome) -> (Vec<QuasiClique>, SearchStats) {
    let cliques = outcome
        .cliques
        .into_iter()
        .map(|q| QuasiClique {
            vertices: sub.to_original_set(&q.vertices),
            min_degree_ratio: q.min_degree_ratio,
            edge_density: q.edge_density,
        })
        .collect();
    (cliques, outcome.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::figure1::{figure1, paper_vertex};

    fn engine(g: &AttributedGraph) -> CorrelationEngine<'_> {
        CorrelationEngine::new(
            g,
            QcConfig::new(0.6, 4),
            SearchOrder::Dfs,
            PruneFlags::default(),
            Representation::default(),
            true,
        )
    }

    #[test]
    fn figure1_epsilon_values_match_paper() {
        let g = figure1();
        let eng = engine(&g);
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        let c = g.attr_id("C").unwrap();

        let va = g.vertices_with(a).to_vec();
        let out_a = eng.epsilon(&va, None);
        assert!((out_a.epsilon - 9.0 / 11.0).abs() < 1e-12);

        let vc = g.vertices_with(c).to_vec();
        assert_eq!(eng.epsilon(&vc, None).epsilon, 0.0);

        let vab = g.vertices_with_all(&[a, b]);
        let out_ab = eng.epsilon(&vab, None).epsilon;
        assert!((out_ab - 1.0).abs() < 1e-12);

        let vb = g.vertices_with(b).to_vec();
        assert!((eng.epsilon(&vb, None).epsilon - 1.0).abs() < 1e-12);
    }

    #[test]
    fn theorem3_restriction_preserves_epsilon() {
        let g = figure1();
        let eng = engine(&g);
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        let va = g.vertices_with(a).to_vec();
        let k_a = eng.epsilon(&va, None).covered;
        let vab = g.vertices_with_all(&[a, b]);
        let with_parent = eng.epsilon(&vab, Some(&k_a));
        let without = eng.epsilon(&vab, None);
        assert_eq!(with_parent.covered, without.covered);
        assert_eq!(with_parent.epsilon, without.epsilon);
    }

    #[test]
    fn projection_equals_global_extraction() {
        // ε of {A,B} computed by projecting from {A}'s subgraph must be
        // byte-identical to the global-extraction path, with and without a
        // parent cover.
        let g = figure1();
        let eng = engine(&g);
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        let va = g.vertices_with(a).to_vec();
        let parent_out = eng.epsilon(&va, None);
        let parent_sub = parent_out.sub.as_deref().expect("parent subgraph built");
        let vab = g.vertices_with_all(&[a, b]);

        let direct = eng.epsilon(&vab, None);
        let projected = eng.epsilon_projected(&vab, None, Some(parent_sub));
        assert_eq!(direct.covered, projected.covered);
        assert_eq!(direct.epsilon, projected.epsilon);
        assert_eq!(direct.stats, projected.stats);
        let (ds, ps) = (direct.sub.unwrap(), projected.sub.unwrap());
        assert_eq!(ds.graph, ps.graph);
        assert_eq!(ds.original, ps.original);

        let with_cover = eng.epsilon(&vab, Some(&parent_out.covered));
        let with_cover_proj =
            eng.epsilon_projected(&vab, Some(&parent_out.covered), Some(parent_sub));
        assert_eq!(with_cover.covered, with_cover_proj.covered);
        assert_eq!(
            with_cover.sub.unwrap().graph,
            with_cover_proj.sub.unwrap().graph
        );
    }

    #[test]
    fn top_k_on_reuses_coverage_subgraph() {
        let g = figure1();
        let eng = engine(&g);
        let a = g.attr_id("A").unwrap();
        let va = g.vertices_with(a).to_vec();
        let out = eng.epsilon(&va, None);
        let (via_sub, _) = eng.top_k_on(out.sub.as_deref().unwrap(), 2);
        let (direct, _) = eng.top_k(&va, None, 2);
        assert_eq!(via_sub, direct);
    }

    #[test]
    fn top_k_patterns_for_attribute_a() {
        let g = figure1();
        let eng = engine(&g);
        let a = g.attr_id("A").unwrap();
        let va = g.vertices_with(a).to_vec();
        let (top, _) = eng.top_k(&va, None, 2);
        assert_eq!(top.len(), 2);
        let six: Vec<u32> = (6..=11).map(paper_vertex).collect();
        assert_eq!(top[0].vertices, six);
        let clique: Vec<u32> = (3..=6).map(paper_vertex).collect();
        assert_eq!(top[1].vertices, clique);
    }

    #[test]
    fn enumerate_all_counts_five_for_a() {
        let g = figure1();
        let eng = engine(&g);
        let a = g.attr_id("A").unwrap();
        let (all, _) = eng.enumerate_all(g.vertices_with(a));
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let g = figure1();
        let eng = engine(&g);
        assert_eq!(eng.epsilon(&[], None).epsilon, 0.0);
        assert_eq!(eng.epsilon(&[0, 1], None).epsilon, 0.0); // below min_size
        assert!(eng.top_k(&[], None, 3).0.is_empty());
    }
}
