//! **SCPM** — structural correlation pattern mining in large attributed
//! graphs.
//!
//! A faithful implementation of Silva, Meira & Zaki, *"Mining
//! Attribute-structure Correlated Patterns in Large Attributed Graphs"*
//! (PVLDB 5(5), 2012). Given an attributed graph, SCPM finds attribute
//! sets `S` whose induced subgraphs `G(S)` organize into dense
//! quasi-cliques, quantified by:
//!
//! * the **structural correlation** `ε(S) = |K_S| / |V(S)|` — the fraction
//!   of `S`-vertices covered by γ-quasi-cliques in `G(S)`,
//! * the **normalized structural correlation** `δ(S) = ε(S) / exp(σ(S))`,
//!   comparing `ε` against a null model (Theorems 1–2), and
//! * the **structural correlation patterns** `(S, Q)` — the top-k largest,
//!   densest quasi-cliques per qualifying attribute set.
//!
//! # Quickstart
//!
//! ```
//! use scpm_core::{Scpm, ScpmParams};
//! use scpm_graph::figure1::figure1;
//!
//! // The paper's running example (Figure 1) with its Table-1 parameters:
//! // σmin = 3, γmin = 0.6, min_size = 4, εmin = 0.5.
//! let graph = figure1();
//! let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
//! let result = Scpm::new(&graph, params).run();
//!
//! // Table 1 contains exactly seven patterns.
//! assert_eq!(result.patterns.len(), 7);
//!
//! // ε({A}) = 9/11 ≈ 0.82, as in the paper.
//! let a = graph.attr_id("A").unwrap();
//! let report = result.report_for(&[a]).unwrap();
//! assert!((report.epsilon - 9.0 / 11.0).abs() < 1e-12);
//! ```
//!
//! The [`naive::run_naive`] baseline (Eclat + full quasi-clique
//! enumeration) produces identical results and serves as the performance
//! baseline of the paper's Figure 8; [`parallel::run_parallel`] distributes
//! the attribute-set search over a work-stealing subtree scheduler (see
//! `docs/PARALLELISM.md`) with bit-identical output.

#![deny(missing_docs)]

pub mod algorithm;
pub mod correlation;
pub mod hypergeom;
pub mod incremental;
pub mod levelwise;
pub mod memoio;
pub mod naive;
pub mod nullmodel;
pub mod parallel;
pub mod params;
pub mod pattern;
pub mod report;
pub mod scorp;
pub mod segments;
pub mod store;

pub use algorithm::Scpm;
pub use correlation::{CorrelationEngine, CorrelationOutcome};
pub use hypergeom::{hypergeometric_pmf, hypergeometric_tail, ExactModel};
pub use incremental::{DirtySet, EvalMemo, EvalRecord, IncrementalCtx, IncrementalStats};
pub use memoio::{decode_memo, encode_memo, params_fingerprint, DecodedMemo, MemoError};
pub use naive::run_naive;
pub use nullmodel::{
    binomial_pmf, binomial_tail, empirical_p_value, simulate_coverage_samples, simulate_expected,
    simulate_expected_parallel, AnalyticalModel, ExpectedCorrelation, LnFactorial, ModelKind,
    NullModelCache, SimExpected, SimulationModel,
};
pub use parallel::{
    run_parallel, run_parallel_branch_level, run_parallel_traced, run_parallel_with,
    ParallelConfig, SubtreeTrace, DEFAULT_SPLIT_DEPTH,
};
pub use params::{ScpmParams, ScpmPruneFlags};
pub use pattern::{describe_patterns, AttributeSetReport, Pattern, ScpmResult, ScpmStats};
pub use scorp::Scorp;
pub use segments::mine_mapped;
pub use store::{
    checkpoint, checkpoint_with, recover, replay_mine, DataDir, RecoveredMine, RecoveredState,
    StoreError,
};
