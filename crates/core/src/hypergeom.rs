//! Exact (hypergeometric) null model — an extension beyond the paper.
//!
//! Theorem 1 approximates the degree a vertex keeps inside a random
//! size-`σ` subgraph with a *binomial*: each of its `α` neighbors is
//! included independently with probability `ρ = (σ−1)/(|V|−1)`. The exact
//! law of that degree is **hypergeometric** — the `σ−1` companions are
//! drawn *without replacement* from the other `|V|−1` vertices, of which
//! `α` are neighbors:
//!
//! ```text
//! P[deg = β] = C(α, β) · C(|V|−1−α, σ−1−β) / C(|V|−1, σ−1)
//! ```
//!
//! [`ExactModel`] mirrors [`AnalyticalModel`](crate::AnalyticalModel) with
//! the exact law. For `σ ≪ |V|` the two agree closely (the binomial is the
//! large-population limit of the hypergeometric); near `σ ≈ |V|` the
//! binomial smears mass onto degrees the sample cannot actually produce,
//! and the exact model is visibly sharper. DESIGN.md documents this as a
//! deliberate extension: the paper's pruning only needs a *monotone*
//! `exp` function, which both laws provide.

use std::sync::Arc;

use scpm_graph::csr::CsrGraph;
use scpm_graph::degree::DegreeDistribution;
use scpm_quasiclique::QcConfig;

use crate::nullmodel::{LnFactorial, ModelKind, NullModelCache};

/// `P[Hypergeometric(population, successes, draws) = k]` via a
/// log-factorial table. Zero when the configuration is impossible.
pub fn hypergeometric_pmf(
    population: usize,
    successes: usize,
    draws: usize,
    k: usize,
    lnf: &LnFactorial,
) -> f64 {
    if successes > population || draws > population {
        return 0.0;
    }
    if k > successes || k > draws {
        return 0.0;
    }
    // The remaining draws must fit among the non-successes.
    if draws - k > population - successes {
        return 0.0;
    }
    let ln_p = lnf.ln_choose(successes, k) + lnf.ln_choose(population - successes, draws - k)
        - lnf.ln_choose(population, draws);
    ln_p.exp()
}

/// `P[Hypergeometric(population, successes, draws) ≥ z]` by pmf summation.
pub fn hypergeometric_tail(
    population: usize,
    successes: usize,
    draws: usize,
    z: usize,
    lnf: &LnFactorial,
) -> f64 {
    let hi = successes.min(draws);
    if z > hi {
        return 0.0;
    }
    (z..=hi)
        .map(|k| hypergeometric_pmf(population, successes, draws, k, lnf))
        .sum::<f64>()
        .min(1.0)
}

/// The exact expected-structural-correlation upper bound: Theorem 2 with
/// the hypergeometric law in place of the binomial approximation. Memoized
/// per support in a (shareable) [`NullModelCache`], under its own
/// [`ModelKind`] so it never collides with the analytical values.
#[derive(Debug)]
pub struct ExactModel {
    dist: DegreeDistribution,
    n: usize,
    z: usize,
    lnf: LnFactorial,
    cache: Arc<NullModelCache>,
}

impl ExactModel {
    /// Builds the model from a graph's topology and the quasi-clique
    /// parameters.
    pub fn new(g: &CsrGraph, cfg: &QcConfig) -> Self {
        Self::from_distribution(DegreeDistribution::from_graph(g), g.num_vertices(), cfg)
    }

    /// Builds the model from a precomputed degree distribution over a
    /// graph with `n` vertices.
    pub fn from_distribution(dist: DegreeDistribution, n: usize, cfg: &QcConfig) -> Self {
        let z = cfg.min_required_degree();
        // ln_choose needs arguments up to the population size n − 1.
        let lnf = LnFactorial::new(n.max(2) - 1);
        ExactModel {
            dist,
            n,
            z,
            lnf,
            cache: Arc::new(NullModelCache::new()),
        }
    }

    /// Replaces the memo with a shared [`NullModelCache`], builder style.
    /// The cache must come from a model over the same graph.
    pub fn with_cache(mut self, cache: Arc<NullModelCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The cache backing [`ExactModel::expected`].
    pub fn cache(&self) -> &Arc<NullModelCache> {
        &self.cache
    }

    /// The degree threshold `z = ⌈γ·(min_size−1)⌉`.
    pub fn z(&self) -> usize {
        self.z
    }

    /// `exact-exp(σ)`, memoized.
    pub fn expected(&self, sigma: usize) -> f64 {
        self.cache
            .get_or_compute(ModelKind::Exact, self.z, sigma, || {
                self.expected_uncached(sigma)
            })
    }

    /// `exact-exp(σ) = Σ_α p(α) · P[Hyp(|V|−1, α, σ−1) ≥ z]`.
    pub fn expected_uncached(&self, sigma: usize) -> f64 {
        if self.n <= 1 || sigma == 0 {
            return 0.0;
        }
        if self.z == 0 {
            return 1.0;
        }
        let sigma = sigma.min(self.n);
        let draws = sigma - 1;
        let population = self.n - 1;
        let m = self.dist.max_degree();
        let mut acc = 0.0;
        for alpha in self.z..=m {
            let p = self.dist.p(alpha);
            if p > 0.0 {
                acc += p * hypergeometric_tail(population, alpha, draws, self.z, &self.lnf);
            }
        }
        acc.min(1.0)
    }

    /// Normalized structural correlation `δ_exact = ε / exact-exp(σ)`
    /// (0 for `ε = 0`, `+∞` when the expectation vanishes but `ε > 0`).
    pub fn normalize(&self, epsilon: f64, sigma: usize) -> f64 {
        let e = self.expected(sigma);
        if e <= 0.0 {
            if epsilon > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            epsilon / e
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nullmodel::{binomial_tail, AnalyticalModel};
    use scpm_graph::builder::graph_from_edges;
    use scpm_graph::generators::erdos_renyi::gnm;

    #[test]
    fn pmf_matches_hand_computed_values() {
        let lnf = LnFactorial::new(10);
        // Hyp(N=10, K=4, n=3): P[X=2] = C(4,2)·C(6,1)/C(10,3) = 36/120.
        let p = hypergeometric_pmf(10, 4, 3, 2, &lnf);
        assert!((p - 36.0 / 120.0).abs() < 1e-12);
        // Impossible: more successes drawn than exist.
        assert_eq!(hypergeometric_pmf(10, 2, 3, 3, &lnf), 0.0);
        // Forced: drawing everything.
        assert!((hypergeometric_pmf(10, 4, 10, 4, &lnf) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_sums_to_one() {
        let lnf = LnFactorial::new(30);
        for &(pop, succ, draws) in &[(30usize, 10usize, 7usize), (20, 5, 15), (12, 12, 6)] {
            let total: f64 = (0..=succ.min(draws))
                .map(|k| hypergeometric_pmf(pop, succ, draws, k, &lnf))
                .sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "pop={pop} succ={succ} draws={draws}: {total}"
            );
        }
    }

    #[test]
    fn tail_edge_cases() {
        let lnf = LnFactorial::new(20);
        assert!((hypergeometric_tail(20, 5, 10, 0, &lnf) - 1.0).abs() < 1e-12);
        assert_eq!(hypergeometric_tail(20, 5, 10, 6, &lnf), 0.0);
        // Drawing the whole population keeps every neighbor.
        assert!((hypergeometric_tail(20, 5, 20, 5, &lnf) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn converges_to_binomial_for_large_population() {
        // Fixed draws fraction, growing population: hypergeometric tail →
        // binomial tail.
        let lnf = LnFactorial::new(100_000);
        let alpha = 12usize;
        let z = 4usize;
        let mut last_gap = f64::MAX;
        for &n in &[100usize, 1_000, 100_000] {
            let draws = n / 5;
            let rho = draws as f64 / n as f64;
            let hyper = hypergeometric_tail(n, alpha, draws, z, &lnf);
            let binom = binomial_tail(alpha, z, rho, &lnf);
            let gap = (hyper - binom).abs();
            assert!(
                gap <= last_gap + 1e-12,
                "gap must shrink: {gap} vs {last_gap}"
            );
            last_gap = gap;
        }
        assert!(last_gap < 1e-3, "large-population gap: {last_gap}");
    }

    #[test]
    fn exact_model_monotone_in_sigma() {
        let g = gnm(150, 600, 5);
        let model = ExactModel::new(&g, &QcConfig::new(0.6, 4));
        let mut prev = -1.0;
        for sigma in (0..=150).step_by(10) {
            let e = model.expected(sigma);
            assert!(e >= prev - 1e-12, "σ={sigma}: {e} < {prev}");
            assert!((0.0..=1.0).contains(&e));
            prev = e;
        }
    }

    #[test]
    fn exact_model_full_sample_is_degree_tail() {
        // σ = n draws everything: P[deg ≥ z] is exactly the fraction of
        // vertices with degree ≥ z — no binomial smearing.
        let g = graph_from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        // Degrees: 3, 3, 2, 2, 0; z = 3 for γ=1, min_size=4.
        let model = ExactModel::new(&g, &QcConfig::new(1.0, 4));
        assert!((model.expected(5) - 0.4).abs() < 1e-12);
        // The binomial model agrees at σ = n only in the limit; the exact
        // model is exact.
        let binom = AnalyticalModel::new(&g, &QcConfig::new(1.0, 4));
        assert!((binom.expected(5) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn exact_close_to_binomial_when_sigma_small() {
        let g = gnm(400, 1600, 9);
        let cfg = QcConfig::new(0.5, 5);
        let exact = ExactModel::new(&g, &cfg);
        let binom = AnalyticalModel::new(&g, &cfg);
        for sigma in [10usize, 40, 80] {
            let e = exact.expected(sigma);
            let b = binom.expected(sigma);
            assert!((e - b).abs() < 0.02, "σ={sigma}: exact {e} vs binomial {b}");
        }
    }

    #[test]
    fn normalize_conventions() {
        let g = graph_from_edges(3, [(0, 1)]);
        let model = ExactModel::new(&g, &QcConfig::new(1.0, 3));
        assert_eq!(model.normalize(0.0, 1), 0.0);
        assert_eq!(model.normalize(0.5, 1), f64::INFINITY);
    }

    #[test]
    fn z_zero_gives_one() {
        let g = gnm(30, 60, 3);
        let model = ExactModel::new(&g, &QcConfig::new(0.5, 1));
        assert_eq!(model.expected(10), 1.0);
    }
}
