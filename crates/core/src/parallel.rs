//! Parallel SCPM driver.
//!
//! The branches of Algorithm 3 rooted at different level-1 attributes are
//! independent: each explores extensions of one attribute with its
//! successors. This module evaluates level-1 attribute sets and then
//! distributes branches over a crossbeam scope, merging per-branch results
//! in branch order so the output is identical to the serial run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use scpm_graph::attributed::AttributedGraph;

use crate::algorithm::Scpm;
use crate::params::ScpmParams;
use crate::pattern::ScpmResult;

/// Runs SCPM with `num_threads` workers (1 falls back to the serial path).
///
/// Output (reports, patterns) is bit-identical to [`Scpm::run`]; only the
/// wall-clock `elapsed` differs.
pub fn run_parallel(graph: &AttributedGraph, params: ScpmParams, num_threads: usize) -> ScpmResult {
    let scpm = Scpm::new(graph, params);
    if num_threads <= 1 {
        return scpm.run();
    }
    let start = Instant::now();
    let engine = scpm.engine();
    let mut result = ScpmResult::default();
    let level1 = scpm.level1_entries(&engine, &mut result);

    let branches = level1.len();
    let next_branch = AtomicUsize::new(0);
    let mut branch_results: Vec<ScpmResult> = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(num_threads);
        for _ in 0..num_threads {
            let scpm_ref = &scpm;
            let level1_ref = &level1;
            let next_ref = &next_branch;
            handles.push(scope.spawn(move |_| {
                let engine = scpm_ref.engine();
                // (branch index, branch-local result) pairs.
                let mut locals: Vec<(usize, ScpmResult)> = Vec::new();
                loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= branches {
                        break;
                    }
                    let mut local = ScpmResult::default();
                    scpm_ref.enumerate_branch(&engine, level1_ref, i, &mut local);
                    locals.push((i, local));
                }
                locals
            }));
        }
        let mut all: Vec<(usize, ScpmResult)> = Vec::new();
        for handle in handles {
            all.extend(handle.join().expect("scpm worker panicked"));
        }
        all.sort_by_key(|(i, _)| *i);
        branch_results = all.into_iter().map(|(_, r)| r).collect();
    })
    .expect("crossbeam scope failed");

    for branch in branch_results {
        result.reports.extend(branch.reports);
        result.patterns.extend(branch.patterns);
        result.stats.merge(&branch.stats);
    }
    result.stats.elapsed = start.elapsed();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::figure1::figure1;

    type ReportRows = Vec<(Vec<u32>, usize, bool)>;
    type PatternRows = Vec<(Vec<u32>, Vec<u32>)>;

    fn comparable(r: &ScpmResult) -> (ReportRows, PatternRows) {
        let reports = r
            .reports
            .iter()
            .map(|rep| (rep.attrs.clone(), rep.support, rep.qualified))
            .collect();
        let patterns = r
            .patterns
            .iter()
            .map(|p| (p.attrs.clone(), p.clique.vertices.clone()))
            .collect();
        (reports, patterns)
    }

    #[test]
    fn parallel_output_equals_serial_in_order() {
        let g = figure1();
        let params = ScpmParams::new(2, 0.6, 4).with_eps_min(0.1);
        let serial = Scpm::new(&g, params.clone()).run();
        for threads in [1, 2, 4] {
            let parallel = run_parallel(&g, params.clone(), threads);
            assert_eq!(
                comparable(&serial),
                comparable(&parallel),
                "threads = {threads}"
            );
            assert_eq!(
                serial.stats.attribute_sets_examined,
                parallel.stats.attribute_sets_examined
            );
        }
    }
}
