//! Work-stealing parallel SCPM driver.
//!
//! The branches of Algorithm 3 rooted at different level-1 attributes are
//! independent, but they are wildly *unbalanced*: a DBLP-style hub
//! attribute (`data`, `system`, …) owns most of the lattice below it, so a
//! driver that only distributes level-1 branches serializes on whichever
//! worker drew the hub. This module instead schedules **subtrees**:
//!
//! 1. Level-1 attribute sets are evaluated on the calling thread (their
//!    reports come first in the output, exactly as in [`Scpm::run`]).
//! 2. A branch shallower than [`ParallelConfig::split_depth`] is *split*
//!    down to single ε evaluations: every `base ∪ {sibling}` extension
//!    becomes its own stealable task, and a per-branch join assembles the
//!    surviving child class (in sibling order) once the last evaluation
//!    lands, then spawns the child branches. Even one hub attribute's
//!    extension loop — the dominant cost on skewed graphs — is therefore
//!    spread over all workers.
//! 3. Branches at or below the split depth run as one recursive task each
//!    (task bookkeeping is wasted on the lattice's thin tail).
//!
//! Tasks start in a shared [`crossbeam::deque::Injector`]; workers push
//! follow-on tasks to per-worker LIFO deques and steal FIFO from each
//! other when idle.
//!
//! **Determinism.** Every task result is tagged with a *lattice key*
//! derived from its position in the enumeration tree: a branch with key
//! `P` stores the report of its `j`-th sibling evaluation under
//! `P ++ [0, j]` and its `b`-th child branch under `P ++ [1, b]`. Those
//! keys sort (lexicographically) exactly like the serial depth-first
//! traversal — all of a branch's evaluations precede all of its
//! descendants' — so sorting the per-task results by key and concatenating
//! reconstructs [`Scpm::run`]'s output bit-for-bit, no matter which worker
//! ran what when. The scheduler's only observable effect is wall-clock
//! time.
//!
//! Workers share one [`Scpm`] (hence one [`crate::NullModelCache`] —
//! `exp(σ)` is computed once per support globally) and each owns one
//! [`crate::CorrelationEngine`], whose quasi-clique scratch buffers are
//! recycled across all tasks the worker executes.
//!
//! `docs/PARALLELISM.md` covers the design, the determinism argument, and
//! tuning guidance in detail.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::Mutex;

use scpm_graph::attributed::AttributedGraph;

use crate::algorithm::{EnumEntry, Scpm};
use crate::params::ScpmParams;
use crate::pattern::ScpmResult;

/// Default [`ParallelConfig::split_depth`]: splitting the top two lattice
/// levels exposes `O(branches²)` stealable tasks, enough to feed any
/// realistic worker count, while deeper subtrees stay recursive (task
/// bookkeeping is wasted on leaves).
pub const DEFAULT_SPLIT_DEPTH: usize = 2;

/// Tuning knobs of the work-stealing driver.
///
/// ```
/// use scpm_core::{run_parallel_with, ParallelConfig, Scpm, ScpmParams};
/// use scpm_graph::figure1::figure1;
///
/// let g = figure1();
/// let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
/// let serial = Scpm::new(&g, params.clone()).run();
/// let config = ParallelConfig::new(4).with_split_depth(1);
/// let parallel = run_parallel_with(&g, params, &config);
/// assert_eq!(serial.reports, parallel.reports);
/// assert_eq!(serial.patterns, parallel.patterns);
/// ```
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Requested worker count. The driver clamps this to the number of
    /// tasks the run can actually produce (see [`run_parallel_with`]);
    /// `0` or `1` selects the serial path.
    pub threads: usize,
    /// Lattice depth down to which branches are split into stealable
    /// tasks. `0` reproduces branch-level scheduling (one task per level-1
    /// attribute); each further level multiplies the available tasks and
    /// shrinks the largest indivisible unit of work.
    pub split_depth: usize,
}

impl ParallelConfig {
    /// A configuration with `threads` workers and the default split depth.
    pub fn new(threads: usize) -> Self {
        ParallelConfig {
            threads,
            split_depth: DEFAULT_SPLIT_DEPTH,
        }
    }

    /// Sets the split depth, builder style.
    pub fn with_split_depth(mut self, split_depth: usize) -> Self {
        self.split_depth = split_depth;
        self
    }
}

impl Default for ParallelConfig {
    /// All available hardware threads, default split depth.
    fn default() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }
}

/// A schedulable unit of lattice work.
enum Task {
    /// Run branch `branch` of `class` recursively to completion (used at
    /// and below the split depth). `key` is the branch's lattice key.
    Subtree {
        key: Vec<u32>,
        class: Arc<Vec<EnumEntry>>,
        branch: usize,
    },
    /// Evaluate the single extension `class[branch] ∪ {class[sibling]}` of
    /// a splitting branch (above the split depth).
    Extend {
        join: Arc<BranchJoin>,
        sibling: usize,
    },
}

/// Join state of one splitting branch: collects the surviving child
/// entries of its sibling evaluations; the evaluation that finishes last
/// assembles the child class and spawns the child branches.
struct BranchJoin {
    /// Lattice key of the branch.
    key: Vec<u32>,
    /// Lattice depth of the branch (level-1 branches are depth 0).
    depth: usize,
    class: Arc<Vec<EnumEntry>>,
    branch: usize,
    /// Sibling evaluations still outstanding.
    remaining: AtomicUsize,
    /// `(sibling index, child entry)` pairs of successful extensions.
    survivors: Mutex<Vec<(usize, EnumEntry)>>,
}

/// Queues branch `branch` of `class` (at lattice key `key`, depth `depth`)
/// as either one recursive task or a fan of per-sibling evaluation tasks,
/// bumping `pending` once per queued task. A branch with no later siblings
/// does nothing — exactly like the serial extension loop.
fn spawn_branch(
    key: Vec<u32>,
    depth: usize,
    class: Arc<Vec<EnumEntry>>,
    branch: usize,
    split_depth: usize,
    pending: &AtomicUsize,
    push: &mut impl FnMut(Task),
) {
    if branch + 1 >= class.len() {
        return;
    }
    if depth >= split_depth {
        pending.fetch_add(1, Ordering::AcqRel);
        push(Task::Subtree { key, class, branch });
        return;
    }
    let siblings = class.len() - branch - 1;
    let join = Arc::new(BranchJoin {
        key,
        depth,
        branch,
        remaining: AtomicUsize::new(siblings),
        survivors: Mutex::new(Vec::new()),
        class,
    });
    for sibling in (join.branch + 1)..join.class.len() {
        pending.fetch_add(1, Ordering::AcqRel);
        push(Task::Extend {
            join: Arc::clone(&join),
            sibling,
        });
    }
}

/// The work one scheduler task performed, for load-balance diagnostics
/// (see [`run_parallel_traced`]).
#[derive(Clone, Debug)]
pub struct SubtreeTrace {
    /// Lattice path of the task (branch indices from the root).
    pub path: Vec<u32>,
    /// The task's counters; `qc_nodes_coverage + qc_nodes_topk` is a
    /// hardware-independent proxy for the task's compute cost.
    pub stats: crate::pattern::ScpmStats,
}

impl SubtreeTrace {
    /// Search-node work proxy of this task (coverage + top-k nodes, plus
    /// one unit per evaluated attribute set so empty subtrees still have
    /// nonzero cost).
    pub fn work(&self) -> u64 {
        self.stats.qc_nodes_coverage + self.stats.qc_nodes_topk + self.stats.attribute_sets_examined
    }
}

/// Number of *immediately available* tasks for a run with `branches`
/// level-1 branches: one recursive task per branch at `split_depth = 0`,
/// or one evaluation task per level-1 `{i, j}` pair when splitting. Used
/// to clamp the worker count — workers beyond this bound would start with
/// nothing to do (splitting can create more tasks later, but never before
/// these complete).
fn parallel_task_bound(branches: usize, split_depth: usize) -> usize {
    if split_depth == 0 {
        branches
    } else {
        branches.saturating_mul(branches.saturating_sub(1)) / 2
    }
}

/// Runs SCPM with `num_threads` workers and the default split depth.
///
/// Output (reports, patterns, counters) is bit-identical to [`Scpm::run`]
/// at every thread count; only the wall-clock `elapsed` differs.
///
/// ```
/// use scpm_core::{run_parallel, Scpm, ScpmParams};
/// use scpm_graph::figure1::figure1;
///
/// let g = figure1();
/// let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
/// let serial = Scpm::new(&g, params.clone()).run();
/// let parallel = run_parallel(&g, params, 4);
/// assert_eq!(serial.reports, parallel.reports);
/// assert_eq!(serial.patterns, parallel.patterns);
/// ```
pub fn run_parallel(graph: &AttributedGraph, params: ScpmParams, num_threads: usize) -> ScpmResult {
    run_parallel_with(graph, params, &ParallelConfig::new(num_threads))
}

/// Runs SCPM under an explicit [`ParallelConfig`].
///
/// The worker count is clamped to the number of immediately available
/// tasks — e.g. a run
/// whose level 1 has three surviving branches and `split_depth = 0` spawns
/// at most three workers regardless of `config.threads`, and a run with no
/// extensible level-1 sets spawns none. Requesting `threads ≤ 1` (or a
/// clamp down to ≤ 1) falls back to the serial path.
pub fn run_parallel_with(
    graph: &AttributedGraph,
    params: ScpmParams,
    config: &ParallelConfig,
) -> ScpmResult {
    Scpm::new(graph, params).run_scheduled(config)
}

/// Like [`run_parallel_with`], but also returns one [`SubtreeTrace`] per
/// scheduler task, in lattice order. The trace is the run's exact work
/// decomposition — `crates/bench`'s `exp_speedup` uses it to model the
/// load balance of a scheduling strategy independently of the machine the
/// trace was recorded on. Empty when the run fell back to the serial path
/// (thread count or worker clamp ≤ 1).
pub fn run_parallel_traced(
    graph: &AttributedGraph,
    params: ScpmParams,
    config: &ParallelConfig,
) -> (ScpmResult, Vec<SubtreeTrace>) {
    run_scheduler(&Scpm::new(graph, params), config)
}

impl<'g> Scpm<'g> {
    /// Runs this miner under the work-stealing scheduler (the method form
    /// of [`run_parallel_with`], for callers that pre-build the [`Scpm`] —
    /// e.g. to inject a shared [`crate::NullModelCache`] via
    /// [`Scpm::with_cache`] across a parameter sweep).
    pub fn run_scheduled(&self, config: &ParallelConfig) -> ScpmResult {
        run_scheduler(self, config).0
    }
}

/// The scheduler proper (see the module docs for the design).
fn run_scheduler(scpm: &Scpm<'_>, config: &ParallelConfig) -> (ScpmResult, Vec<SubtreeTrace>) {
    if config.threads <= 1 {
        return (scpm.run(), Vec::new());
    }
    let start = Instant::now();
    let mut result = ScpmResult::default();
    let level1 = {
        let engine = scpm.engine();
        scpm.level1_entries(&engine, &mut result)
    };
    let split_depth = config.split_depth;
    let workers = config
        .threads
        .min(parallel_task_bound(level1.len(), split_depth));
    if workers <= 1 {
        // Not enough branches to distribute: finish on this thread.
        let engine = scpm.engine();
        scpm.enumerate_class(&engine, &level1, &mut result);
        result.stats.elapsed = start.elapsed();
        return (result, Vec::new());
    }

    // Seed the injector with the level-1 branches (fanned out to one task
    // per attribute pair when splitting is on).
    let class = Arc::new(level1);
    let injector: Injector<Task> = Injector::new();
    let pending = AtomicUsize::new(0);
    for branch in 0..class.len() {
        spawn_branch(
            vec![branch as u32],
            0,
            Arc::clone(&class),
            branch,
            split_depth,
            &pending,
            &mut |task| injector.push(task),
        );
    }

    let queues: Vec<Worker<Task>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<Task>> = queues.iter().map(Worker::stealer).collect();
    // (lattice key, task-local result) per completed task.
    let parts: Mutex<Vec<(Vec<u32>, ScpmResult)>> = Mutex::new(Vec::new());

    crossbeam::scope(|scope| {
        for (wid, own) in queues.into_iter().enumerate() {
            let scpm = &scpm;
            let injector = &injector;
            let stealers = &stealers;
            let pending = &pending;
            let parts = &parts;
            scope.spawn(move |_| {
                // One engine per worker: its quasi-clique scratch buffers
                // are reused by every task this worker executes.
                let engine = scpm.engine();
                let mut cover_buf = Vec::new();
                let mut idle_polls = 0u32;
                loop {
                    let task = own
                        .pop()
                        .or_else(|| injector.steal().success())
                        .or_else(|| steal_from_peers(stealers, wid));
                    let Some(task) = task else {
                        if pending.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        // Back off after a burst of empty polls so a long
                        // serial tail (one worker grinding a subtree) does
                        // not spin the idle workers at 100% CPU. 100 µs is
                        // noise next to any ε evaluation.
                        idle_polls += 1;
                        if idle_polls < 64 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(std::time::Duration::from_micros(100));
                        }
                        continue;
                    };
                    idle_polls = 0;
                    // Decremented on every exit path (unwind included) —
                    // but only after this iteration registered any
                    // follow-on tasks, so `pending == 0` still means "no
                    // task exists or can ever be created".
                    let _task_done = PendingGuard(pending);
                    let mut local = ScpmResult::default();
                    match task {
                        Task::Subtree { key, class, branch } => {
                            scpm.enumerate_branch(&engine, &class, branch, &mut local);
                            parts.lock().push((key, local));
                        }
                        Task::Extend { join, sibling } => {
                            if let Some(entry) = scpm.extend_pair(
                                &engine,
                                &join.class,
                                join.branch,
                                sibling,
                                &mut cover_buf,
                                &mut local,
                            ) {
                                join.survivors.lock().push((sibling, entry));
                            }
                            let mut key = join.key.clone();
                            key.extend([0, sibling as u32]);
                            parts.lock().push((key, local));
                            if join.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                                // Last sibling evaluation of this branch:
                                // assemble the child class in sibling order
                                // and spawn the child branches.
                                let mut survivors = std::mem::take(&mut *join.survivors.lock());
                                survivors.sort_unstable_by_key(|&(j, _)| j);
                                let next: Vec<EnumEntry> =
                                    survivors.into_iter().map(|(_, e)| e).collect();
                                if !next.is_empty() {
                                    let child_class = Arc::new(next);
                                    for branch in 0..child_class.len() {
                                        let mut key = join.key.clone();
                                        key.extend([1, branch as u32]);
                                        spawn_branch(
                                            key,
                                            join.depth + 1,
                                            Arc::clone(&child_class),
                                            branch,
                                            split_depth,
                                            pending,
                                            &mut |task| own.push(task),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("scpm worker panicked");

    // Deterministic merge: lattice paths order the per-task results exactly
    // like the serial depth-first traversal (a parent's path is a strict
    // prefix of — hence sorts before — all of its descendants').
    let mut parts = parts.into_inner();
    parts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    let mut traces = Vec::with_capacity(parts.len());
    for (path, part) in parts {
        traces.push(SubtreeTrace {
            path,
            stats: part.stats,
        });
        result.reports.extend(part.reports);
        result.patterns.extend(part.patterns);
        result.stats.merge(&part.stats);
    }
    result.stats.elapsed = start.elapsed();
    (result, traces)
}

/// Decrements the pending-task counter when dropped — *also* during a
/// panic unwind, so a crashing worker cannot strand the others in their
/// idle loop (they drain the remaining tasks and exit; the panic then
/// propagates through the scope join).
struct PendingGuard<'a>(&'a AtomicUsize);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One round-robin steal attempt over the other workers' deques.
fn steal_from_peers(stealers: &[Stealer<Task>], wid: usize) -> Option<Task> {
    let n = stealers.len();
    for k in 1..n {
        if let Some(task) = stealers[(wid + k) % n].steal().success() {
            return Some(task);
        }
    }
    None
}

/// The PR-1 branch-level driver, retained as the benchmark baseline for
/// the work-stealing scheduler (and as a third independent implementation
/// for the determinism tests).
///
/// Distributes only level-1 branches over `num_threads` workers (clamped
/// to the branch count) via an atomic cursor; a single hot branch
/// serializes on one worker, which is precisely the weakness
/// [`run_parallel`] removes. Output is bit-identical to [`Scpm::run`].
pub fn run_parallel_branch_level(
    graph: &AttributedGraph,
    params: ScpmParams,
    num_threads: usize,
) -> ScpmResult {
    let scpm = Scpm::new(graph, params);
    if num_threads <= 1 {
        return scpm.run();
    }
    let start = Instant::now();
    let mut result = ScpmResult::default();
    let level1 = {
        let engine = scpm.engine();
        scpm.level1_entries(&engine, &mut result)
    };

    let branches = level1.len();
    let workers = num_threads.min(branches);
    let next_branch = AtomicUsize::new(0);
    let mut branch_results: Vec<ScpmResult> = Vec::new();
    if workers > 0 {
        crossbeam::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                let scpm_ref = &scpm;
                let level1_ref = &level1;
                let next_ref = &next_branch;
                handles.push(scope.spawn(move |_| {
                    let engine = scpm_ref.engine();
                    // (branch index, branch-local result) pairs.
                    let mut locals: Vec<(usize, ScpmResult)> = Vec::new();
                    loop {
                        let i = next_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= branches {
                            break;
                        }
                        let mut local = ScpmResult::default();
                        scpm_ref.enumerate_branch(&engine, level1_ref, i, &mut local);
                        locals.push((i, local));
                    }
                    locals
                }));
            }
            let mut all: Vec<(usize, ScpmResult)> = Vec::new();
            for handle in handles {
                all.extend(handle.join().expect("scpm worker panicked"));
            }
            all.sort_by_key(|(i, _)| *i);
            branch_results = all.into_iter().map(|(_, r)| r).collect();
        })
        .expect("crossbeam scope failed");
    }

    for branch in branch_results {
        result.reports.extend(branch.reports);
        result.patterns.extend(branch.patterns);
        result.stats.merge(&branch.stats);
    }
    result.stats.elapsed = start.elapsed();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::figure1::figure1;

    type ReportRows = Vec<(Vec<u32>, usize, bool)>;
    type PatternRows = Vec<(Vec<u32>, Vec<u32>)>;

    fn comparable(r: &ScpmResult) -> (ReportRows, PatternRows) {
        let reports = r
            .reports
            .iter()
            .map(|rep| (rep.attrs.clone(), rep.support, rep.qualified))
            .collect();
        let patterns = r
            .patterns
            .iter()
            .map(|p| (p.attrs.clone(), p.clique.vertices.clone()))
            .collect();
        (reports, patterns)
    }

    #[test]
    fn parallel_output_equals_serial_in_order() {
        let g = figure1();
        let params = ScpmParams::new(2, 0.6, 4).with_eps_min(0.1);
        let serial = Scpm::new(&g, params.clone()).run();
        for threads in [1, 2, 4] {
            for split_depth in [0, 1, 2, 4] {
                let config = ParallelConfig::new(threads).with_split_depth(split_depth);
                let parallel = run_parallel_with(&g, params.clone(), &config);
                assert_eq!(
                    comparable(&serial),
                    comparable(&parallel),
                    "threads = {threads}, split_depth = {split_depth}"
                );
                assert_eq!(
                    serial.stats.attribute_sets_examined,
                    parallel.stats.attribute_sets_examined
                );
            }
        }
    }

    #[test]
    fn branch_level_baseline_matches_serial() {
        let g = figure1();
        let params = ScpmParams::new(2, 0.6, 4).with_eps_min(0.1);
        let serial = Scpm::new(&g, params.clone()).run();
        for threads in [1, 2, 8] {
            let baseline = run_parallel_branch_level(&g, params.clone(), threads);
            assert_eq!(
                comparable(&serial),
                comparable(&baseline),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn worker_clamp_handles_degenerate_level1() {
        // σmin larger than any support: level 1 is empty, so no workers
        // should spawn and the run must still terminate with the (empty)
        // serial result.
        let g = figure1();
        let params = ScpmParams::new(100, 0.6, 4);
        let serial = Scpm::new(&g, params.clone()).run();
        let parallel = run_parallel(&g, params, 8);
        assert_eq!(comparable(&serial), comparable(&parallel));
        assert!(parallel.reports.is_empty());
    }

    #[test]
    fn task_bound_formula() {
        assert_eq!(parallel_task_bound(0, 0), 0);
        assert_eq!(parallel_task_bound(5, 0), 5);
        // Splitting: one evaluation task per level-1 pair.
        assert_eq!(parallel_task_bound(5, 1), 10);
        assert_eq!(parallel_task_bound(1, 3), 0);
        assert_eq!(parallel_task_bound(2, 3), 1);
        // Saturates instead of overflowing.
        assert_eq!(parallel_task_bound(usize::MAX, 2), usize::MAX / 2);
    }
}
