//! Binary serialization of the evaluation memo ([`EvalMemo`]).
//!
//! The memo is what makes a restarted server cheap: recovery reloads
//! the last checkpoint's memo and replays the journal through the
//! incremental path, reusing every persisted evaluation instead of
//! running a recording mine (the ROADMAP's PR-7 follow-up). The file
//! format mirrors the snapshot format's defensive layout — magic,
//! version, trailing FNV-1a-64 checksum, then structural validation of
//! every length and count behind it:
//!
//! ```text
//! "SCPMMEMO" u32 version=1
//! u64 params_fingerprint        fingerprint(ScpmParams), see below
//! u64 graph_fingerprint         fnv1a64(snapshot::encode(graph))
//! u64 entries                   then entries × record, keys ascending
//!   u32 key_len, key_len × u32  attribute-set key (sorted ids)
//!   u64 support
//!   u64 epsilon                 f64::to_bits
//!   u64 covered_len, × u32      covered vertex ids
//!   15 × u64                    coverage SearchStats (field order)
//!   u8 sub_built, u8 has_topk
//!   if has_topk: u64 cliques, each (u32 len, len × u32, u64 mdr_bits,
//!                u64 density_bits), then 15 × u64 top-k SearchStats
//! u64 checksum                  FNV-1a 64 of every preceding byte
//! ```
//!
//! Keys are written in ascending order and floats as raw IEEE-754 bits,
//! so encoding is deterministic: the same memo always produces the same
//! bytes. The two fingerprints pin the memo to the parameters and the
//! exact graph it was recorded against; recovery checks both and falls
//! back to a recording mine (with a report, never silently wrong
//! results) on any mismatch.

use std::collections::HashMap;

use scpm_graph::attributed::AttrId;
use scpm_graph::csr::VertexId;
use scpm_graph::snapshot::fnv1a64;
use scpm_quasiclique::{QuasiClique, SearchOrder, SearchStats};

use crate::incremental::{EvalMemo, EvalRecord};
use crate::params::ScpmParams;

const MAGIC: &[u8; 8] = b"SCPMMEMO";

/// Current memo file format version.
pub const VERSION: u32 = 1;

/// Number of `u64` counters a [`SearchStats`] serializes to.
const STATS_FIELDS: usize = 15;

/// Errors produced while decoding a memo file.
#[derive(Debug, PartialEq, Eq)]
pub enum MemoError {
    /// The buffer does not start with the memo magic.
    NotAMemo,
    /// Unsupported format version.
    BadVersion(u32),
    /// The trailing checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// The buffer ended before the declared content.
    Truncated {
        /// What the decoder was reading.
        reading: &'static str,
    },
    /// Bytes remain after the declared content.
    TrailingData {
        /// Number of unconsumed payload bytes.
        bytes: usize,
    },
    /// A declared count is implausible (corrupt behind a forged checksum).
    OutOfRange {
        /// What the decoder was reading.
        reading: &'static str,
        /// The offending value.
        value: u64,
    },
    /// Underlying I/O failure (file variants only).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for MemoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoError::NotAMemo => write!(f, "not a scpm memo file (bad magic)"),
            MemoError::BadVersion(v) => write!(
                f,
                "unsupported memo version {v} (this build reads version {VERSION})"
            ),
            MemoError::ChecksumMismatch { stored, computed } => write!(
                f,
                "memo checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            MemoError::Truncated { reading } => {
                write!(f, "memo truncated while reading {reading}")
            }
            MemoError::TrailingData { bytes } => {
                write!(f, "memo has {bytes} trailing bytes after declared content")
            }
            MemoError::OutOfRange { reading, value } => {
                write!(f, "memo {reading} value {value} out of range")
            }
            MemoError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for MemoError {}

impl From<std::io::Error> for MemoError {
    fn from(e: std::io::Error) -> Self {
        MemoError::Io(e.kind())
    }
}

/// Fingerprint of every result-affecting parameter, stored in the memo
/// header. A memo recorded under different parameters must not replay:
/// records carry ε values, covered sets, and search counters that are
/// functions of the parameters.
pub fn params_fingerprint(params: &ScpmParams) -> u64 {
    let mut buf = Vec::with_capacity(26 * 8);
    let mut word = |w: u64| buf.extend_from_slice(&w.to_le_bytes());
    word(params.sigma_min as u64);
    word(params.quasi_clique.gamma.to_bits());
    word(params.quasi_clique.min_size as u64);
    word(params.eps_min.to_bits());
    word(params.delta_min.to_bits());
    word(params.k as u64);
    word(match params.search_order {
        SearchOrder::Dfs => 0,
        SearchOrder::Bfs => 1,
    });
    word(params.max_attrs as u64);
    word(params.min_attrs as u64);
    word(params.prune.vertex_pruning as u64);
    word(params.prune.eps_pruning as u64);
    word(params.prune.delta_pruning as u64);
    word(params.qc_prune.feasibility as u64);
    word(params.qc_prune.bounds as u64);
    word(params.qc_prune.critical as u64);
    word(params.qc_prune.cover_vertex as u64);
    word(params.qc_prune.lookahead as u64);
    word(params.qc_prune.covered_candidate as u64);
    word(params.qc_prune.diameter2 as u64);
    // The representation never changes *results*, but memo records
    // carry representation-dependent kernel counters (edge_tests,
    // probes_elided, …) that feed the served /stats payload; replaying
    // them under another representation would misreport. Pin it.
    word(params.repr as u64);
    fnv1a64(&buf)
}

fn put_stats(buf: &mut Vec<u8>, s: &SearchStats) {
    for w in [
        s.nodes_visited,
        s.pruned_feasibility,
        s.pruned_interval,
        s.forced_critical,
        s.pruned_cover,
        s.pruned_lookahead,
        s.pruned_covered,
        s.pruned_size_bound,
        s.emitted,
        s.edge_tests,
        s.kernel_ops,
        s.fused_ops,
        s.blocks_skipped,
        s.probes_elided,
        s.batch_ops,
    ] {
        buf.extend_from_slice(&w.to_le_bytes());
    }
}

/// Encodes a memo (with the fingerprints it is pinned to) into the
/// deterministic binary format.
pub fn encode_memo(memo: &EvalMemo, params_fingerprint: u64, graph_fingerprint: u64) -> Vec<u8> {
    let mut keys: Vec<&Vec<AttrId>> = memo.keys().collect();
    keys.sort();
    let mut buf = Vec::with_capacity(8 + 4 + 8 * 3 + memo.len() * 64);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&params_fingerprint.to_le_bytes());
    buf.extend_from_slice(&graph_fingerprint.to_le_bytes());
    buf.extend_from_slice(&(memo.len() as u64).to_le_bytes());
    for key in keys {
        let rec = &memo[key];
        buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
        for &a in key {
            buf.extend_from_slice(&a.to_le_bytes());
        }
        buf.extend_from_slice(&(rec.support as u64).to_le_bytes());
        buf.extend_from_slice(&rec.epsilon.to_bits().to_le_bytes());
        buf.extend_from_slice(&(rec.covered.len() as u64).to_le_bytes());
        for &v in &rec.covered {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        put_stats(&mut buf, &rec.coverage_stats);
        buf.push(rec.sub_built as u8);
        buf.push(rec.topk.is_some() as u8);
        if let Some((cliques, stats)) = &rec.topk {
            buf.extend_from_slice(&(cliques.len() as u64).to_le_bytes());
            for q in cliques {
                buf.extend_from_slice(&(q.vertices.len() as u32).to_le_bytes());
                for &v in &q.vertices {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
                buf.extend_from_slice(&q.min_degree_ratio.to_bits().to_le_bytes());
                buf.extend_from_slice(&q.edge_density.to_bits().to_le_bytes());
            }
            put_stats(&mut buf, stats);
        }
    }
    let sum = fnv1a64(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// A decoded memo file: the memo plus the fingerprints it was pinned to.
#[derive(Debug)]
pub struct DecodedMemo {
    /// The evaluation memo.
    pub memo: EvalMemo,
    /// Fingerprint of the parameters the memo was recorded under.
    pub params_fingerprint: u64,
    /// Fingerprint of the snapshot encoding of the recorded-against graph.
    pub graph_fingerprint: u64,
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, reading: &'static str) -> Result<&'a [u8], MemoError> {
        if self.data.len() - self.pos < n {
            return Err(MemoError::Truncated { reading });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, reading: &'static str) -> Result<u8, MemoError> {
        Ok(self.take(1, reading)?[0])
    }

    fn u32(&mut self, reading: &'static str) -> Result<u32, MemoError> {
        Ok(u32::from_le_bytes(
            self.take(4, reading)?.try_into().unwrap(),
        ))
    }

    fn u64(&mut self, reading: &'static str) -> Result<u64, MemoError> {
        Ok(u64::from_le_bytes(
            self.take(8, reading)?.try_into().unwrap(),
        ))
    }

    /// A count that `per_item` more bytes must back — rejects forged
    /// counts before they can drive a huge allocation.
    fn count(&mut self, per_item: usize, reading: &'static str) -> Result<usize, MemoError> {
        let n = self.u64(reading)?;
        let remaining = (self.data.len() - self.pos) as u64;
        if n.checked_mul(per_item as u64).is_none_or(|b| b > remaining) {
            return Err(MemoError::OutOfRange { reading, value: n });
        }
        Ok(n as usize)
    }
}

fn take_stats(c: &mut Cursor<'_>, reading: &'static str) -> Result<SearchStats, MemoError> {
    let mut w = [0u64; STATS_FIELDS];
    for slot in &mut w {
        *slot = c.u64(reading)?;
    }
    Ok(SearchStats {
        nodes_visited: w[0],
        pruned_feasibility: w[1],
        pruned_interval: w[2],
        forced_critical: w[3],
        pruned_cover: w[4],
        pruned_lookahead: w[5],
        pruned_covered: w[6],
        pruned_size_bound: w[7],
        emitted: w[8],
        edge_tests: w[9],
        kernel_ops: w[10],
        fused_ops: w[11],
        blocks_skipped: w[12],
        probes_elided: w[13],
        batch_ops: w[14],
    })
}

/// Decodes a memo file. Checks run outside-in like the snapshot
/// decoder: magic, version, whole-file checksum, then the structural
/// pass (every count is validated against the remaining bytes, so a
/// forged checksum still cannot panic the decoder or balloon memory).
pub fn decode_memo(data: &[u8]) -> Result<DecodedMemo, MemoError> {
    if data.len() < 8 || &data[..8] != MAGIC {
        return Err(MemoError::NotAMemo);
    }
    if data.len() < 12 {
        return Err(MemoError::Truncated { reading: "header" });
    }
    let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(MemoError::BadVersion(version));
    }
    if data.len() < 12 + 8 {
        return Err(MemoError::Truncated {
            reading: "checksum",
        });
    }
    let body = &data[..data.len() - 8];
    let stored = u64::from_le_bytes(data[data.len() - 8..].try_into().unwrap());
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(MemoError::ChecksumMismatch { stored, computed });
    }

    let mut c = Cursor {
        data: body,
        pos: 12,
    };
    let params_fingerprint = c.u64("params fingerprint")?;
    let graph_fingerprint = c.u64("graph fingerprint")?;
    let entries = c.count(4, "entry count")?;
    let mut memo: EvalMemo = HashMap::with_capacity(entries);
    for _ in 0..entries {
        let key_len = c.u32("key length")? as usize;
        let mut key = Vec::with_capacity(key_len.min(1 << 16));
        for _ in 0..key_len {
            key.push(c.u32("key attribute")? as AttrId);
        }
        let support = c.u64("support")? as usize;
        let epsilon = f64::from_bits(c.u64("epsilon")?);
        let covered_len = c.count(4, "covered count")?;
        let mut covered = Vec::with_capacity(covered_len);
        for _ in 0..covered_len {
            covered.push(c.u32("covered vertex")? as VertexId);
        }
        let coverage_stats = take_stats(&mut c, "coverage stats")?;
        let sub_built = c.u8("sub_built flag")? != 0;
        let has_topk = c.u8("topk flag")?;
        let topk = match has_topk {
            0 => None,
            1 => {
                let n = c.count(4 + 16, "clique count")?;
                let mut cliques = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = c.u32("clique size")? as usize;
                    let mut vertices = Vec::with_capacity(len.min(1 << 20));
                    for _ in 0..len {
                        vertices.push(c.u32("clique vertex")? as VertexId);
                    }
                    let min_degree_ratio = f64::from_bits(c.u64("clique gamma")?);
                    let edge_density = f64::from_bits(c.u64("clique density")?);
                    cliques.push(QuasiClique {
                        vertices,
                        min_degree_ratio,
                        edge_density,
                    });
                }
                let stats = take_stats(&mut c, "topk stats")?;
                Some((cliques, stats))
            }
            v => {
                return Err(MemoError::OutOfRange {
                    reading: "topk flag",
                    value: v as u64,
                })
            }
        };
        if memo
            .insert(
                key,
                EvalRecord {
                    support,
                    epsilon,
                    covered,
                    coverage_stats,
                    sub_built,
                    topk,
                },
            )
            .is_some()
        {
            return Err(MemoError::OutOfRange {
                reading: "duplicate memo key",
                value: memo.len() as u64,
            });
        }
    }
    if c.pos != body.len() {
        return Err(MemoError::TrailingData {
            bytes: body.len() - c.pos,
        });
    }
    Ok(DecodedMemo {
        memo,
        params_fingerprint,
        graph_fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ParallelConfig;
    use crate::Scpm;
    use scpm_graph::figure1::figure1;

    fn sample_memo() -> (EvalMemo, ScpmParams) {
        let g = figure1();
        let params = ScpmParams::new(4, 0.5, 3).with_min_attrs(1);
        let mut scpm = Scpm::new(&g, params.clone())
            .with_incremental(crate::incremental::IncrementalCtx::recording());
        let _ = scpm.run_scheduled(&ParallelConfig::new(1));
        let (memo, _) = scpm.take_incremental().unwrap().into_parts();
        assert!(!memo.is_empty());
        (memo, params)
    }

    #[test]
    fn roundtrip_real_memo() {
        let (memo, params) = sample_memo();
        let pfp = params_fingerprint(&params);
        let bytes = encode_memo(&memo, pfp, 0xabcd);
        let dec = decode_memo(&bytes).unwrap();
        assert_eq!(dec.params_fingerprint, pfp);
        assert_eq!(dec.graph_fingerprint, 0xabcd);
        assert_eq!(dec.memo.len(), memo.len());
        for (key, rec) in &memo {
            let got = &dec.memo[key];
            assert_eq!(got.support, rec.support);
            assert_eq!(got.epsilon.to_bits(), rec.epsilon.to_bits());
            assert_eq!(got.covered, rec.covered);
            assert_eq!(got.coverage_stats, rec.coverage_stats);
            assert_eq!(got.sub_built, rec.sub_built);
            match (&got.topk, &rec.topk) {
                (None, None) => {}
                (Some((qa, sa)), Some((qb, sb))) => {
                    assert_eq!(sa, sb);
                    assert_eq!(qa.len(), qb.len());
                    for (x, y) in qa.iter().zip(qb) {
                        assert_eq!(x.vertices, y.vertices);
                        assert_eq!(x.min_degree_ratio.to_bits(), y.min_degree_ratio.to_bits());
                        assert_eq!(x.edge_density.to_bits(), y.edge_density.to_bits());
                    }
                }
                other => panic!("topk mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let (memo, params) = sample_memo();
        let pfp = params_fingerprint(&params);
        assert_eq!(encode_memo(&memo, pfp, 7), encode_memo(&memo, pfp, 7));
        // And insertion order cannot matter: rebuild the map in a
        // different order.
        let mut entries: Vec<_> = memo.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        entries.reverse();
        let reordered: EvalMemo = entries.into_iter().collect();
        assert_eq!(encode_memo(&memo, pfp, 7), encode_memo(&reordered, pfp, 7));
    }

    #[test]
    fn fingerprint_distinguishes_parameters() {
        let base = ScpmParams::new(4, 0.5, 3);
        let fp = params_fingerprint(&base);
        assert_eq!(fp, params_fingerprint(&base.clone()));
        assert_ne!(fp, params_fingerprint(&ScpmParams::new(5, 0.5, 3)));
        assert_ne!(fp, params_fingerprint(&ScpmParams::new(4, 0.6, 3)));
        assert_ne!(fp, params_fingerprint(&base.clone().with_eps_min(0.1)));
        assert_ne!(fp, params_fingerprint(&base.clone().with_top_k(2)));
        assert_ne!(
            fp,
            params_fingerprint(&base.clone().with_order(SearchOrder::Bfs))
        );
    }

    #[test]
    fn every_prefix_and_flip_fails_cleanly() {
        let (memo, params) = sample_memo();
        let bytes = encode_memo(&memo, params_fingerprint(&params), 1);
        for cut in 0..bytes.len() {
            assert!(decode_memo(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
        for off in (0..bytes.len()).step_by(3) {
            let mut bad = bytes.clone();
            bad[off] ^= 0x20;
            assert!(decode_memo(&bad).is_err(), "flip at {off} accepted");
        }
    }

    #[test]
    fn forged_count_is_rejected_without_allocating() {
        // Entry count far beyond the buffer, checksum resealed: the
        // count/remaining-bytes guard must reject it.
        let (memo, params) = sample_memo();
        let mut bytes = encode_memo(&memo, params_fingerprint(&params), 1);
        let count_off = 8 + 4 + 8 + 8;
        bytes[count_off..count_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let body = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..body]).to_le_bytes();
        bytes[body..].copy_from_slice(&sum);
        assert!(matches!(
            decode_memo(&bytes),
            Err(MemoError::OutOfRange { .. })
        ));
    }

    #[test]
    fn empty_memo_roundtrips() {
        let bytes = encode_memo(&EvalMemo::new(), 1, 2);
        let dec = decode_memo(&bytes).unwrap();
        assert!(dec.memo.is_empty());
        assert_eq!((dec.params_fingerprint, dec.graph_fingerprint), (1, 2));
    }
}
