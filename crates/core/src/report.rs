//! Plain-text rendering of mining results in the layout of the paper's
//! tables (top attribute sets by support, structural correlation, and
//! normalized structural correlation).

use scpm_graph::attributed::AttributedGraph;

use crate::pattern::{AttributeSetReport, Pattern, ScpmResult};

/// Formats one report row: `{attrs}  σ  ε  δ_lb`.
pub fn format_row(g: &AttributedGraph, r: &AttributeSetReport) -> String {
    format!(
        "{:<40} σ={:<8} ε={:<6.3} δlb={:<12.4}",
        g.format_attr_set(&r.attrs),
        r.support,
        r.epsilon,
        r.delta_lb
    )
}

/// Renders the three top-10-style lists of Tables 2–4: top by support,
/// top by ε, top by δ_lb.
pub fn render_top_tables(g: &AttributedGraph, result: &ScpmResult, limit: usize) -> String {
    let mut out = String::new();
    let sections: [(&str, Vec<&AttributeSetReport>); 3] = [
        ("top support (σ)", result.top_by_support(limit)),
        (
            "top structural correlation (ε)",
            result.top_by_epsilon(limit),
        ),
        (
            "top normalized structural correlation (δlb)",
            result.top_by_delta(limit),
        ),
    ];
    for (title, rows) in sections {
        out.push_str(&format!("== {title} ==\n"));
        for r in rows {
            out.push_str(&format_row(g, r));
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Renders patterns like Table 1: `(S, Q)  size  γ  σ  ε`.
pub fn render_patterns(g: &AttributedGraph, result: &ScpmResult, limit: usize) -> String {
    let mut out = String::new();
    out.push_str("pattern                                  size  γ     σ     ε\n");
    for p in result.patterns.iter().take(limit) {
        let report = result.report_for(&p.attrs);
        let (sigma, eps) = report.map(|r| (r.support, r.epsilon)).unwrap_or((0, 0.0));
        let vertices: Vec<String> = p.clique.vertices.iter().map(|v| v.to_string()).collect();
        out.push_str(&format!(
            "({}, {{{}}})  {}  {:.2}  {}  {:.2}\n",
            g.format_attr_set(&p.attrs),
            vertices.join(","),
            p.clique.size(),
            p.clique.min_degree_ratio,
            sigma,
            eps
        ));
    }
    out
}

/// Summarizes a run for log output.
pub fn render_summary(result: &ScpmResult) -> String {
    let s = &result.stats;
    format!(
        "examined={} qualified={} patterns={} pruned[support={} eps={} delta={}] qc_nodes[coverage={} topk={}] qc_work[edge_tests={} kernel_ops={} fused_ops={} blocks_skipped={} probes_elided={} batch_ops={}] elapsed={:?}",
        s.attribute_sets_examined,
        s.attribute_sets_qualified,
        result.patterns.len(),
        s.pruned_support,
        s.pruned_eps_bound,
        s.pruned_delta_bound,
        s.qc_nodes_coverage,
        s.qc_nodes_topk,
        s.qc_edge_tests,
        s.qc_kernel_ops,
        s.qc_fused_ops,
        s.qc_blocks_skipped,
        s.qc_probes_elided,
        s.qc_batch_ops,
        s.elapsed
    )
}

/// Largest patterns across all attribute sets (the paper's Figures 3(b),
/// 5(b), 6(b) showcase exactly these).
pub fn largest_patterns(result: &ScpmResult, limit: usize) -> Vec<&Pattern> {
    let mut refs: Vec<&Pattern> = result.patterns.iter().collect();
    refs.sort_by(|a, b| scpm_quasiclique::pattern_order(&a.clique, &b.clique));
    refs.truncate(limit);
    refs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Scpm;
    use crate::params::ScpmParams;
    use scpm_graph::figure1::figure1;

    #[test]
    fn render_table1_layout() {
        let g = figure1();
        let result = Scpm::new(&g, ScpmParams::new(3, 0.6, 4).with_eps_min(0.5)).run();
        let tables = render_top_tables(&g, &result, 3);
        assert!(tables.contains("top support"));
        assert!(tables.contains("{A}"));
        let patterns = render_patterns(&g, &result, 10);
        assert!(patterns.lines().count() >= 8); // header + 7 rows
        let summary = render_summary(&result);
        assert!(summary.contains("examined=5"));
    }

    #[test]
    fn largest_patterns_sorted() {
        let g = figure1();
        let result = Scpm::new(&g, ScpmParams::new(3, 0.6, 4).with_eps_min(0.5)).run();
        let largest = largest_patterns(&result, 2);
        assert_eq!(largest.len(), 2);
        assert_eq!(largest[0].clique.size(), 6);
        assert!(largest[0].clique.size() >= largest[1].clique.size());
    }
}
