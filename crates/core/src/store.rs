//! The durable data directory: generation-numbered snapshots, memo
//! files, and write-ahead journals, with checkpointing and recovery.
//!
//! A data directory holds the crash-safe state of one served graph:
//!
//! ```text
//! data-dir/
//!   snapshot-<g>.snap   atomic graph snapshot at generation g
//!   memo-<g>.bin        evaluation memo of the mine at generation g
//!   journal-<g>.wal     write-ahead log of deltas applied after g
//! ```
//!
//! The **generation** of a catalog is the cumulative count of deltas
//! ever journaled; a checkpoint at generation `g` freezes the graph and
//! memo into `snapshot-<g>` / `memo-<g>` and opens a fresh
//! `journal-<g>` whose records continue the sequence at `g + 1`. The
//! checkpoint order is: snapshot (atomic) → memo (atomic) → journal
//! creation (atomic) — the journal's appearance is the commit point —
//! then old generations are pruned down to the newest two, so one full
//! fallback generation always survives a corrupt snapshot.
//!
//! **Recovery** ([`recover`]) loads the newest decodable snapshot
//! (falling back one generation on corruption), chains every journal's
//! records into one contiguous delta sequence, repairs a torn tail on
//! the live journal, and hands the deltas past the chosen snapshot to
//! [`replay_mine`], which re-mines them through the incremental path —
//! replaying the persisted memo instead of running a recording mine, so
//! a restart costs a memo replay, not a full search. The crash-recovery
//! differential harness (`tests/crash_recovery.rs`) proves every fault
//! point of this protocol lands on an atomic pre- or post-commit state;
//! the full protocol is documented in `docs/DURABILITY.md`.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use scpm_graph::attributed::AttributedGraph;
use scpm_graph::delta::GraphDelta;
use scpm_graph::fault::{write_atomic_with, FaultInjector};
use scpm_graph::journal::{read_journal, repair_torn_tail, JournalError, JournalWriter, TornTail};
use scpm_graph::snapshot::{self, fnv1a64, SnapshotError};

use crate::incremental::{DirtySet, EvalMemo, IncrementalCtx, IncrementalStats};
use crate::memoio::{self, MemoError};
use crate::nullmodel::NullModelCache;
use crate::parallel::ParallelConfig;
use crate::params::ScpmParams;
use crate::pattern::ScpmResult;
use crate::Scpm;

/// Errors produced by checkpointing or recovery.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The directory holds no snapshot at all (uninitialized).
    Uninitialized,
    /// Every candidate snapshot failed to decode; recovery cannot
    /// proceed without operator intervention.
    NoUsableSnapshot {
        /// The generations tried, newest first, with their errors.
        tried: Vec<(u64, SnapshotError)>,
    },
    /// A journal failed to read (mid-log corruption, bad header, …).
    Journal {
        /// Generation of the offending journal file.
        generation: u64,
        /// The underlying journal error.
        error: JournalError,
    },
    /// The chained journal records do not form a contiguous sequence —
    /// a journal file is missing or was pruned while still needed.
    SequenceGap {
        /// First sequence number that is missing.
        expected: u64,
        /// Sequence number actually found (or `None` at end of chain).
        found: Option<u64>,
    },
    /// A journaled delta no longer applies to the recovered graph
    /// (impossible without external tampering; never silently skipped).
    BadDelta {
        /// Sequence number of the offending record.
        seq: u64,
        /// Why it failed to apply.
        detail: String,
    },
    /// Snapshot encode/write failure during a checkpoint.
    Snapshot(SnapshotError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Uninitialized => {
                write!(f, "data directory holds no snapshot (not initialized)")
            }
            StoreError::NoUsableSnapshot { tried } => {
                write!(f, "no usable snapshot: ")?;
                for (i, (g, e)) in tried.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "generation {g}: {e}")?;
                }
                Ok(())
            }
            StoreError::Journal { generation, error } => {
                write!(f, "journal for generation {generation}: {error}")
            }
            StoreError::SequenceGap { expected, found } => write!(
                f,
                "journal chain gap: expected delta {expected}, found {found:?}"
            ),
            StoreError::BadDelta { seq, detail } => {
                write!(f, "journaled delta {seq} does not apply: {detail}")
            }
            StoreError::Snapshot(e) => write!(f, "snapshot write failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Handle to a durable data directory (creates it on open).
#[derive(Debug, Clone)]
pub struct DataDir {
    root: PathBuf,
}

impl DataDir {
    /// Opens (creating if needed) a data directory.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<DataDir> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(DataDir { root })
    }

    /// The directory path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the generation-`g` snapshot.
    pub fn snapshot_path(&self, g: u64) -> PathBuf {
        self.root.join(format!("snapshot-{g:020}.snap"))
    }

    /// Path of the generation-`g` evaluation memo.
    pub fn memo_path(&self, g: u64) -> PathBuf {
        self.root.join(format!("memo-{g:020}.bin"))
    }

    /// Path of the journal continuing from generation `g`.
    pub fn journal_path(&self, g: u64) -> PathBuf {
        self.root.join(format!("journal-{g:020}.wal"))
    }

    fn list_generations(&self, prefix: &str, suffix: &str) -> io::Result<Vec<u64>> {
        let mut gens = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(mid) = name
                .strip_prefix(prefix)
                .and_then(|r| r.strip_suffix(suffix))
            {
                if let Ok(g) = mid.parse::<u64>() {
                    gens.push(g);
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Snapshot generations present, ascending.
    pub fn snapshot_generations(&self) -> io::Result<Vec<u64>> {
        self.list_generations("snapshot-", ".snap")
    }

    /// Journal generations present, ascending.
    pub fn journal_generations(&self) -> io::Result<Vec<u64>> {
        self.list_generations("journal-", ".wal")
    }

    /// Whether the directory holds at least one snapshot.
    pub fn is_initialized(&self) -> bool {
        matches!(self.snapshot_generations(), Ok(g) if !g.is_empty())
    }

    /// Best-effort prune after a checkpoint at `current`: keep the two
    /// newest snapshot generations (current + one fallback) with their
    /// memos and journals, drop everything older plus `*.tmp` debris.
    /// Errors are swallowed — pruning is an optimization, never a
    /// correctness requirement.
    fn prune(&self, current: u64) {
        let Ok(snap_gens) = self.snapshot_generations() else {
            return;
        };
        let keep_floor = snap_gens
            .iter()
            .rev()
            .filter(|&&g| g <= current)
            .nth(1)
            .copied()
            .unwrap_or(current);
        let drop_files = |gens: &[u64], path_of: &dyn Fn(u64) -> PathBuf| {
            for &g in gens.iter().filter(|&&g| g < keep_floor) {
                let _ = std::fs::remove_file(path_of(g));
            }
        };
        drop_files(&snap_gens, &|g| self.snapshot_path(g));
        if let Ok(gens) = self.list_generations("memo-", ".bin") {
            drop_files(&gens, &|g| self.memo_path(g));
        }
        if let Ok(gens) = self.journal_generations() {
            drop_files(&gens, &|g| self.journal_path(g));
        }
        if let Ok(entries) = std::fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().ends_with(".tmp") {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
    }
}

/// Writes a checkpoint at `generation`: atomic snapshot, atomic memo,
/// then a fresh journal whose atomic creation is the commit point.
/// Returns the open journal writer subsequent deltas append to. Old
/// generations are pruned (best-effort) down to the newest two.
pub fn checkpoint(
    dir: &DataDir,
    generation: u64,
    graph: &AttributedGraph,
    memo: &EvalMemo,
    params: &ScpmParams,
) -> Result<JournalWriter, StoreError> {
    checkpoint_with(&FaultInjector::none(), dir, generation, graph, memo, params)
}

/// [`checkpoint`] with fault injection over every durability operation.
pub fn checkpoint_with(
    inj: &FaultInjector,
    dir: &DataDir,
    generation: u64,
    graph: &AttributedGraph,
    memo: &EvalMemo,
    params: &ScpmParams,
) -> Result<JournalWriter, StoreError> {
    let snap_bytes = snapshot::encode(graph);
    write_atomic_with(inj, &dir.snapshot_path(generation), &snap_bytes)?;
    let memo_bytes = memoio::encode_memo(
        memo,
        memoio::params_fingerprint(params),
        fnv1a64(&snap_bytes),
    );
    write_atomic_with(inj, &dir.memo_path(generation), &memo_bytes)?;
    // Commit point: once journal-<g> exists, recovery prefers
    // generation g (its snapshot and memo are already in place).
    let writer = JournalWriter::create_with(inj, &dir.journal_path(generation), generation)?;
    dir.prune(generation);
    Ok(writer)
}

/// How many snapshot generations back recovery will probe on corruption
/// (the checkpoint protocol retains exactly one fallback generation).
const FALLBACK_DEPTH: usize = 2;

/// The recovered-but-not-yet-mined state of a data directory.
#[derive(Debug)]
pub struct RecoveredState {
    /// Graph decoded from the chosen snapshot.
    pub base_graph: AttributedGraph,
    /// Generation of the chosen snapshot.
    pub base_generation: u64,
    /// Memo loaded alongside the snapshot, with its params fingerprint —
    /// `None` (plus a note) when missing, corrupt, or recorded against a
    /// different graph.
    pub memo: Option<(EvalMemo, u64)>,
    /// Why the memo is unusable, when it is.
    pub memo_note: Option<String>,
    /// Deltas to replay past the snapshot, in sequence order
    /// (`base_generation + 1, …`).
    pub deltas: Vec<GraphDelta>,
    /// Snapshot generations that failed to decode before one succeeded
    /// (non-empty means recovery fell back).
    pub snapshot_errors: Vec<(u64, SnapshotError)>,
    /// Torn tail repaired off the live journal, if any.
    pub repaired: Option<TornTail>,
}

impl RecoveredState {
    /// The generation recovery lands on after replaying every delta.
    pub fn target_generation(&self) -> u64 {
        self.base_generation + self.deltas.len() as u64
    }
}

/// Recovers the durable state of a data directory: newest decodable
/// snapshot (falling back up to one generation), its memo, and the
/// contiguous chain of journaled deltas past it. Repairs (truncates) a
/// torn tail on the newest journal, reporting it. Fails — never guesses
/// — on mid-log corruption, a broken chain, or no usable snapshot.
pub fn recover(dir: &DataDir) -> Result<RecoveredState, StoreError> {
    let snap_gens = dir.snapshot_generations()?;
    if snap_gens.is_empty() {
        return Err(StoreError::Uninitialized);
    }

    // Newest decodable snapshot among the retained generations.
    let mut snapshot_errors = Vec::new();
    let mut chosen: Option<(u64, Vec<u8>, AttributedGraph)> = None;
    for &g in snap_gens.iter().rev().take(FALLBACK_DEPTH) {
        let bytes = match std::fs::read(dir.snapshot_path(g)) {
            Ok(b) => b,
            Err(e) => {
                snapshot_errors.push((g, SnapshotError::Io(e.kind())));
                continue;
            }
        };
        match snapshot::decode(&bytes) {
            Ok(graph) => {
                chosen = Some((g, bytes, graph));
                break;
            }
            Err(e) => snapshot_errors.push((g, e)),
        }
    }
    let Some((base_generation, snap_bytes, base_graph)) = chosen else {
        return Err(StoreError::NoUsableSnapshot {
            tried: snapshot_errors,
        });
    };

    // Repair a torn tail on the newest journal (the only one a crash
    // can have torn: sealed journals were complete before the next
    // checkpoint committed).
    let journal_gens = dir.journal_generations()?;
    let mut repaired = None;
    if let Some(&last) = journal_gens.last() {
        repaired =
            repair_torn_tail(dir.journal_path(last)).map_err(|error| StoreError::Journal {
                generation: last,
                error,
            })?;
    }

    // Chain every journal's records into one contiguous sequence. The
    // protocol guarantees each sealed journal ends exactly where the
    // next begins; anything else is a gap we refuse to paper over.
    let mut deltas: Vec<GraphDelta> = Vec::new();
    let mut next_expected: Option<u64> = None;
    for &g in &journal_gens {
        let read = read_journal(dir.journal_path(g)).map_err(|error| StoreError::Journal {
            generation: g,
            error,
        })?;
        debug_assert_eq!(read.base_generation, g);
        if let Some(expected) = next_expected {
            if read.base_generation != expected {
                return Err(StoreError::SequenceGap {
                    expected: expected + 1,
                    found: read.records.first().map(|r| r.seq),
                });
            }
        }
        for rec in &read.records {
            if rec.seq > base_generation {
                // Records at or below the snapshot are already folded
                // into it; replay only what came after.
                if base_generation + deltas.len() as u64 + 1 != rec.seq {
                    return Err(StoreError::SequenceGap {
                        expected: base_generation + deltas.len() as u64 + 1,
                        found: Some(rec.seq),
                    });
                }
                deltas.push(rec.delta.clone());
            }
        }
        next_expected = Some(read.last_seq());
    }

    // The memo of the chosen generation, pinned to exactly this
    // snapshot's bytes. Unusable memos degrade recovery to a recording
    // mine — slower, never wrong.
    let mut memo = None;
    let mut memo_note = None;
    let memo_path = dir.memo_path(base_generation);
    match std::fs::read(&memo_path) {
        Err(e) => {
            memo_note = Some(format!(
                "memo {} unreadable ({e}); recovery will run a recording mine",
                memo_path.display()
            ));
        }
        Ok(bytes) => match memoio::decode_memo(&bytes) {
            Err(e @ MemoError::NotAMemo)
            | Err(e @ MemoError::BadVersion(_))
            | Err(e @ MemoError::ChecksumMismatch { .. })
            | Err(e @ MemoError::Truncated { .. })
            | Err(e @ MemoError::TrailingData { .. })
            | Err(e @ MemoError::OutOfRange { .. })
            | Err(e @ MemoError::Io(_)) => {
                memo_note = Some(format!(
                    "memo {} corrupt ({e}); recovery will run a recording mine",
                    memo_path.display()
                ));
            }
            Ok(decoded) => {
                if decoded.graph_fingerprint != fnv1a64(&snap_bytes) {
                    memo_note = Some(
                        "memo was recorded against a different graph; \
                         recovery will run a recording mine"
                            .into(),
                    );
                } else {
                    memo = Some((decoded.memo, decoded.params_fingerprint));
                }
            }
        },
    }

    Ok(RecoveredState {
        base_graph,
        base_generation,
        memo,
        memo_note,
        deltas,
        snapshot_errors,
        repaired,
    })
}

/// Outcome of [`replay_mine`]: the fully recovered mining state.
#[derive(Debug)]
pub struct RecoveredMine {
    /// The graph after replaying every journaled delta.
    pub graph: AttributedGraph,
    /// Evaluation memo of the final mine (recorded, so updates chain).
    pub memo: EvalMemo,
    /// `exp(σ)` cache of the final graph version.
    pub cache: Arc<NullModelCache>,
    /// Mining result over the final graph — byte-identical to a
    /// from-scratch mine (the incremental-path invariant).
    pub result: ScpmResult,
    /// Generation of the recovered catalog (snapshot + replayed deltas).
    pub generation: u64,
    /// Generation of the snapshot recovery started from.
    pub checkpoint_generation: u64,
    /// Whether the persisted memo was replayed (`false` = recording
    /// mine, because the memo was unusable or params changed).
    pub memo_replayed: bool,
    /// Why the memo was not replayed, when it was not.
    pub memo_note: Option<String>,
    /// Summed incremental counters across every replayed step.
    pub incremental: IncrementalStats,
    /// Number of journaled deltas replayed.
    pub replayed_deltas: usize,
    /// Snapshot generations skipped as corrupt (non-empty = fell back).
    pub snapshot_errors: Vec<(u64, SnapshotError)>,
    /// Torn tail repaired off the live journal, if any.
    pub repaired: Option<TornTail>,
}

/// One incremental mine step shared by the replay fold.
fn mine_step(
    graph: &AttributedGraph,
    params: &ScpmParams,
    config: &ParallelConfig,
    ctx: IncrementalCtx,
) -> (ScpmResult, EvalMemo, IncrementalStats, Arc<NullModelCache>) {
    let cache = Arc::new(NullModelCache::new());
    let mut scpm =
        Scpm::with_cache(graph, params.clone(), Arc::clone(&cache)).with_incremental(ctx);
    let result = scpm.run_scheduled(config);
    let (memo, stats) = scpm
        .take_incremental()
        .expect("mine keeps its incremental context")
        .into_parts();
    (result, memo, stats, cache)
}

/// Replays a [`RecoveredState`] into a live mining state under `params`:
/// every journaled delta is applied and re-mined through the incremental
/// path, chaining memos, so the result is byte-identical to a full mine
/// of the final graph while reusing every persisted evaluation. When the
/// memo is unusable (or was recorded under different parameters) the
/// replay degrades to applying all deltas and running one recording
/// mine — reported, never silent.
pub fn replay_mine(
    state: RecoveredState,
    params: &ScpmParams,
    config: &ParallelConfig,
) -> Result<RecoveredMine, StoreError> {
    let RecoveredState {
        base_graph,
        base_generation,
        memo,
        mut memo_note,
        deltas,
        snapshot_errors,
        repaired,
    } = state;
    let replayed_deltas = deltas.len();
    let generation = base_generation + deltas.len() as u64;

    let memo = match memo {
        Some((memo, fp)) if fp == memoio::params_fingerprint(params) => Some(memo),
        Some(_) => {
            memo_note = Some(
                "memo was recorded under different parameters; \
                 recovery will run a recording mine"
                    .into(),
            );
            None
        }
        None => None,
    };

    match memo {
        None => {
            // Degraded path: fold the graph forward, then one recording
            // mine over the final graph.
            let mut graph = base_graph;
            for (seq, delta) in (base_generation + 1..).zip(deltas.iter()) {
                graph = delta
                    .apply(&graph)
                    .map_err(|e| StoreError::BadDelta {
                        seq,
                        detail: e.to_string(),
                    })?
                    .graph;
            }
            let (result, memo, stats, cache) =
                mine_step(&graph, params, config, IncrementalCtx::recording());
            Ok(RecoveredMine {
                graph,
                memo,
                cache,
                result,
                generation,
                checkpoint_generation: base_generation,
                memo_replayed: false,
                memo_note,
                incremental: stats,
                replayed_deltas,
                snapshot_errors,
                repaired,
            })
        }
        Some(mut prev_memo) => {
            // Replay path. With no deltas, mine the snapshot graph with
            // a clean dirty set: the graph is byte-identical to the one
            // the memo was recorded against, so every set replays.
            // With deltas, each step's dirty set narrows re-evaluation
            // to the delta's lattice region (the PR-7 invariant:
            // byte-identical to a full mine after every step).
            let mut graph = base_graph;
            let mut seq = base_generation;
            let mut total = IncrementalStats::default();
            let add = |total: &mut IncrementalStats, s: IncrementalStats| {
                total.reused += s.reused;
                total.reevaluated += s.reevaluated;
                total.live_kernel_ops += s.live_kernel_ops;
                total.reused_kernel_ops += s.reused_kernel_ops;
            };
            let (result, memo, cache) = if deltas.is_empty() {
                let dirty = DirtySet::clean(graph.num_attributes());
                let ctx = IncrementalCtx::update(Arc::new(prev_memo), dirty);
                let (r, m, s, c) = mine_step(&graph, params, config, ctx);
                add(&mut total, s);
                (r, m, c)
            } else {
                let mut last = None;
                for delta in &deltas {
                    seq += 1;
                    let applied = delta.apply(&graph).map_err(|e| StoreError::BadDelta {
                        seq,
                        detail: e.to_string(),
                    })?;
                    let dirty = DirtySet::from_delta(&applied.graph, &applied);
                    let ctx = IncrementalCtx::update(Arc::new(prev_memo), dirty);
                    let (r, m, s, c) = mine_step(&applied.graph, params, config, ctx);
                    add(&mut total, s);
                    graph = applied.graph;
                    prev_memo = m.clone();
                    last = Some((r, m, c));
                }
                last.expect("deltas is non-empty")
            };
            Ok(RecoveredMine {
                graph,
                memo,
                cache,
                result,
                generation,
                checkpoint_generation: base_generation,
                memo_replayed: true,
                memo_note: None,
                incremental: total,
                replayed_deltas,
                snapshot_errors,
                repaired,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::figure1::figure1;

    fn tdir(name: &str) -> DataDir {
        let root = std::env::temp_dir().join(format!("scpm_store_{name}"));
        let _ = std::fs::remove_dir_all(&root);
        DataDir::open(root).unwrap()
    }

    fn table1_params() -> ScpmParams {
        ScpmParams::new(3, 0.6, 4).with_eps_min(0.5)
    }

    fn full_mine(graph: &AttributedGraph, params: &ScpmParams) -> ScpmResult {
        crate::parallel::run_parallel_with(graph, params.clone(), &ParallelConfig::new(1))
    }

    fn seed(dir: &DataDir) -> (AttributedGraph, ScpmParams, JournalWriter) {
        let graph = figure1();
        let params = table1_params();
        let (_, memo, _, _) = mine_step(
            &graph,
            &params,
            &ParallelConfig::new(1),
            IncrementalCtx::recording(),
        );
        let writer = checkpoint(dir, 0, &graph, &memo, &params).unwrap();
        (graph, params, writer)
    }

    #[test]
    fn uninitialized_dir_reports_cleanly() {
        let dir = tdir("uninit");
        assert!(!dir.is_initialized());
        assert!(matches!(recover(&dir), Err(StoreError::Uninitialized)));
    }

    #[test]
    fn checkpoint_then_recover_replays_without_recording() {
        let dir = tdir("roundtrip");
        let (graph, params, _writer) = seed(&dir);
        assert!(dir.is_initialized());
        let state = recover(&dir).unwrap();
        assert_eq!(state.base_generation, 0);
        assert!(state.deltas.is_empty());
        assert!(state.memo.is_some(), "{:?}", state.memo_note);
        let mine = replay_mine(state, &params, &ParallelConfig::new(1)).unwrap();
        assert!(mine.memo_replayed);
        assert_eq!(
            mine.incremental.reevaluated, 0,
            "restart must not re-search any lattice node"
        );
        assert!(mine.incremental.reused > 0);
        // Byte-identity with a fresh full mine.
        let full = full_mine(&graph, &params);
        assert_eq!(
            format!("{:?}", mine.result.reports),
            format!("{:?}", full.reports)
        );
    }

    #[test]
    fn journal_deltas_replay_on_top_of_the_snapshot() {
        let dir = tdir("deltas");
        let (graph, params, mut writer) = seed(&dir);
        let d1 = GraphDelta::parse("v 1\ne 0 11\na 11 A\n").unwrap();
        let d2 = GraphDelta::parse("e 1 11\n").unwrap();
        assert_eq!(writer.append(&d1).unwrap(), 1);
        assert_eq!(writer.append(&d2).unwrap(), 2);

        let state = recover(&dir).unwrap();
        assert_eq!(state.deltas.len(), 2);
        assert_eq!(state.target_generation(), 2);
        let mine = replay_mine(state, &params, &ParallelConfig::new(1)).unwrap();
        assert!(mine.memo_replayed);
        assert_eq!(mine.generation, 2);

        let expect = d2.apply(&d1.apply(&graph).unwrap().graph).unwrap().graph;
        let full = full_mine(&expect, &params);
        assert_eq!(
            format!("{:?}", mine.result.reports),
            format!("{:?}", full.reports)
        );
        assert_eq!(
            snapshot::encode(&mine.graph),
            snapshot::encode(&expect),
            "recovered graph must match the delta-applied graph exactly"
        );
    }

    #[test]
    fn corrupt_snapshot_falls_back_one_generation() {
        let dir = tdir("fallback");
        let (_graph, params, mut writer) = seed(&dir);
        let d1 = GraphDelta::parse("v 1\ne 0 11\na 11 A\n").unwrap();
        writer.append(&d1).unwrap();
        // Checkpoint generation 1 from the replayed state, then corrupt
        // its snapshot.
        let state = recover(&dir).unwrap();
        let mine = replay_mine(state, &params, &ParallelConfig::new(1)).unwrap();
        drop(writer);
        let _w1 = checkpoint(&dir, 1, &mine.graph, &mine.memo, &params).unwrap();
        let snap1 = dir.snapshot_path(1);
        let mut bytes = std::fs::read(&snap1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap1, &bytes).unwrap();

        let state = recover(&dir).unwrap();
        assert_eq!(state.base_generation, 0, "fell back to generation 0");
        assert_eq!(state.snapshot_errors.len(), 1);
        assert_eq!(state.deltas.len(), 1, "journal-0 still covers 0 -> 1");
        let recovered = replay_mine(state, &params, &ParallelConfig::new(1)).unwrap();
        assert_eq!(recovered.generation, 1);
        assert_eq!(
            snapshot::encode(&recovered.graph),
            snapshot::encode(&mine.graph)
        );
    }

    #[test]
    fn corrupt_memo_degrades_to_recording_mine() {
        let dir = tdir("badmemo");
        let (graph, params, _writer) = seed(&dir);
        let memo_path = dir.memo_path(0);
        let mut bytes = std::fs::read(&memo_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&memo_path, &bytes).unwrap();

        let state = recover(&dir).unwrap();
        assert!(state.memo.is_none());
        assert!(state.memo_note.is_some());
        let mine = replay_mine(state, &params, &ParallelConfig::new(1)).unwrap();
        assert!(!mine.memo_replayed);
        assert!(mine.memo_note.is_some());
        let full = full_mine(&graph, &params);
        assert_eq!(
            format!("{:?}", mine.result.reports),
            format!("{:?}", full.reports)
        );
    }

    #[test]
    fn changed_params_refuse_the_memo() {
        let dir = tdir("badparams");
        let (_graph, _params, _writer) = seed(&dir);
        let other = ScpmParams::new(2, 0.5, 3);
        let state = recover(&dir).unwrap();
        assert!(state.memo.is_some());
        let mine = replay_mine(state, &other, &ParallelConfig::new(1)).unwrap();
        assert!(!mine.memo_replayed);
        assert!(mine.memo_note.unwrap().contains("different parameters"));
    }

    #[test]
    fn prune_keeps_exactly_two_generations() {
        let dir = tdir("prune");
        let (graph, params, writer) = seed(&dir);
        drop(writer);
        let (_, memo, _, _) = mine_step(
            &graph,
            &params,
            &ParallelConfig::new(1),
            IncrementalCtx::recording(),
        );
        for g in [1u64, 2, 3] {
            let _w = checkpoint(&dir, g, &graph, &memo, &params).unwrap();
        }
        assert_eq!(dir.snapshot_generations().unwrap(), vec![2, 3]);
        assert_eq!(dir.journal_generations().unwrap(), vec![2, 3]);
    }

    #[test]
    fn missing_journal_chain_is_a_sequence_gap() {
        let dir = tdir("gap");
        let (graph, params, mut writer) = seed(&dir);
        writer.append(&GraphDelta::parse("v 1\n").unwrap()).unwrap();
        drop(writer);
        // Forge a journal that skips ahead: journal-5 next to snapshot-0
        // (as if intermediate journals were lost).
        let (_, memo, _, _) = mine_step(
            &graph,
            &params,
            &ParallelConfig::new(1),
            IncrementalCtx::recording(),
        );
        let _w5 = checkpoint(&dir, 5, &graph, &memo, &params).unwrap();
        // Corrupt snapshot-5: recovery falls back to generation 0, whose
        // journal ends at delta 1 — but journal-5 claims the sequence
        // resumes at 5. Deltas 2..=5 are unaccounted for; recovery must
        // refuse rather than silently lose them.
        let snap5 = dir.snapshot_path(5);
        let mut bytes = std::fs::read(&snap5).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&snap5, &bytes).unwrap();
        match recover(&dir) {
            Err(StoreError::SequenceGap { expected, found }) => {
                assert_eq!(expected, 2);
                assert_eq!(found, None);
            }
            other => panic!("expected SequenceGap, got {other:?}"),
        }
    }
}
