//! Incremental mining over graph deltas: dirty-set computation and the
//! per-set evaluation memo the lattice driver replays clean sets from.
//!
//! # The dirty region of the attribute lattice
//!
//! The structural correlation of an attribute set `S` is a function of
//! `V(S)` and of the induced subgraph `G(S) = G[V(S)]` only (Definition 2
//! of the paper; the Theorem 3 restriction to the parents' covered
//! vertices shrinks the *search*, never the answer). Under an insert-only
//! [`GraphDelta`](scpm_graph::delta::GraphDelta) a set `S` can therefore
//! only change if
//!
//! 1. some novel `(v, a)` assignment has `a ∈ S` — then `V(S)` itself
//!    changed — or
//! 2. some novel edge `{u, v}` has `S ⊆ F(u) ∩ F(v)` — then both
//!    endpoints lie in `V(S)` and the edge appeared *inside* `G(S)`.
//!
//! Newly appended isolated vertices satisfy neither: they carry no
//! attributes, so no `V(S)` and no `G(S)` contains them. [`DirtySet`]
//! evaluates exactly this predicate. Everything else — supports, the
//! Theorem 4/5 gates, `δ` normalization against the (changed) null model —
//! is recomputed by the structural re-drive, so the classification errs
//! on no side: a clean set provably evaluates to the same `ε`, the same
//! covered set and the same search counters as a fresh run.
//!
//! # The evaluation memo
//!
//! [`EvalMemo`] maps each evaluated attribute set to an [`EvalRecord`]:
//! its `ε`, covered vertices, coverage-search counters, and (when one was
//! computed) its top-k quasi-cliques. An incremental run re-drives the
//! lattice *structurally* — every tidset intersection and support gate is
//! re-run on the updated graph, which is what keeps report order and
//! pruning counters byte-identical to a full mine — but a set that is
//! clean, whose parents' covers are unchanged, and that has a memo record
//! replays the record instead of searching quasi-cliques again. The search
//! is the dominant cost, so reuse is where the incremental win comes from;
//! `tests/incremental_vs_full.rs` proves the byte-identity invariant over
//! random delta streams.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use scpm_graph::attributed::{AttrId, AttributedGraph};
use scpm_graph::csr::VertexId;
use scpm_graph::delta::AppliedDelta;
use scpm_quasiclique::{QuasiClique, SearchStats};

/// The memoized outcome of one attribute set's evaluation.
#[derive(Clone, Debug)]
pub struct EvalRecord {
    /// `σ(S) = |V(S)|` at the time of evaluation (consistency check).
    pub support: usize,
    /// `ε(S)`.
    pub epsilon: f64,
    /// The covered set `K_S`, sorted global vertex ids.
    pub covered: Vec<VertexId>,
    /// Counters of the coverage search.
    pub coverage_stats: SearchStats,
    /// Whether the evaluation built a mining subgraph (false when it
    /// short-circuited below `min_size`). Replays only run a top-k search
    /// when the original evaluation would have.
    pub sub_built: bool,
    /// The top-k quasi-cliques and their search counters, when a top-k
    /// search ever ran for this set.
    pub topk: Option<(Vec<QuasiClique>, SearchStats)>,
}

/// Evaluation memo of one mining run: attribute set → [`EvalRecord`].
pub type EvalMemo = HashMap<Vec<AttrId>, EvalRecord>;

/// The dirty region of the attribute lattice induced by an applied delta.
///
/// `is_dirty(S)` answers whether `V(S)` or `G(S)` may differ from the
/// pre-delta graph (see the module docs for why this is exact for
/// insert-only deltas).
#[derive(Clone, Debug, Default)]
pub struct DirtySet {
    /// Marks every set dirty regardless (recording mode).
    all_dirty: bool,
    /// `dirty_attrs[a]`: some novel `(v, a)` assignment exists.
    dirty_attrs: Vec<bool>,
    /// For each novel edge `{u, v}` with a non-empty attribute overlap:
    /// `F(u) ∩ F(v)`, sorted. A set is edge-dirty iff it is a subset of
    /// one of these caps.
    edge_caps: Vec<Vec<AttrId>>,
}

impl DirtySet {
    /// The everything-is-dirty set (recording mode: no record is replayed).
    pub fn all() -> DirtySet {
        DirtySet {
            all_dirty: true,
            ..DirtySet::default()
        }
    }

    /// The nothing-is-dirty set over a graph with `num_attrs` attributes:
    /// every memoized set with stable parents replays. This is the
    /// recovery path's "replay without a recording mine" — a restarted
    /// server re-drives the lattice structurally but reuses every
    /// persisted evaluation, because the graph is byte-identical to the
    /// one the memo was recorded against (see `docs/DURABILITY.md`).
    pub fn clean(num_attrs: usize) -> DirtySet {
        DirtySet {
            all_dirty: false,
            dirty_attrs: vec![false; num_attrs],
            edge_caps: Vec::new(),
        }
    }

    /// Computes the dirty region of `applied` over its updated graph.
    pub fn from_delta(graph: &AttributedGraph, applied: &AppliedDelta) -> DirtySet {
        let mut dirty_attrs = vec![false; graph.num_attributes()];
        for &(_, a) in &applied.novel_attrs {
            dirty_attrs[a as usize] = true;
        }
        let mut edge_caps: Vec<Vec<AttrId>> = Vec::new();
        for &(u, v) in &applied.novel_edges {
            let cap = sorted_intersection(graph.attributes_of(u), graph.attributes_of(v));
            if !cap.is_empty() && !edge_caps.contains(&cap) {
                edge_caps.push(cap);
            }
        }
        DirtySet {
            all_dirty: false,
            dirty_attrs,
            edge_caps,
        }
    }

    /// Whether `V(S)` or `G(S)` may have changed for the sorted attribute
    /// set `attrs`.
    pub fn is_dirty(&self, attrs: &[AttrId]) -> bool {
        if self.all_dirty {
            return true;
        }
        if attrs
            .iter()
            .any(|&a| self.dirty_attrs.get(a as usize).copied().unwrap_or(true))
        {
            return true;
        }
        self.edge_caps.iter().any(|cap| is_subset(attrs, cap))
    }

    /// The attribute ids with novel assignments (sorted).
    pub fn dirty_attr_ids(&self) -> Vec<AttrId> {
        self.dirty_attrs
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(a, _)| a as AttrId)
            .collect()
    }

    /// Number of novel-edge attribute caps (distinct `F(u) ∩ F(v)` sets).
    pub fn num_edge_caps(&self) -> usize {
        self.edge_caps.len()
    }

    /// Whether no lattice node can be dirty (e.g. the delta only appended
    /// isolated vertices or duplicated existing edges/assignments).
    pub fn is_empty(&self) -> bool {
        !self.all_dirty && self.edge_caps.is_empty() && !self.dirty_attrs.iter().any(|&d| d)
    }
}

/// Sorted-slice intersection (both inputs ascending).
fn sorted_intersection(a: &[AttrId], b: &[AttrId]) -> Vec<AttrId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Whether sorted `needle` is a subset of sorted `haystack`.
fn is_subset(needle: &[AttrId], haystack: &[AttrId]) -> bool {
    let mut j = 0;
    for &x in needle {
        loop {
            match haystack.get(j) {
                None => return false,
                Some(&h) if h < x => j += 1,
                Some(&h) if h == x => {
                    j += 1;
                    break;
                }
                Some(_) => return false,
            }
        }
    }
    true
}

/// Counters of one incremental run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Attribute sets replayed from the memo.
    pub reused: u64,
    /// Attribute sets evaluated live (fresh coverage search).
    pub reevaluated: u64,
    /// Modeled kernel operations performed by live evaluations.
    pub live_kernel_ops: u64,
    /// Modeled kernel operations replayed from memo records (work a full
    /// re-mine would have performed again).
    pub reused_kernel_ops: u64,
}

/// The incremental context a [`Scpm`](crate::Scpm) run carries: the memo
/// of the previous generation, the dirty region of the delta, and the memo
/// being recorded for the *next* generation.
///
/// Two modes share the type:
///
/// * **recording** ([`IncrementalCtx::recording`]) — every set is treated
///   as dirty, so the run evaluates everything live and only *fills* the
///   memo. This is how a baseline generation is established.
/// * **update** ([`IncrementalCtx::update`]) — clean sets with stable
///   parents replay their records; everything else evaluates live. The
///   new memo is complete either way, so updates chain.
///
/// The context is interior-mutable (`Mutex`/atomics) because the
/// work-stealing scheduler evaluates sets from many workers against one
/// shared `Scpm`.
#[derive(Debug)]
pub struct IncrementalCtx {
    /// Previous generation's memo (empty in recording mode).
    memo: Arc<EvalMemo>,
    /// Dirty region of the delta ([`DirtySet::all`] in recording mode).
    dirty: DirtySet,
    /// Memo of the run in progress.
    new_memo: Mutex<EvalMemo>,
    recording: bool,
    reused: AtomicU64,
    reevaluated: AtomicU64,
    live_kernel_ops: AtomicU64,
    reused_kernel_ops: AtomicU64,
}

impl IncrementalCtx {
    /// A recording context: evaluate everything live, fill the memo.
    pub fn recording() -> IncrementalCtx {
        IncrementalCtx {
            memo: Arc::new(EvalMemo::new()),
            dirty: DirtySet::all(),
            new_memo: Mutex::new(EvalMemo::new()),
            recording: true,
            reused: AtomicU64::new(0),
            reevaluated: AtomicU64::new(0),
            live_kernel_ops: AtomicU64::new(0),
            reused_kernel_ops: AtomicU64::new(0),
        }
    }

    /// An update context: replay `memo` records outside the `dirty` region.
    pub fn update(memo: Arc<EvalMemo>, dirty: DirtySet) -> IncrementalCtx {
        IncrementalCtx {
            memo,
            dirty,
            new_memo: Mutex::new(EvalMemo::new()),
            recording: false,
            reused: AtomicU64::new(0),
            reevaluated: AtomicU64::new(0),
            live_kernel_ops: AtomicU64::new(0),
            reused_kernel_ops: AtomicU64::new(0),
        }
    }

    /// Whether this context is in recording mode (no replays).
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// The dirty region this context was built with.
    pub fn dirty(&self) -> &DirtySet {
        &self.dirty
    }

    /// Looks up a replayable record: the set must be clean, its parents'
    /// covers unchanged, and a record present.
    pub(crate) fn replayable(&self, attrs: &[AttrId], parents_stable: bool) -> Option<&EvalRecord> {
        if self.recording || !parents_stable || self.dirty.is_dirty(attrs) {
            return None;
        }
        self.memo.get(attrs)
    }

    /// Stores the record of a just-evaluated (or just-replayed) set into
    /// the next generation's memo.
    pub(crate) fn store(&self, attrs: &[AttrId], record: EvalRecord) {
        self.new_memo.lock().insert(attrs.to_vec(), record);
    }

    /// Counts one replayed set and the kernel work it avoided.
    pub(crate) fn count_reuse(&self, kernel_ops: u64) {
        self.reused.fetch_add(1, Ordering::Relaxed);
        self.reused_kernel_ops
            .fetch_add(kernel_ops, Ordering::Relaxed);
    }

    /// Counts one live evaluation and its kernel work.
    pub(crate) fn count_live(&self, kernel_ops: u64) {
        self.reevaluated.fetch_add(1, Ordering::Relaxed);
        self.live_kernel_ops
            .fetch_add(kernel_ops, Ordering::Relaxed);
    }

    /// This run's reuse counters.
    pub fn stats(&self) -> IncrementalStats {
        IncrementalStats {
            reused: self.reused.load(Ordering::Relaxed),
            reevaluated: self.reevaluated.load(Ordering::Relaxed),
            live_kernel_ops: self.live_kernel_ops.load(Ordering::Relaxed),
            reused_kernel_ops: self.reused_kernel_ops.load(Ordering::Relaxed),
        }
    }

    /// Consumes the context, returning the next generation's memo and the
    /// run's counters.
    pub fn into_parts(self) -> (EvalMemo, IncrementalStats) {
        let stats = self.stats();
        (self.new_memo.into_inner(), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::delta::GraphDelta;
    use scpm_graph::figure1::{figure1, paper_vertex};

    #[test]
    fn subset_and_intersection_helpers() {
        assert!(is_subset(&[], &[1, 2]));
        assert!(is_subset(&[2], &[1, 2, 3]));
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset(&[0], &[]));
        assert_eq!(sorted_intersection(&[1, 2, 4], &[2, 3, 4]), vec![2, 4]);
        assert_eq!(sorted_intersection(&[1], &[2]), Vec::<AttrId>::new());
    }

    #[test]
    fn attribute_insertions_dirty_their_attribute() {
        let g = figure1();
        // Give vertex 1 (paper label) attribute B: every set containing B
        // is dirty, everything else clean.
        let applied = GraphDelta::parse(&format!("a {} B\n", paper_vertex(1)))
            .unwrap()
            .apply(&g)
            .unwrap();
        let dirty = DirtySet::from_delta(&applied.graph, &applied);
        let a = applied.graph.attr_id("A").unwrap();
        let b = applied.graph.attr_id("B").unwrap();
        let c = applied.graph.attr_id("C").unwrap();
        assert!(dirty.is_dirty(&[b]));
        assert!(dirty.is_dirty(&[a, b]));
        assert!(!dirty.is_dirty(&[a]));
        assert!(!dirty.is_dirty(&[c]));
        assert!(!dirty.is_dirty(&[a, c]));
        assert_eq!(dirty.dirty_attr_ids(), vec![b]);
    }

    #[test]
    fn edge_insertions_dirty_the_endpoint_attribute_overlap() {
        let g = figure1();
        // Edge {1, 5} (paper labels): F(1) = {A,C}, F(5) = {A,E} — the
        // overlap is {A}, so exactly the subsets of {A} are dirty.
        let applied = GraphDelta::parse(&format!("e {} {}\n", paper_vertex(1), paper_vertex(5)))
            .unwrap()
            .apply(&g)
            .unwrap();
        let dirty = DirtySet::from_delta(&applied.graph, &applied);
        let a = applied.graph.attr_id("A").unwrap();
        let b = applied.graph.attr_id("B").unwrap();
        let c = applied.graph.attr_id("C").unwrap();
        assert!(dirty.is_dirty(&[a]));
        assert!(!dirty.is_dirty(&[a, b]));
        assert!(!dirty.is_dirty(&[a, c]));
        assert!(!dirty.is_dirty(&[b]));
        assert!(dirty.dirty_attr_ids().is_empty());
        assert_eq!(dirty.num_edge_caps(), 1);
    }

    #[test]
    fn isolated_vertices_dirty_nothing() {
        let g = figure1();
        let applied = GraphDelta::parse("v 3\ne 11 12\n")
            .unwrap()
            .apply(&g)
            .unwrap();
        // The new vertices have no attributes: F(11) ∩ F(12) = ∅.
        let dirty = DirtySet::from_delta(&applied.graph, &applied);
        assert!(dirty.is_empty());
        for a in applied.graph.attributes() {
            assert!(!dirty.is_dirty(&[a]));
        }
    }

    #[test]
    fn noop_deltas_dirty_nothing() {
        let g = figure1();
        let applied = GraphDelta::parse("e 0 1\na 0 A\n")
            .unwrap()
            .apply(&g)
            .unwrap();
        assert!(applied.is_noop());
        let dirty = DirtySet::from_delta(&applied.graph, &applied);
        assert!(dirty.is_empty());
    }

    #[test]
    fn recording_context_marks_everything_dirty() {
        let ctx = IncrementalCtx::recording();
        assert!(ctx.is_recording());
        assert!(ctx.dirty().is_dirty(&[0]));
        assert!(ctx.replayable(&[0], true).is_none());
        ctx.store(
            &[0],
            EvalRecord {
                support: 1,
                epsilon: 0.0,
                covered: vec![],
                coverage_stats: SearchStats::default(),
                sub_built: false,
                topk: None,
            },
        );
        let (memo, stats) = ctx.into_parts();
        assert_eq!(memo.len(), 1);
        assert_eq!(stats.reused, 0);
    }

    #[test]
    fn update_context_replays_only_clean_sets_with_stable_parents() {
        let mut memo = EvalMemo::new();
        let record = EvalRecord {
            support: 4,
            epsilon: 0.5,
            covered: vec![1, 2],
            coverage_stats: SearchStats::default(),
            sub_built: true,
            topk: None,
        };
        memo.insert(vec![0], record.clone());
        memo.insert(vec![1], record);
        let dirty = DirtySet {
            all_dirty: false,
            dirty_attrs: vec![false, true],
            edge_caps: vec![],
        };
        let ctx = IncrementalCtx::update(Arc::new(memo), dirty);
        assert!(ctx.replayable(&[0], true).is_some());
        assert!(ctx.replayable(&[0], false).is_none(), "unstable parents");
        assert!(ctx.replayable(&[1], true).is_none(), "dirty attribute");
        assert!(ctx.replayable(&[2], true).is_none(), "no record");
    }
}
