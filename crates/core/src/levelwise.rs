//! Level-wise (Apriori-style) attribute-set enumeration.
//!
//! The paper describes the attribute lattice traversal generically as
//! "level-wise enumeration" (Theorem 3) and implements it depth-first over
//! Eclat prefix classes (Algorithm 3). This module provides the breadth-
//! first counterpart: size-`k+1` candidates are joined from size-`k`
//! survivors sharing a `(k−1)`-prefix, and — unlike the DFS scheme, which
//! only sees the two generating parents — *every* `k`-subset can be
//! checked against the survivor set (the classic Apriori pruning, which is
//! strictly stronger).
//!
//! Output is identical to [`Scpm::run`]; only the enumeration order and
//! the pruning opportunities differ. The ablation benches quantify the
//! difference; memory is the BFS scheme's cost (a whole level of tidsets
//! is alive at once, where DFS keeps one root-to-leaf path).

use std::collections::HashSet;
use std::time::Instant;

use scpm_graph::attributed::AttrId;
use scpm_graph::csr::{intersect_into, VertexId};

use crate::algorithm::{EnumEntry, Scpm};
use crate::pattern::ScpmResult;

impl<'g> Scpm<'g> {
    /// Runs SCPM with level-wise (Apriori-style) attribute enumeration.
    ///
    /// Reports and patterns match [`Scpm::run`] up to ordering; the
    /// traversal is breadth-first and applies full-subset Apriori pruning
    /// on top of the Theorem 4/5 gates.
    pub fn run_levelwise(&self) -> ScpmResult {
        let start = Instant::now();
        let engine = self.engine();
        let mut result = ScpmResult::default();
        let mut level: Vec<EnumEntry> = self.level1_entries(&engine, &mut result);
        level.sort_by(|a, b| a.attrs.cmp(&b.attrs));

        let mut size = 1usize;
        while level.len() >= 2 && size < self.params().max_attrs {
            // Survivor index for the Apriori subset check.
            let survivors: HashSet<&[AttrId]> = level.iter().map(|e| e.attrs.as_slice()).collect();
            let mut next: Vec<EnumEntry> = Vec::new();
            let mut cover_buf: Vec<VertexId> = Vec::new();
            let mut subset_buf: Vec<AttrId> = Vec::with_capacity(size + 1);
            for i in 0..level.len() {
                for j in (i + 1)..level.len() {
                    let (a, b) = (&level[i], &level[j]);
                    if a.attrs[..size - 1] != b.attrs[..size - 1] {
                        // Levels are sorted; once the prefix changes no
                        // later sibling shares it either.
                        break;
                    }
                    let mut attrs = a.attrs.clone();
                    attrs.push(*b.attrs.last().expect("non-empty attribute set"));
                    // Apriori: every k-subset must have survived. Dropping
                    // the last or second-to-last element reproduces the two
                    // parents; the remaining k−1 subsets are real checks.
                    let all_subsets_alive = (0..size.saturating_sub(1)).all(|drop| {
                        subset_buf.clear();
                        subset_buf.extend(
                            attrs
                                .iter()
                                .enumerate()
                                .filter(|&(p, _)| p != drop)
                                .map(|(_, &x)| x),
                        );
                        survivors.contains(subset_buf.as_slice())
                    });
                    if !all_subsets_alive {
                        result.stats.pruned_apriori += 1;
                        continue;
                    }
                    let Some(tids) = a
                        .tids
                        .intersect_min_support(&b.tids, self.params().sigma_min)
                    else {
                        result.stats.pruned_support += 1;
                        continue;
                    };
                    let parent_cover = if self.params().prune.vertex_pruning {
                        intersect_into(&a.cover, &b.cover, &mut cover_buf);
                        Some(cover_buf.as_slice())
                    } else {
                        None
                    };
                    if let Some(entry) = self.evaluate(
                        &engine,
                        attrs,
                        tids,
                        parent_cover,
                        a.sub.as_deref(),
                        // The levelwise driver joins arbitrary sibling
                        // pairs, not the DFS prefix classes the memo was
                        // recorded under — never replay here.
                        false,
                        &mut result,
                    ) {
                        next.push(entry);
                    }
                }
            }
            next.sort_by(|a, b| a.attrs.cmp(&b.attrs));
            level = next;
            size += 1;
        }
        result.stats.elapsed = start.elapsed();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ScpmParams;
    use scpm_graph::figure1::figure1;

    type ReportRows = Vec<(Vec<u32>, usize, i64, bool)>;
    type PatternRows = Vec<(Vec<u32>, Vec<u32>)>;

    fn canonical(r: &ScpmResult) -> (ReportRows, PatternRows) {
        let mut reports: Vec<(Vec<u32>, usize, i64, bool)> = r
            .reports
            .iter()
            .map(|rep| {
                (
                    rep.attrs.clone(),
                    rep.support,
                    (rep.epsilon * 1e9) as i64,
                    rep.qualified,
                )
            })
            .collect();
        reports.sort();
        let mut patterns: Vec<(Vec<u32>, Vec<u32>)> = r
            .patterns
            .iter()
            .map(|p| (p.attrs.clone(), p.clique.vertices.clone()))
            .collect();
        patterns.sort();
        (reports, patterns)
    }

    #[test]
    fn levelwise_matches_dfs_on_figure1() {
        let g = figure1();
        for (eps, delta, k) in [(0.5, 0.0, usize::MAX), (0.1, 1.0, 2), (0.0, 0.0, 1)] {
            let params = ScpmParams::new(3, 0.6, 4)
                .with_eps_min(eps)
                .with_delta_min(delta)
                .with_top_k(k);
            let scpm = Scpm::new(&g, params);
            let dfs = scpm.run();
            let bfs = scpm.run_levelwise();
            assert_eq!(
                canonical(&dfs),
                canonical(&bfs),
                "eps={eps} delta={delta} k={k}"
            );
        }
    }

    #[test]
    fn levelwise_respects_max_attrs() {
        let g = figure1();
        let params = ScpmParams::new(1, 0.6, 4).with_max_attrs(2);
        let result = Scpm::new(&g, params).run_levelwise();
        assert!(result.reports.iter().all(|r| r.attrs.len() <= 2));
        assert!(result.reports.iter().any(|r| r.attrs.len() == 2));
    }

    #[test]
    fn levelwise_apriori_counter_fires_when_subset_dies() {
        // On Figure 1 with σmin = 1 and εmin = 0.9: {A} has ε = 0.82 and is
        // gate-pruned at level 1... which removes it from the survivor set,
        // so any {A, x, y} candidate would need {A,x} and {A,y}; those are
        // never generated. To see the subset check fire we need a 3-set
        // whose three 2-subsets are not all alive. With σmin = 2 on
        // Figure 1: level-2 survivors include {A,B} (σ=6), {A,C} (σ=3),
        // {A,D}(σ=3), {A,E}(σ=2), {B,D}(σ=2) etc.; candidate {A,B,D}
        // requires {B,D} — whether it survives depends on its gate. Just
        // assert the run completes and the counter is consistent.
        let g = figure1();
        let params = ScpmParams::new(2, 0.6, 4).with_eps_min(0.3);
        let result = Scpm::new(&g, params).run_levelwise();
        // Apriori pruning plus support pruning never exceed the candidate
        // join count; smoke-check the counters are populated sanely.
        assert!(result.stats.attribute_sets_examined >= 1);
    }
}
