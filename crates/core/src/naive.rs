//! The naive baseline (§3.1): Eclat enumerates every frequent attribute
//! set, and the complete set of maximal quasi-cliques is mined from each
//! induced subgraph — no structural-correlation pruning, no coverage
//! shortcuts, no top-k search-space reduction.
//!
//! The result is semantically identical to [`Scpm`](crate::Scpm) (same
//! reports, same qualifying sets, same patterns); only the running time
//! differs, which is exactly the comparison of Figure 8.

use std::time::Instant;

use scpm_itemset::{eclat_visit, EclatConfig};

use crate::correlation::CorrelationEngine;
use crate::nullmodel::AnalyticalModel;
use crate::params::ScpmParams;
use crate::pattern::{AttributeSetReport, Pattern, ScpmResult};

use scpm_graph::attributed::AttributedGraph;
use scpm_quasiclique::pattern_order;

/// Runs the naive algorithm with the same parameters as SCPM.
pub fn run_naive(graph: &AttributedGraph, params: &ScpmParams) -> ScpmResult {
    let start = Instant::now();
    let model = AnalyticalModel::new(graph.graph(), &params.quasi_clique);
    // No Theorem-3 restriction for the naive baseline.
    let engine = CorrelationEngine::new(
        graph,
        params.quasi_clique,
        params.search_order,
        params.qc_prune,
        params.repr,
        false,
    );
    let mut result = ScpmResult::default();
    let eclat_cfg = EclatConfig {
        min_support: params.sigma_min,
        max_size: params.max_attrs,
    };
    eclat_visit(graph, &eclat_cfg, |itemset| {
        result.stats.attribute_sets_examined += 1;
        let support = itemset.support();
        // Full maximal quasi-clique enumeration of G(S).
        let (cliques, stats) = engine.enumerate_all(itemset.tids.as_slice());
        result.stats.qc_nodes_coverage += stats.nodes_visited;
        result.stats.qc_edge_tests += stats.edge_tests;
        result.stats.qc_kernel_ops += stats.kernel_ops;
        result.stats.qc_fused_ops += stats.fused_ops;
        result.stats.qc_blocks_skipped += stats.blocks_skipped;
        result.stats.qc_probes_elided += stats.probes_elided;
        result.stats.qc_batch_ops += stats.batch_ops;
        let mut covered: Vec<u32> = cliques
            .iter()
            .flat_map(|q| q.vertices.iter().copied())
            .collect();
        covered.sort_unstable();
        covered.dedup();
        let epsilon = if support == 0 {
            0.0
        } else {
            covered.len() as f64 / support as f64
        };
        let delta_lb = model.normalize(epsilon, support);
        let qualified = epsilon >= params.eps_min && delta_lb >= params.delta_min;
        if itemset.items.len() >= params.min_attrs {
            result.reports.push(AttributeSetReport {
                attrs: itemset.items.clone(),
                support,
                covered: covered.len(),
                epsilon,
                delta_lb,
                qualified,
            });
            if qualified {
                result.stats.attribute_sets_qualified += 1;
                // The enumeration is already sorted by `pattern_order`;
                // keep the best k.
                let mut ranked = cliques;
                ranked.sort_by(pattern_order);
                for clique in ranked.into_iter().take(params.k) {
                    result.patterns.push(Pattern {
                        attrs: itemset.items.clone(),
                        clique,
                    });
                }
            }
        } else if qualified {
            result.stats.attribute_sets_qualified += 1;
        }
    });
    result.stats.elapsed = start.elapsed();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Scpm;
    use scpm_graph::figure1::figure1;

    /// Qualified reports only: SCPM's Theorem-4/5 gates legitimately skip
    /// *examining* supersets of hopeless sets, so the full report lists
    /// differ; the qualifying sets and their measurements must not.
    fn sorted_reports(r: &ScpmResult) -> Vec<(Vec<u32>, usize, u64, bool)> {
        let mut v: Vec<(Vec<u32>, usize, u64, bool)> = r
            .reports
            .iter()
            .filter(|rep| rep.qualified)
            .map(|rep| {
                (
                    rep.attrs.clone(),
                    rep.support,
                    (rep.epsilon * 1e12) as u64,
                    rep.qualified,
                )
            })
            .collect();
        v.sort();
        v
    }

    /// Every report SCPM produced must agree with naive's measurement for
    /// the same attribute set.
    fn assert_shared_reports_agree(scpm: &ScpmResult, naive: &ScpmResult) {
        for rep in &scpm.reports {
            let other = naive
                .report_for(&rep.attrs)
                .unwrap_or_else(|| panic!("naive missing {:?}", rep.attrs));
            assert_eq!(rep.support, other.support);
            assert!((rep.epsilon - other.epsilon).abs() < 1e-12);
            assert!(
                (rep.delta_lb - other.delta_lb).abs() < 1e-9
                    || (rep.delta_lb.is_infinite() && other.delta_lb.is_infinite())
            );
            assert_eq!(rep.qualified, other.qualified);
        }
    }

    fn sorted_patterns(r: &ScpmResult) -> Vec<(Vec<u32>, Vec<u32>)> {
        let mut v: Vec<(Vec<u32>, Vec<u32>)> = r
            .patterns
            .iter()
            .map(|p| (p.attrs.clone(), p.clique.vertices.clone()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn naive_matches_scpm_on_figure1() {
        let g = figure1();
        let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
        let scpm = Scpm::new(&g, params.clone()).run();
        let naive = run_naive(&g, &params);
        assert_eq!(sorted_reports(&scpm), sorted_reports(&naive));
        assert_eq!(sorted_patterns(&scpm), sorted_patterns(&naive));
        assert_shared_reports_agree(&scpm, &naive);
    }

    #[test]
    fn naive_matches_scpm_with_delta_threshold() {
        let g = figure1();
        let params = ScpmParams::new(3, 0.6, 4)
            .with_eps_min(0.1)
            .with_delta_min(1.0)
            .with_top_k(2);
        let scpm = Scpm::new(&g, params.clone()).run();
        let naive = run_naive(&g, &params);
        assert_eq!(sorted_reports(&scpm), sorted_reports(&naive));
        assert_eq!(sorted_patterns(&scpm), sorted_patterns(&naive));
        assert_shared_reports_agree(&scpm, &naive);
    }

    #[test]
    fn naive_table1_pattern_count() {
        let g = figure1();
        let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
        let naive = run_naive(&g, &params);
        assert_eq!(naive.patterns.len(), 7);
    }
}
