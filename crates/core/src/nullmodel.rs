//! Null models for the expected structural correlation (§2.1.3).
//!
//! The normalized structural correlation `δ(S) = ε(S) / exp(σ(S))` needs the
//! expected correlation `exp` of a random vertex subset of size `σ(S)`. Two
//! models are provided:
//!
//! * [`AnalyticalModel`] — the closed-form upper bound `max-exp` of
//!   Theorem 2: the probability that a random vertex keeps degree at least
//!   `z = ⌈γ·(min_size−1)⌉` inside a random size-`σ` subgraph, computed from
//!   the empirical degree distribution and the binomial of Theorem 1.
//!   `δ_lb = ε / max-exp` lower-bounds the simulation-based `δ_sim`.
//! * [`simulate_expected`] — the `sim-exp` estimator: draw `r` random vertex
//!   samples of size `σ`, mine quasi-cliques in each induced subgraph, and
//!   average the covered fraction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use rand::prelude::*;
use rand::rngs::StdRng;

use scpm_graph::csr::{CsrGraph, VertexId};
use scpm_graph::degree::DegreeDistribution;
use scpm_graph::induced::InducedSubgraph;
use scpm_quasiclique::{Miner, QcConfig};

/// Common interface of the null models: an expected structural correlation
/// per support value and the induced normalization `δ = ε / exp(σ)`.
///
/// Implemented by [`AnalyticalModel`] (binomial upper bound `max-exp`,
/// Theorem 2), [`crate::ExactModel`] (hypergeometric variant) and
/// [`SimulationModel`] (`sim-exp`). The pruning rule of Theorem 5 is sound
/// for any implementation whose `expected_epsilon` is monotonically
/// non-decreasing in `sigma`.
pub trait ExpectedCorrelation {
    /// The model's expected structural correlation for support `sigma`.
    fn expected_epsilon(&self, sigma: usize) -> f64;

    /// `δ = ε / exp(σ)` (0 for `ε = 0`, `+∞` when the expectation is zero
    /// but `ε > 0`).
    fn normalized(&self, epsilon: f64, sigma: usize) -> f64 {
        let e = self.expected_epsilon(sigma);
        if e <= 0.0 {
            if epsilon > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            epsilon / e
        }
    }
}

impl ExpectedCorrelation for AnalyticalModel {
    fn expected_epsilon(&self, sigma: usize) -> f64 {
        self.expected(sigma)
    }
}

impl ExpectedCorrelation for crate::hypergeom::ExactModel {
    fn expected_epsilon(&self, sigma: usize) -> f64 {
        self.expected(sigma)
    }
}

impl<'g> ExpectedCorrelation for SimulationModel<'g> {
    fn expected_epsilon(&self, sigma: usize) -> f64 {
        self.expected(sigma).mean
    }
}

/// Which closed-form null model produced a cached value.
///
/// Part of the [`NullModelCache`] key so one cache can serve both model
/// families without their (different) values colliding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The binomial `max-exp` bound of Theorem 2 ([`AnalyticalModel`]).
    Analytical,
    /// The hypergeometric variant ([`crate::ExactModel`]).
    Exact,
}

/// A concurrent, shareable memo of expected-correlation values `exp(σ)`.
///
/// Evaluating `exp(σ)` costs `O(max_degree)` per support value and the
/// same supports recur constantly — across sibling branches of the lattice
/// search, across the workers of [`crate::run_parallel`], and across
/// repeated runs on the same graph (parameter sweeps). One `NullModelCache`
/// behind an [`Arc`] deduplicates all of that work: entries are keyed by
/// `(model kind, degree threshold z, σ)`, so models with different
/// quasi-clique parameters coexist in the same cache.
///
/// The map is guarded by a `parking_lot` reader–writer lock — lookups (the
/// overwhelmingly common case after warm-up) take the read lock only.
/// Hit/miss counters expose cache effectiveness to benches and tests.
///
/// **Sharing rule:** a cache must only be shared between models built from
/// the *same graph* (more precisely: the same degree distribution); the key
/// does not encode the topology.
///
/// ```
/// use std::sync::Arc;
/// use scpm_core::{AnalyticalModel, NullModelCache};
/// use scpm_graph::figure1::figure1;
/// use scpm_quasiclique::QcConfig;
///
/// let g = figure1();
/// let cache = Arc::new(NullModelCache::new());
/// let a = AnalyticalModel::new(g.graph(), &QcConfig::new(0.6, 4)).with_cache(cache.clone());
/// let b = AnalyticalModel::new(g.graph(), &QcConfig::new(0.6, 4)).with_cache(cache.clone());
///
/// let first = a.expected(6);  // computed once…
/// let second = b.expected(6); // …then served from the shared cache
/// assert_eq!(first, second);
/// assert_eq!(cache.misses(), 1);
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Debug, Default)]
pub struct NullModelCache {
    map: RwLock<HashMap<(ModelKind, usize, usize), f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl NullModelCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the memoized value for `(kind, z, sigma)`, computing and
    /// inserting it via `compute` on a miss.
    ///
    /// Concurrent first requests for the same key may both run `compute`
    /// (the lock is not held across the computation); both arrive at the
    /// same deterministic value, so the last insert is harmless.
    pub fn get_or_compute(
        &self,
        kind: ModelKind,
        z: usize,
        sigma: usize,
        compute: impl FnOnce() -> f64,
    ) -> f64 {
        let key = (kind, z, sigma);
        if let Some(&v) = self.map.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        let v = compute();
        self.map.write().insert(key, v);
        self.misses.fetch_add(1, Ordering::Relaxed);
        v
    }

    /// Number of distinct `(kind, z, σ)` entries currently memoized.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Lookups served from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute a fresh value.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Table of `ln(k!)` values for numerically stable binomial coefficients.
#[derive(Clone, Debug)]
pub struct LnFactorial {
    table: Vec<f64>,
}

impl LnFactorial {
    /// Builds the table for arguments up to `max_n` inclusive.
    pub fn new(max_n: usize) -> Self {
        let mut table = Vec::with_capacity(max_n + 1);
        table.push(0.0); // ln(0!) = 0
        let mut acc = 0.0;
        for k in 1..=max_n {
            acc += (k as f64).ln();
            table.push(acc);
        }
        LnFactorial { table }
    }

    /// `ln(n!)`.
    #[inline]
    pub fn ln_factorial(&self, n: usize) -> f64 {
        self.table[n]
    }

    /// `ln C(n, k)`; `-inf` when `k > n`.
    pub fn ln_choose(&self, n: usize, k: usize) -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        self.table[n] - self.table[k] - self.table[n - k]
    }
}

/// `P[Binomial(alpha, rho) = beta]` via the log-factorial table
/// (Theorem 1's `F(α, β, ρ)`).
pub fn binomial_pmf(alpha: usize, beta: usize, rho: f64, lnf: &LnFactorial) -> f64 {
    if beta > alpha {
        return 0.0;
    }
    if rho <= 0.0 {
        return if beta == 0 { 1.0 } else { 0.0 };
    }
    if rho >= 1.0 {
        return if beta == alpha { 1.0 } else { 0.0 };
    }
    let ln_p = lnf.ln_choose(alpha, beta)
        + beta as f64 * rho.ln()
        + (alpha - beta) as f64 * (1.0 - rho).ln();
    ln_p.exp()
}

/// `P[Binomial(alpha, rho) ≥ z]` by direct pmf summation.
pub fn binomial_tail(alpha: usize, z: usize, rho: f64, lnf: &LnFactorial) -> f64 {
    (z..=alpha)
        .map(|beta| binomial_pmf(alpha, beta, rho, lnf))
        .sum::<f64>()
        .min(1.0)
}

/// The analytical `max-exp` upper bound of Theorem 2, memoized per support
/// in a (shareable) [`NullModelCache`].
///
/// ```
/// use scpm_core::AnalyticalModel;
/// use scpm_graph::figure1::figure1;
/// use scpm_quasiclique::QcConfig;
///
/// let g = figure1();
/// let model = AnalyticalModel::new(g.graph(), &QcConfig::new(0.6, 4));
///
/// // exp(σ) is a probability, monotone in σ (the Theorem 5 prerequisite).
/// let (small, large) = (model.expected(4), model.expected(11));
/// assert!((0.0..=1.0).contains(&small));
/// assert!(small <= large);
///
/// // δ_lb = ε / exp(σ): with ε({A}) = 9/11 at support 11,
/// assert!(model.normalize(9.0 / 11.0, 11) >= 9.0 / 11.0 / large - 1e-12);
/// ```
#[derive(Debug)]
pub struct AnalyticalModel {
    dist: DegreeDistribution,
    n: usize,
    z: usize,
    lnf: LnFactorial,
    cache: Arc<NullModelCache>,
}

impl AnalyticalModel {
    /// Builds the model from a graph's topology and the quasi-clique
    /// parameters, with a private cache (see [`AnalyticalModel::with_cache`]
    /// for sharing).
    pub fn new(g: &CsrGraph, cfg: &QcConfig) -> Self {
        Self::from_distribution(DegreeDistribution::from_graph(g), g.num_vertices(), cfg)
    }

    /// Builds the model from a precomputed degree distribution.
    pub fn from_distribution(dist: DegreeDistribution, n: usize, cfg: &QcConfig) -> Self {
        let z = cfg.min_required_degree();
        let lnf = LnFactorial::new(dist.max_degree().max(1));
        AnalyticalModel {
            dist,
            n,
            z,
            lnf,
            cache: Arc::new(NullModelCache::new()),
        }
    }

    /// Replaces the memo with a shared [`NullModelCache`], builder style.
    /// The cache must come from a model over the same graph (the cache key
    /// covers `z` and `σ` but not the topology).
    pub fn with_cache(mut self, cache: Arc<NullModelCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The cache backing [`AnalyticalModel::expected`] — clone the `Arc` to
    /// share memoized values with another model or a parallel run.
    pub fn cache(&self) -> &Arc<NullModelCache> {
        &self.cache
    }

    /// The degree threshold `z = ⌈γ·(min_size−1)⌉`.
    pub fn z(&self) -> usize {
        self.z
    }

    /// `max-exp(σ)`, memoized.
    pub fn expected(&self, sigma: usize) -> f64 {
        self.cache
            .get_or_compute(ModelKind::Analytical, self.z, sigma, || {
                self.expected_uncached(sigma)
            })
    }

    /// `max-exp(σ)` via an `O(max_degree)` recurrence over the binomial
    /// tail:
    /// `P[B_{α+1} ≥ z] = P[B_α ≥ z] + ρ·P[B_α = z−1]` and
    /// `P[B_{α+1} = z−1] = P[B_α = z−1] · (α+1)/(α+2−z) · (1−ρ)`.
    pub fn expected_uncached(&self, sigma: usize) -> f64 {
        if self.n <= 1 || sigma == 0 {
            return 0.0;
        }
        let rho = ((sigma - 1) as f64 / (self.n - 1) as f64).clamp(0.0, 1.0);
        let z = self.z;
        let m = self.dist.max_degree();
        if z == 0 {
            // Every vertex trivially satisfies a zero-degree requirement.
            return 1.0;
        }
        if m < z || rho <= 0.0 {
            return 0.0;
        }
        // Initialize at α = z.
        let mut tail = rho.powi(z as i32); // P[B_z ≥ z] = ρ^z
        let mut pmf_zm1 = if z >= 1 {
            // P[B_z = z−1] = z·ρ^{z−1}·(1−ρ)
            z as f64 * rho.powi(z as i32 - 1) * (1.0 - rho)
        } else {
            0.0
        };
        let mut acc = self.dist.p(z) * tail;
        for alpha in z..m {
            // Advance α → α+1.
            tail += rho * pmf_zm1;
            let next = alpha + 1;
            pmf_zm1 *= (next as f64 / (next + 1 - z) as f64) * (1.0 - rho);
            acc += self.dist.p(next) * tail.min(1.0);
        }
        acc.min(1.0)
    }

    /// Reference implementation: the double sum of Equation 5, term by
    /// term. Used to validate the recurrence.
    pub fn expected_naive(&self, sigma: usize) -> f64 {
        if self.n <= 1 || sigma == 0 {
            return 0.0;
        }
        let rho = ((sigma - 1) as f64 / (self.n - 1) as f64).clamp(0.0, 1.0);
        let z = self.z;
        if z == 0 {
            return 1.0;
        }
        let m = self.dist.max_degree();
        let mut acc = 0.0;
        for alpha in z..=m {
            let p = self.dist.p(alpha);
            if p > 0.0 {
                acc += p * binomial_tail(alpha, z, rho, &self.lnf);
            }
        }
        acc.min(1.0)
    }

    /// Normalized structural correlation `δ_lb = ε / max-exp(σ)`.
    ///
    /// When `max-exp(σ)` is zero, the ratio is defined as 0 for `ε = 0` and
    /// `+∞` otherwise.
    pub fn normalize(&self, epsilon: f64, sigma: usize) -> f64 {
        let e = self.expected(sigma);
        if e <= 0.0 {
            if epsilon > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            epsilon / e
        }
    }
}

/// Result of the simulation estimator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimExpected {
    /// Mean covered fraction over the runs.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Number of runs.
    pub runs: usize,
}

/// Raw simulation draws: the covered fraction of `runs` uniform vertex
/// samples of size `sigma` (the statistic underlying both `sim-exp` and
/// the empirical p-value).
pub fn simulate_coverage_samples(
    g: &CsrGraph,
    cfg: &QcConfig,
    sigma: usize,
    runs: usize,
    seed: u64,
) -> Vec<f64> {
    assert!(runs > 0, "need at least one simulation run");
    let n = g.num_vertices();
    let sigma = sigma.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<VertexId> = (0..n as VertexId).collect();
    let mut values = Vec::with_capacity(runs);
    for _ in 0..runs {
        // Partial Fisher-Yates: the first `sigma` entries become the sample.
        for i in 0..sigma {
            let j = rng.random_range(i..n);
            pool.swap(i, j);
        }
        let mut sample: Vec<VertexId> = pool[..sigma].to_vec();
        sample.sort_unstable();
        let sub = InducedSubgraph::extract(g, &sample);
        let covered = Miner::new(&sub.graph, *cfg).coverage().covered.len();
        values.push(if sigma == 0 {
            0.0
        } else {
            covered as f64 / sigma as f64
        });
    }
    values
}

/// `sim-exp(σ)`: draws `runs` uniform vertex samples of size `sigma`,
/// computes the quasi-clique coverage of each induced subgraph, and
/// averages the covered fraction.
pub fn simulate_expected(
    g: &CsrGraph,
    cfg: &QcConfig,
    sigma: usize,
    runs: usize,
    seed: u64,
) -> SimExpected {
    let values = simulate_coverage_samples(g, cfg, sigma, runs, seed);
    let mean = values.iter().sum::<f64>() / runs as f64;
    let var = if runs > 1 {
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (runs - 1) as f64
    } else {
        0.0
    };
    SimExpected {
        mean,
        std_dev: var.sqrt(),
        runs,
    }
}

/// Parallel `sim-exp(σ)`: distributes the simulation runs over
/// `num_threads` crossbeam workers. The paper uses up to `r = 1000` runs
/// per support value (Figure 4); the draws are embarrassingly parallel.
///
/// Results are *deterministic for a given `(seed, runs)`* and independent
/// of `num_threads`: each run derives its own seed, so the multiset of
/// draws never changes, only who executes them.
pub fn simulate_expected_parallel(
    g: &CsrGraph,
    cfg: &QcConfig,
    sigma: usize,
    runs: usize,
    seed: u64,
    num_threads: usize,
) -> SimExpected {
    assert!(runs > 0, "need at least one simulation run");
    if num_threads <= 1 {
        return simulate_expected(g, cfg, sigma, runs, seed);
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut values = vec![0.0f64; runs];
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(num_threads);
        for _ in 0..num_threads {
            let next_ref = &next;
            handles.push(scope.spawn(move |_| {
                let mut local: Vec<(usize, f64)> = Vec::new();
                loop {
                    let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= runs {
                        break;
                    }
                    // One-draw simulation with a per-run seed: the same
                    // sample regardless of which worker claims run i.
                    let run_seed = seed ^ (i as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
                    let v = simulate_coverage_samples(g, cfg, sigma, 1, run_seed)[0];
                    local.push((i, v));
                }
                local
            }));
        }
        let mut all: Vec<(usize, f64)> = Vec::with_capacity(runs);
        for handle in handles {
            all.extend(handle.join().expect("simulation worker panicked"));
        }
        for (i, v) in all {
            values[i] = v;
        }
    })
    .expect("crossbeam scope failed");
    let mean = values.iter().sum::<f64>() / runs as f64;
    let var = if runs > 1 {
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (runs - 1) as f64
    } else {
        0.0
    };
    SimExpected {
        mean,
        std_dev: var.sqrt(),
        runs,
    }
}

/// Empirical (permutation-test) p-value of an observed structural
/// correlation: the chance that a *random* vertex set of the same support
/// reaches coverage at least `epsilon`, estimated with the standard
/// add-one estimator `(1 + #{draws ≥ ε}) / (runs + 1)` so the p-value is
/// never exactly zero.
pub fn empirical_p_value(
    g: &CsrGraph,
    cfg: &QcConfig,
    sigma: usize,
    epsilon: f64,
    runs: usize,
    seed: u64,
) -> f64 {
    let values = simulate_coverage_samples(g, cfg, sigma, runs, seed);
    let hits = values.iter().filter(|&&v| v >= epsilon - 1e-12).count();
    (1 + hits) as f64 / (runs + 1) as f64
}

/// Memoized simulation-based null model, the `sim-exp` counterpart of
/// [`AnalyticalModel`]. `δ_sim = ε / sim-exp(σ)` is what the paper's
/// Figures 4/7/9 compare `δ_lb` against.
#[derive(Debug)]
pub struct SimulationModel<'g> {
    g: &'g CsrGraph,
    cfg: QcConfig,
    runs: usize,
    seed: u64,
    cache: Mutex<HashMap<usize, SimExpected>>,
}

impl<'g> SimulationModel<'g> {
    /// Creates a model running `runs` simulations per support value.
    pub fn new(g: &'g CsrGraph, cfg: QcConfig, runs: usize, seed: u64) -> Self {
        SimulationModel {
            g,
            cfg,
            runs,
            seed,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// `sim-exp(σ)`, memoized per support.
    pub fn expected(&self, sigma: usize) -> SimExpected {
        if let Some(&v) = self.cache.lock().get(&sigma) {
            return v;
        }
        // Derive a per-σ seed so supports are independent but repeatable.
        let v = simulate_expected(
            self.g,
            &self.cfg,
            sigma,
            self.runs,
            self.seed ^ (sigma as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        self.cache.lock().insert(sigma, v);
        v
    }

    /// `δ_sim = ε / sim-exp(σ)` (0 for ε = 0, `+∞` when the simulation saw
    /// no covered vertices but ε is positive).
    pub fn normalize(&self, epsilon: f64, sigma: usize) -> f64 {
        let e = self.expected(sigma).mean;
        if e <= 0.0 {
            if epsilon > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            epsilon / e
        }
    }

    /// Empirical p-value of an observed `ε` at support `sigma` under this
    /// model's run budget and seed (see [`empirical_p_value`]).
    pub fn p_value(&self, epsilon: f64, sigma: usize) -> f64 {
        empirical_p_value(
            self.g,
            &self.cfg,
            sigma,
            epsilon,
            self.runs,
            self.seed ^ (sigma as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpm_graph::builder::graph_from_edges;
    use scpm_graph::generators::erdos_renyi::gnm;

    #[test]
    fn ln_factorial_values() {
        let lnf = LnFactorial::new(10);
        assert!((lnf.ln_factorial(0) - 0.0).abs() < 1e-12);
        assert!((lnf.ln_factorial(5) - 120f64.ln()).abs() < 1e-9);
        assert!((lnf.ln_choose(5, 2) - 10f64.ln()).abs() < 1e-9);
        assert_eq!(lnf.ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let lnf = LnFactorial::new(40);
        for &rho in &[0.1, 0.5, 0.9] {
            let total: f64 = (0..=30).map(|b| binomial_pmf(30, b, rho, &lnf)).sum();
            assert!((total - 1.0).abs() < 1e-9, "rho {rho}: {total}");
        }
    }

    #[test]
    fn binomial_tail_edge_cases() {
        let lnf = LnFactorial::new(20);
        assert!((binomial_tail(10, 0, 0.3, &lnf) - 1.0).abs() < 1e-12);
        assert_eq!(binomial_tail(10, 11, 0.3, &lnf), 0.0);
        assert!((binomial_tail(10, 10, 1.0, &lnf) - 1.0).abs() < 1e-12);
        assert_eq!(binomial_tail(10, 1, 0.0, &lnf), 0.0);
    }

    fn model_for(g: &CsrGraph, gamma: f64, min_size: usize) -> AnalyticalModel {
        AnalyticalModel::new(g, &QcConfig::new(gamma, min_size))
    }

    #[test]
    fn recurrence_matches_naive_sum() {
        let g = gnm(300, 1500, 11);
        let model = model_for(&g, 0.5, 5);
        for sigma in [0, 1, 2, 10, 50, 120, 299, 300] {
            let fast = model.expected_uncached(sigma);
            let naive = model.expected_naive(sigma);
            assert!(
                (fast - naive).abs() < 1e-9,
                "sigma {sigma}: fast {fast} vs naive {naive}"
            );
        }
    }

    #[test]
    fn expected_is_monotone_in_sigma() {
        let g = gnm(200, 800, 3);
        let model = model_for(&g, 0.6, 4);
        let mut prev = -1.0;
        for sigma in (0..=200).step_by(10) {
            let e = model.expected(sigma);
            assert!(
                e >= prev - 1e-12,
                "max-exp not monotone at sigma {sigma}: {e} < {prev}"
            );
            assert!((0.0..=1.0).contains(&e));
            prev = e;
        }
    }

    #[test]
    fn expected_full_sample_bounds_degree_tail() {
        // With σ = n, ρ = 1: every vertex keeps its degree, so max-exp is
        // the fraction of vertices with degree ≥ z.
        let g = graph_from_edges(5, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        // Degrees: 0:3, 1:3, 2:2, 3:2, 4:0.
        let model = model_for(&g, 1.0, 4); // z = 3
        let e = model.expected(5);
        assert!((e - 0.4).abs() < 1e-9, "expected 2/5, got {e}");
    }

    #[test]
    fn z_zero_gives_one() {
        let g = gnm(50, 100, 5);
        let model = model_for(&g, 0.5, 1); // z = 0
        assert_eq!(model.expected(10), 1.0);
    }

    #[test]
    fn normalize_handles_zero_expectation() {
        let g = graph_from_edges(3, [(0, 1)]);
        let model = model_for(&g, 1.0, 3);
        // σ = 1 → ρ = 0 → expectation 0.
        assert_eq!(model.normalize(0.0, 1), 0.0);
        assert_eq!(model.normalize(0.5, 1), f64::INFINITY);
    }

    #[test]
    fn memoization_is_transparent() {
        let g = gnm(100, 400, 9);
        let model = model_for(&g, 0.5, 4);
        let a = model.expected(40);
        let b = model.expected(40);
        assert_eq!(a, b);
        assert!((a - model.expected_uncached(40)).abs() < 1e-15);
    }

    #[test]
    fn simulation_mean_in_unit_interval() {
        let g = gnm(80, 240, 2);
        let cfg = QcConfig::new(0.5, 4);
        let sim = simulate_expected(&g, &cfg, 20, 20, 7);
        assert!(sim.mean >= 0.0 && sim.mean <= 1.0);
        assert!(sim.std_dev >= 0.0);
        assert_eq!(sim.runs, 20);
    }

    #[test]
    fn simulation_deterministic_per_seed() {
        let g = gnm(60, 180, 4);
        let cfg = QcConfig::new(0.5, 4);
        let a = simulate_expected(&g, &cfg, 15, 10, 42);
        let b = simulate_expected(&g, &cfg, 15, 10, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn analytical_upper_bounds_simulation() {
        // The analytical model bounds the probability of *degree*
        // feasibility, which is only a necessary condition for quasi-clique
        // membership, so on sparse graphs it dominates the simulated
        // coverage comfortably (the paper's Figures 4/7/9 show the same
        // gap). Note the model uses a binomial in place of the exact
        // hypergeometric (Theorem 1), so the comparison is made away from
        // the dense σ ≈ n regime.
        let g = gnm(200, 600, 8);
        let cfg = QcConfig::new(0.5, 4);
        let model = AnalyticalModel::new(&g, &cfg);
        for sigma in [20, 60, 100] {
            let sim = simulate_expected(&g, &cfg, sigma, 25, 17);
            let bound = model.expected(sigma);
            assert!(
                sim.mean <= bound + 3.0 * sim.std_dev / (sim.runs as f64).sqrt() + 1e-9,
                "sigma {sigma}: sim {} exceeds bound {bound}",
                sim.mean
            );
        }
    }

    #[test]
    fn simulation_model_memoizes_and_normalizes() {
        let g = gnm(60, 180, 4);
        let cfg = QcConfig::new(0.5, 4);
        let model = SimulationModel::new(&g, cfg, 5, 11);
        let a = model.expected(20);
        let b = model.expected(20);
        assert_eq!(a, b);
        let delta = model.normalize(0.5, 20);
        if a.mean > 0.0 {
            assert!((delta - 0.5 / a.mean).abs() < 1e-12);
        } else {
            assert_eq!(delta, f64::INFINITY);
        }
        assert_eq!(model.normalize(0.0, 20).min(0.0), 0.0);
    }

    #[test]
    fn delta_lb_lower_bounds_delta_sim_on_random_graph() {
        // δ_lb = ε/max-exp ≤ δ_sim = ε/sim-exp whenever max-exp ≥ sim-exp.
        let g = gnm(150, 450, 6);
        let cfg = QcConfig::new(0.5, 5);
        let analytical = AnalyticalModel::new(&g, &cfg);
        let sim = SimulationModel::new(&g, cfg, 20, 3);
        for sigma in [20usize, 40, 60] {
            let eps = 0.3;
            let lb = analytical.normalize(eps, sigma);
            let ds = sim.normalize(eps, sigma);
            assert!(lb <= ds + 1e-9, "σ {sigma}: δ_lb {lb} > δ_sim {ds}");
        }
    }

    #[test]
    fn parallel_simulation_independent_of_thread_count() {
        let g = gnm(80, 240, 2);
        let cfg = QcConfig::new(0.5, 4);
        let two = simulate_expected_parallel(&g, &cfg, 25, 12, 9, 2);
        let four = simulate_expected_parallel(&g, &cfg, 25, 12, 9, 4);
        assert_eq!(two, four);
        assert!((0.0..=1.0).contains(&two.mean));
        assert_eq!(two.runs, 12);
    }

    #[test]
    fn parallel_single_thread_falls_back_to_serial() {
        let g = gnm(60, 180, 4);
        let cfg = QcConfig::new(0.5, 4);
        let serial = simulate_expected(&g, &cfg, 20, 8, 3);
        let one = simulate_expected_parallel(&g, &cfg, 20, 8, 3, 1);
        assert_eq!(serial, one);
    }

    #[test]
    fn p_value_bounds_and_extremes() {
        let g = gnm(60, 180, 4);
        let cfg = QcConfig::new(0.5, 4);
        // ε = 0 is reached by every draw: p-value = 1.
        assert!((empirical_p_value(&g, &cfg, 20, 0.0, 19, 7) - 1.0).abs() < 1e-12);
        // ε above any attainable coverage: p-value = 1/(runs+1).
        let p = empirical_p_value(&g, &cfg, 20, 1.1, 19, 7);
        assert!((p - 1.0 / 20.0).abs() < 1e-12);
        // Monotone: higher ε cannot have higher p-value.
        let p_low = empirical_p_value(&g, &cfg, 20, 0.1, 19, 7);
        let p_high = empirical_p_value(&g, &cfg, 20, 0.9, 19, 7);
        assert!(p_high <= p_low);
    }

    #[test]
    fn p_value_via_model_is_deterministic() {
        let g = gnm(60, 180, 4);
        let cfg = QcConfig::new(0.5, 4);
        let model = SimulationModel::new(&g, cfg, 9, 3);
        assert_eq!(model.p_value(0.4, 15), model.p_value(0.4, 15));
        assert!((0.0..=1.0).contains(&model.p_value(0.4, 15)));
    }

    #[test]
    fn trait_object_normalization_matches_inherent() {
        let g = gnm(80, 240, 6);
        let cfg = QcConfig::new(0.5, 4);
        let analytical = AnalyticalModel::new(&g, &cfg);
        let dyn_model: &dyn ExpectedCorrelation = &analytical;
        for sigma in [10usize, 30, 60] {
            assert_eq!(
                dyn_model.normalized(0.4, sigma),
                analytical.normalize(0.4, sigma)
            );
        }
    }

    #[test]
    fn simulation_of_whole_graph_matches_direct_coverage() {
        let g = gnm(40, 120, 13);
        let cfg = QcConfig::new(0.5, 4);
        let direct = Miner::new(&g, cfg).coverage().covered.len() as f64 / 40.0;
        let sim = simulate_expected(&g, &cfg, 40, 3, 0);
        assert!((sim.mean - direct).abs() < 1e-12);
        // All three runs see the identical (full) sample.
        assert!(sim.std_dev < 1e-9);
    }
}
