//! Output types of structural correlation pattern mining.

use std::time::Duration;

use scpm_graph::attributed::{AttrId, AttributedGraph};
use scpm_graph::csr::VertexId;
use scpm_quasiclique::QuasiClique;

/// A structural correlation pattern `(S, Q)` (Definition 3): a quasi-clique
/// `Q` from the subgraph induced by the attribute set `S`.
#[derive(Clone, Debug, PartialEq)]
pub struct Pattern {
    /// Sorted attribute ids of `S`.
    pub attrs: Vec<AttrId>,
    /// The quasi-clique, in global vertex ids.
    pub clique: QuasiClique,
}

impl Pattern {
    /// Formats the pattern like the paper's tables:
    /// `({attr, attr}, {v, v, ...})  size  γ`.
    pub fn display(&self, g: &AttributedGraph) -> String {
        let vertices: Vec<String> = self.clique.vertices.iter().map(|v| v.to_string()).collect();
        format!(
            "({}, {{{}}}) size={} gamma={:.2}",
            g.format_attr_set(&self.attrs),
            vertices.join(","),
            self.clique.size(),
            self.clique.min_degree_ratio
        )
    }
}

/// Per-attribute-set measurements: support, structural correlation and its
/// normalization.
#[derive(Clone, Debug, PartialEq)]
pub struct AttributeSetReport {
    /// Sorted attribute ids.
    pub attrs: Vec<AttrId>,
    /// Support `σ(S) = |V(S)|`.
    pub support: usize,
    /// Number of covered vertices `|K_S|`.
    pub covered: usize,
    /// Structural correlation `ε(S) = |K_S| / |V(S)|`.
    pub epsilon: f64,
    /// Normalized structural correlation `δ_lb = ε / max-exp(σ)`.
    pub delta_lb: f64,
    /// Whether the set passed both `εmin` and `δmin` (patterns were
    /// emitted for it).
    pub qualified: bool,
}

/// Counters describing an SCPM (or naive) run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ScpmStats {
    /// Attribute sets whose structural correlation was computed.
    pub attribute_sets_examined: u64,
    /// Attribute sets passing both `εmin` and `δmin`.
    pub attribute_sets_qualified: u64,
    /// Candidate extensions rejected by the support threshold.
    pub pruned_support: u64,
    /// Candidates rejected by the Apriori all-subsets check (level-wise
    /// enumeration only).
    pub pruned_apriori: u64,
    /// Extensions suppressed by Theorem 4 (`ε` upper bound).
    pub pruned_eps_bound: u64,
    /// Extensions suppressed by Theorem 5 (`δ` upper bound).
    pub pruned_delta_bound: u64,
    /// Total quasi-clique search nodes across all coverage computations.
    pub qc_nodes_coverage: u64,
    /// Total quasi-clique search nodes across all top-k computations.
    pub qc_nodes_topk: u64,
    /// Point adjacency/membership queries answered by the quasi-clique
    /// engine's hot loops, summed over all searches of the run.
    pub qc_edge_tests: u64,
    /// Modeled engine hot-loop work: elements touched by slice scans or
    /// `u64` words touched by bitset kernels (see
    /// [`SearchStats::kernel_ops`](scpm_quasiclique::SearchStats)). The
    /// hardware-independent figure `exp_perf` compares across
    /// representations.
    pub qc_kernel_ops: u64,
    /// Fused single-pass kernel invocations, summed over all searches
    /// (bitset hot path plus the shared packed containment filter); see
    /// [`SearchStats::fused_ops`](scpm_quasiclique::SearchStats).
    pub qc_fused_ops: u64,
    /// 8-word blocks skipped via the `VertexBitset` summary hierarchy,
    /// summed over all searches; see
    /// [`SearchStats::blocks_skipped`](scpm_quasiclique::SearchStats).
    pub qc_blocks_skipped: u64,
    /// Point probes the batched row-AND promotion kernels answered in
    /// bulk (bitset path only), summed over all searches; see
    /// [`SearchStats::probes_elided`](scpm_quasiclique::SearchStats).
    pub qc_probes_elided: u64,
    /// `u64` words touched by the batched promotion sweeps, summed over
    /// all searches; see
    /// [`SearchStats::batch_ops`](scpm_quasiclique::SearchStats).
    pub qc_batch_ops: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl ScpmStats {
    /// Merges counters from another run segment (parallel workers).
    pub fn merge(&mut self, other: &ScpmStats) {
        self.attribute_sets_examined += other.attribute_sets_examined;
        self.attribute_sets_qualified += other.attribute_sets_qualified;
        self.pruned_support += other.pruned_support;
        self.pruned_apriori += other.pruned_apriori;
        self.pruned_eps_bound += other.pruned_eps_bound;
        self.pruned_delta_bound += other.pruned_delta_bound;
        self.qc_nodes_coverage += other.qc_nodes_coverage;
        self.qc_nodes_topk += other.qc_nodes_topk;
        self.qc_edge_tests += other.qc_edge_tests;
        self.qc_kernel_ops += other.qc_kernel_ops;
        self.qc_fused_ops += other.qc_fused_ops;
        self.qc_blocks_skipped += other.qc_blocks_skipped;
        self.qc_probes_elided += other.qc_probes_elided;
        self.qc_batch_ops += other.qc_batch_ops;
        // `elapsed` is wall-clock and set by the driver, not summed.
    }
}

/// Full result of a mining run.
#[derive(Clone, Debug, Default)]
pub struct ScpmResult {
    /// One report per examined attribute set (support ≥ σmin), in
    /// enumeration order.
    pub reports: Vec<AttributeSetReport>,
    /// Patterns of all qualifying attribute sets.
    pub patterns: Vec<Pattern>,
    /// Run counters.
    pub stats: ScpmStats,
}

impl ScpmResult {
    /// Reports sorted by descending support.
    pub fn top_by_support(&self, limit: usize) -> Vec<&AttributeSetReport> {
        self.top_by(limit, |r| r.support as f64)
    }

    /// Reports sorted by descending structural correlation.
    pub fn top_by_epsilon(&self, limit: usize) -> Vec<&AttributeSetReport> {
        self.top_by(limit, |r| r.epsilon)
    }

    /// Reports sorted by descending normalized structural correlation.
    pub fn top_by_delta(&self, limit: usize) -> Vec<&AttributeSetReport> {
        self.top_by(limit, |r| r.delta_lb)
    }

    fn top_by(
        &self,
        limit: usize,
        key: impl Fn(&AttributeSetReport) -> f64,
    ) -> Vec<&AttributeSetReport> {
        let mut refs: Vec<&AttributeSetReport> = self.reports.iter().collect();
        refs.sort_by(|a, b| {
            key(b)
                .partial_cmp(&key(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.attrs.cmp(&b.attrs))
        });
        refs.truncate(limit);
        refs
    }

    /// The largest pattern (by size, then density), if any.
    pub fn largest_pattern(&self) -> Option<&Pattern> {
        self.patterns
            .iter()
            .min_by(|a, b| scpm_quasiclique::pattern_order(&a.clique, &b.clique))
    }

    /// Looks up the report of an exact attribute set.
    pub fn report_for(&self, attrs: &[AttrId]) -> Option<&AttributeSetReport> {
        self.reports.iter().find(|r| r.attrs == attrs)
    }

    /// Patterns belonging to one attribute set.
    pub fn patterns_for(&self, attrs: &[AttrId]) -> Vec<&Pattern> {
        self.patterns.iter().filter(|p| p.attrs == attrs).collect()
    }

    /// Patterns whose quasi-clique contains vertex `v` — the serving
    /// layer's "which patterns cover user v?" query. Clique vertex lists
    /// are sorted, so each pattern is a binary search.
    pub fn patterns_covering(&self, v: VertexId) -> Vec<&Pattern> {
        self.patterns
            .iter()
            .filter(|p| p.clique.vertices.binary_search(&v).is_ok())
            .collect()
    }

    /// Reports whose normalized structural correlation reaches
    /// `delta_min`, in enumeration order.
    pub fn reports_with_min_delta(&self, delta_min: f64) -> Vec<&AttributeSetReport> {
        self.reports
            .iter()
            .filter(|r| r.delta_lb >= delta_min)
            .collect()
    }
}

/// Convenience for tests and examples: patterns as
/// `(attr names, vertex set)` pairs.
pub fn describe_patterns(
    g: &AttributedGraph,
    patterns: &[Pattern],
) -> Vec<(Vec<String>, Vec<VertexId>)> {
    patterns
        .iter()
        .map(|p| {
            (
                p.attrs
                    .iter()
                    .map(|&a| g.attr_name(a).to_string())
                    .collect(),
                p.clique.vertices.clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(attrs: Vec<AttrId>, support: usize, eps: f64, delta: f64) -> AttributeSetReport {
        AttributeSetReport {
            attrs,
            support,
            covered: (support as f64 * eps) as usize,
            epsilon: eps,
            delta_lb: delta,
            qualified: true,
        }
    }

    #[test]
    fn top_by_orderings() {
        let result = ScpmResult {
            reports: vec![
                report(vec![0], 100, 0.1, 5.0),
                report(vec![1], 50, 0.9, 1.0),
                report(vec![2], 75, 0.5, 9.0),
            ],
            patterns: Vec::new(),
            stats: ScpmStats::default(),
        };
        let by_sup: Vec<usize> = result.top_by_support(2).iter().map(|r| r.support).collect();
        assert_eq!(by_sup, vec![100, 75]);
        let by_eps: Vec<f64> = result.top_by_epsilon(3).iter().map(|r| r.epsilon).collect();
        assert_eq!(by_eps, vec![0.9, 0.5, 0.1]);
        let by_delta: Vec<f64> = result.top_by_delta(1).iter().map(|r| r.delta_lb).collect();
        assert_eq!(by_delta, vec![9.0]);
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = ScpmStats {
            attribute_sets_examined: 3,
            pruned_support: 1,
            ..Default::default()
        };
        let b = ScpmStats {
            attribute_sets_examined: 4,
            pruned_eps_bound: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.attribute_sets_examined, 7);
        assert_eq!(a.pruned_support, 1);
        assert_eq!(a.pruned_eps_bound, 2);
    }

    #[test]
    fn covering_and_delta_queries() {
        let clique = |vertices: Vec<VertexId>| QuasiClique {
            vertices,
            min_degree_ratio: 1.0,
            edge_density: 1.0,
        };
        let result = ScpmResult {
            reports: vec![
                report(vec![0], 10, 0.5, 2.0),
                report(vec![1], 8, 0.4, 0.5),
                report(vec![2], 6, 0.9, 3.5),
            ],
            patterns: vec![
                Pattern {
                    attrs: vec![0],
                    clique: clique(vec![1, 3, 5]),
                },
                Pattern {
                    attrs: vec![2],
                    clique: clique(vec![2, 3, 4]),
                },
            ],
            stats: ScpmStats::default(),
        };
        assert_eq!(result.patterns_covering(3).len(), 2);
        assert_eq!(result.patterns_covering(5).len(), 1);
        assert!(result.patterns_covering(9).is_empty());
        let deltas: Vec<f64> = result
            .reports_with_min_delta(2.0)
            .iter()
            .map(|r| r.delta_lb)
            .collect();
        assert_eq!(deltas, vec![2.0, 3.5]); // enumeration order, inclusive
        assert_eq!(result.reports_with_min_delta(0.0).len(), 3);
    }

    #[test]
    fn report_lookup() {
        let result = ScpmResult {
            reports: vec![report(vec![1, 2], 10, 0.5, 2.0)],
            patterns: Vec::new(),
            stats: ScpmStats::default(),
        };
        assert!(result.report_for(&[1, 2]).is_some());
        assert!(result.report_for(&[1]).is_none());
    }
}
