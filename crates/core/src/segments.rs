//! Out-of-core mining over a zero-copy snapshot: the attribute lattice is
//! sharded into **segments** of level-1 roots so only one segment's
//! working subgraph is resident at a time.
//!
//! [`mine_mapped`] reproduces [`Scpm::run`](crate::Scpm::run) bit-for-bit
//! (same reports, same patterns, same counters — only `elapsed` is its own
//! wall clock) while reading the graph through a [`MappedSnapshot`]
//! instead of a heap [`AttributedGraph`]. The trick is that every subgraph
//! the search can ever extract under a root attribute `a` lies inside
//! `V(a)`, so a **working graph** containing all edges incident to
//! `W = ⋃ V(a)` over the segment's roots answers every adjacency query of
//! the segment's entire subtree exactly as the full graph would.
//!
//! The driver runs in three layers:
//!
//! 1. **Pack** — frequent attributes (support ≥ σmin), ascending, are
//!    greedily packed into segments; an attribute's cost is the CSR
//!    footprint `8·(deg(v)+1)` bytes of each vertex it *newly* adds to the
//!    segment's working set. A segment always takes at least one root, so
//!    a hub attribute larger than the budget forms a singleton segment.
//! 2. **Phase 1 (descending segments)** — each root's level-1 evaluation
//!    runs on its segment's working graph into a private scratch result;
//!    its cover `K_a` is spilled to a temp file and only an
//!    `attr → (offset, len)` index plus a survival flag stay resident.
//!    Descending order guarantees that by the time a root is *extended*,
//!    every later sibling's cover is already on disk.
//! 3. **Phase 2 (roots ascending)** — each surviving root is extended with
//!    its surviving siblings `b > a`, materializing one sibling
//!    pseudo-entry at a time (tidset from the mapped inverted index, cover
//!    re-read from the spill) via
//!    [`Scpm::extend_pair_refs`](crate::Scpm); surviving children recurse
//!    through the ordinary in-memory enumeration, which stays inside the
//!    working graph.
//!
//! Final assembly concatenates the per-root scratches in the canonical
//! order of the in-memory run — all level-1 reports ascending, then each
//! root's subtree ascending — and sums counters with
//! [`ScpmStats::merge`](crate::ScpmStats::merge).
//!
//! ε is normalized against the **full** graph's null model (degree
//! histogram straight from the mapped CSR offsets), shared across
//! segments through one [`NullModelCache`]; see [`Scpm::with_model`].

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use scpm_graph::attributed::{AttrId, AttributedGraphBuilder};
use scpm_graph::csr::VertexId;
use scpm_graph::{DegreeDistribution, MappedSnapshot, SnapshotError};
use scpm_itemset::Tidset;

use crate::algorithm::{EnumEntry, Scpm};
use crate::nullmodel::{AnalyticalModel, NullModelCache};
use crate::params::ScpmParams;
use crate::pattern::ScpmResult;

/// Disambiguates spill files of concurrent runs inside one process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Append-only spill of level-1 covers, read back by `(offset, len)`.
struct CoverSpill {
    file: File,
    len: u64,
    path: PathBuf,
}

impl CoverSpill {
    fn create() -> std::io::Result<CoverSpill> {
        let path = std::env::temp_dir().join(format!(
            "scpm-segment-covers-{}-{}.spill",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(CoverSpill { file, len: 0, path })
    }

    /// Appends a cover, returning its `(offset, len)` handle.
    fn push(&mut self, cover: &[VertexId]) -> std::io::Result<(u64, u32)> {
        let offset = self.len;
        self.file.seek(SeekFrom::Start(offset))?;
        let mut buf = Vec::with_capacity(cover.len() * 4);
        for v in cover {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        self.file.write_all(&buf)?;
        self.len += buf.len() as u64;
        Ok((offset, cover.len() as u32))
    }

    /// Reads a cover back by its handle.
    fn read(&mut self, handle: (u64, u32)) -> std::io::Result<Vec<VertexId>> {
        let (offset, count) = handle;
        let mut buf = vec![0u8; count as usize * 4];
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(&mut buf)?;
        Ok(buf
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

impl Drop for CoverSpill {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Greedily packs the frequent attributes (ascending) into segments whose
/// working-set CSR footprint stays under `budget_bytes`. Every segment
/// holds at least one root.
fn pack_segments(
    snap: &MappedSnapshot,
    frequent: &[AttrId],
    budget_bytes: usize,
) -> Result<Vec<Vec<AttrId>>, SnapshotError> {
    let offsets = snap.csr_offsets()?;
    let n = snap.num_vertices();
    let cost_of = |v: VertexId| -> usize {
        let v = v as usize;
        8 * ((offsets[v + 1] - offsets[v]) as usize + 1)
    };
    let mut segments: Vec<Vec<AttrId>> = Vec::new();
    let mut member = vec![false; n];
    let mut current: Vec<AttrId> = Vec::new();
    let mut current_cost = 0usize;
    for &a in frequent {
        let added: usize = snap
            .vertices_with(a)?
            .iter()
            .filter(|&&v| !member[v as usize])
            .map(|&v| cost_of(v))
            .sum();
        if !current.is_empty() && current_cost + added > budget_bytes {
            segments.push(std::mem::take(&mut current));
            member.iter_mut().for_each(|m| *m = false);
            current_cost = 0;
            // Recost against the now-empty working set.
            for &v in snap.vertices_with(a)? {
                member[v as usize] = true;
            }
            current_cost += snap
                .vertices_with(a)?
                .iter()
                .map(|&v| cost_of(v))
                .sum::<usize>();
            current.push(a);
            continue;
        }
        for &v in snap.vertices_with(a)? {
            member[v as usize] = true;
        }
        current_cost += added;
        current.push(a);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    Ok(segments)
}

/// Builds a segment's working graph: every vertex of the snapshot, plus
/// every edge with at least one endpoint in the union of the segment
/// roots' tidsets. No attributes are interned — the mining engine reads
/// attribute data from entries, never from the working graph.
fn working_graph(
    snap: &MappedSnapshot,
    roots: &[AttrId],
) -> Result<scpm_graph::AttributedGraph, SnapshotError> {
    let n = snap.num_vertices();
    let mut member = vec![false; n];
    for &a in roots {
        for &v in snap.vertices_with(a)? {
            member[v as usize] = true;
        }
    }
    let mut b = AttributedGraphBuilder::new(n);
    for v in 0..n as u32 {
        if !member[v as usize] {
            continue;
        }
        for &u in snap.neighbors(v)? {
            // Both endpoints in the working set would add the edge twice;
            // keep the copy from the smaller endpoint.
            if !member[u as usize] || v < u {
                b.add_edge(v, u);
            }
        }
    }
    Ok(b.build())
}

/// Mines a mapped snapshot with bounded working-graph memory, reproducing
/// [`Scpm::run`](crate::Scpm::run) on the decoded graph bit-for-bit
/// (reports, patterns and every counter except the wall-clock `elapsed`).
///
/// `segment_budget_bytes` caps the approximate CSR footprint of each
/// segment's working graph — smaller budgets mean more, smaller segments
/// (a single hub attribute may still exceed the budget on its own; it then
/// forms a singleton segment, which is the floor of this scheme).
///
/// ```
/// use scpm_core::segments::mine_mapped;
/// use scpm_core::{Scpm, ScpmParams};
/// use scpm_graph::figure1::figure1;
/// use scpm_graph::{encode, MappedSnapshot};
///
/// let g = figure1();
/// let snap = MappedSnapshot::from_bytes(encode(&g)).unwrap();
/// let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
/// let out_of_core = mine_mapped(&snap, params.clone(), 256).unwrap();
/// let in_memory = Scpm::new(&g, params).run();
/// assert_eq!(
///     format!("{:?}", out_of_core.reports),
///     format!("{:?}", in_memory.reports),
/// );
/// assert_eq!(out_of_core.patterns.len(), in_memory.patterns.len());
/// ```
pub fn mine_mapped(
    snap: &MappedSnapshot,
    params: ScpmParams,
    segment_budget_bytes: usize,
) -> Result<ScpmResult, SnapshotError> {
    let start = Instant::now();
    let n = snap.num_vertices();
    let num_attrs = snap.num_attributes();

    // The full graph's degree histogram, straight from the CSR offsets —
    // the null model every segment normalizes against.
    let offsets = snap.csr_offsets()?;
    let max_degree = (0..n)
        .map(|v| (offsets[v + 1] - offsets[v]) as usize)
        .max()
        .unwrap_or(0);
    let mut counts = vec![0usize; max_degree + 1];
    for v in 0..n {
        counts[(offsets[v + 1] - offsets[v]) as usize] += 1;
    }
    let dist = DegreeDistribution::from_counts(counts);
    let cache = Arc::new(NullModelCache::new());

    let frequent: Vec<AttrId> = (0..num_attrs as AttrId)
        .filter(|&a| {
            snap.support(a)
                .map(|s| s >= params.sigma_min)
                .unwrap_or(true)
        })
        .collect();
    // Surface any validation error the filter swallowed.
    for &a in &frequent {
        snap.support(a)?;
    }

    let segments = pack_segments(snap, &frequent, segment_budget_bytes)?;

    // Per-root scratches, indexed by attribute id: the level-1 result of
    // every frequent root, and the subtree result of every surviving one.
    let mut l1_results: Vec<Option<ScpmResult>> = (0..num_attrs).map(|_| None).collect();
    let mut subtree_results: Vec<Option<ScpmResult>> = (0..num_attrs).map(|_| None).collect();
    let mut cover_handle: Vec<Option<(u64, u32)>> = vec![None; num_attrs];
    let mut spill = CoverSpill::create()?;

    // Descending, so every sibling b > a has its cover spilled before any
    // root a extends with it.
    for seg in segments.iter().rev() {
        let graph = working_graph(snap, seg)?;
        let model = AnalyticalModel::from_distribution(dist.clone(), n, &params.quasi_clique)
            .with_cache(cache.clone());
        let scpm = Scpm::with_model(&graph, params.clone(), model);
        let engine = scpm.engine();

        // Phase 1: level-1 evaluation of each root on the working graph.
        let mut entries: Vec<Option<EnumEntry>> = Vec::with_capacity(seg.len());
        for &a in seg {
            let tids = Tidset::from_sorted(snap.vertices_with(a)?.to_vec());
            let mut scratch = ScpmResult::default();
            let entry = scpm.evaluate(&engine, vec![a], tids, None, None, true, &mut scratch);
            if let Some(e) = &entry {
                cover_handle[a as usize] = Some(spill.push(&e.cover)?);
            }
            l1_results[a as usize] = Some(scratch);
            entries.push(entry);
        }

        // Phase 2: extend each surviving root with its surviving siblings,
        // one pseudo-entry at a time; children enumerate in memory.
        for (slot, &a) in seg.iter().enumerate() {
            let Some(base) = entries[slot].take() else {
                continue;
            };
            let mut scratch = ScpmResult::default();
            let mut next: Vec<EnumEntry> = Vec::new();
            let mut cover_buf: Vec<VertexId> = Vec::new();
            for &b in frequent.iter().filter(|&&b| b > a) {
                let Some(handle) = cover_handle[b as usize] else {
                    continue;
                };
                let sibling = EnumEntry {
                    attrs: vec![b],
                    tids: Tidset::from_sorted(snap.vertices_with(b)?.to_vec()),
                    cover: spill.read(handle)?,
                    sub: None,
                    stable: false,
                };
                if let Some(child) =
                    scpm.extend_pair_refs(&engine, &base, &sibling, &mut cover_buf, &mut scratch)
                {
                    next.push(child);
                }
            }
            if !next.is_empty() {
                scpm.enumerate_class(&engine, &next, &mut scratch);
            }
            subtree_results[a as usize] = Some(scratch);
        }
    }

    // Canonical reassembly: level-1 reports ascending, then each root's
    // subtree ascending — exactly the in-memory enumeration order.
    let mut result = ScpmResult::default();
    for scratch in l1_results.into_iter().flatten() {
        result.reports.extend(scratch.reports);
        result.patterns.extend(scratch.patterns);
        result.stats.merge(&scratch.stats);
    }
    for scratch in subtree_results.into_iter().flatten() {
        result.reports.extend(scratch.reports);
        result.patterns.extend(scratch.patterns);
        result.stats.merge(&scratch.stats);
    }
    result.stats.elapsed = start.elapsed();
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scpm;
    use scpm_graph::figure1::figure1;
    use scpm_graph::{encode, AttributedGraph};

    fn fingerprint(r: &ScpmResult) -> String {
        format!("{:?}|{:?}", r.reports, r.patterns)
    }

    fn assert_equivalent(g: &AttributedGraph, params: ScpmParams, budgets: &[usize]) {
        let reference = Scpm::new(g, params.clone()).run();
        let snap = MappedSnapshot::from_bytes(encode(g)).unwrap();
        for &budget in budgets {
            let mined = mine_mapped(&snap, params.clone(), budget).unwrap();
            assert_eq!(
                fingerprint(&mined),
                fingerprint(&reference),
                "budget {budget} diverged"
            );
            let (mut a, mut b) = (mined.stats, reference.stats);
            a.elapsed = Default::default();
            b.elapsed = Default::default();
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "budget {budget} counters"
            );
        }
    }

    #[test]
    fn figure1_matches_in_memory_at_every_budget() {
        // Budgets from "one root per segment" to "everything in one".
        let g = figure1();
        let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
        assert_equivalent(&g, params, &[1, 64, 512, 4096, usize::MAX]);
    }

    #[test]
    fn permissive_parameters_exercise_deep_subtrees() {
        // σmin = 1 with no ε/δ floor keeps every attribute extensible, so
        // cross-segment sibling extension does real work.
        let g = figure1();
        let params = ScpmParams::new(1, 0.5, 3).with_eps_min(0.0);
        assert_equivalent(&g, params, &[1, 200, usize::MAX]);
    }

    /// A deterministic random attributed graph (xorshift; no rand dep).
    fn random_graph(n: usize, attrs: u32, seed: u64) -> AttributedGraph {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = AttributedGraphBuilder::new(n);
        for a in 0..attrs {
            b.intern_attr(&format!("t{a}"));
        }
        for _ in 0..n * 3 {
            let (u, v) = ((next() as usize % n) as u32, (next() as usize % n) as u32);
            if u != v {
                b.add_edge(u, v);
            }
        }
        for v in 0..n as u32 {
            for _ in 0..1 + next() % 3 {
                b.add_attr(v, (next() % attrs as u64) as u32);
            }
        }
        b.build()
    }

    #[test]
    fn random_graphs_match_in_memory() {
        for seed in 1..=6u64 {
            let g = random_graph(40, 8, seed.wrapping_mul(0x9e3779b97f4a7c15));
            let params = ScpmParams::new(3, 0.5, 3).with_eps_min(0.1);
            assert_equivalent(&g, params, &[1, 1 << 10, 1 << 20]);
        }
    }

    #[test]
    fn empty_and_attributeless_graphs_are_fine() {
        let g = AttributedGraphBuilder::new(5).build();
        let snap = MappedSnapshot::from_bytes(encode(&g)).unwrap();
        let r = mine_mapped(&snap, ScpmParams::new(1, 0.5, 3), 1024).unwrap();
        assert!(r.reports.is_empty() && r.patterns.is_empty());
    }

    #[test]
    fn segment_packing_respects_budget_floor() {
        let g = figure1();
        let snap = MappedSnapshot::from_bytes(encode(&g)).unwrap();
        let frequent: Vec<AttrId> = (0..snap.num_attributes() as AttrId)
            .filter(|&a| snap.support(a).unwrap() >= 1)
            .collect();
        // A 1-byte budget forces singleton segments.
        let tiny = pack_segments(&snap, &frequent, 1).unwrap();
        assert_eq!(tiny.len(), frequent.len());
        assert!(tiny.iter().all(|s| s.len() == 1));
        // An unbounded budget packs everything together.
        let all = pack_segments(&snap, &frequent, usize::MAX).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0], frequent);
    }

    #[test]
    fn corrupt_snapshot_surfaces_error_not_panic() {
        let g = figure1();
        let mut bytes = encode(&g).as_ref().to_vec();
        bytes[400] ^= 0xff; // inside the CSR-offsets section
        let snap = MappedSnapshot::from_bytes(bytes).unwrap();
        let err = mine_mapped(&snap, ScpmParams::new(1, 0.5, 3), 1024);
        assert!(err.is_err(), "corruption must surface as an error");
    }
}
