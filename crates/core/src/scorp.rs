//! The SCORP baseline (Silva, Meira & Zaki, MLG 2010 — reference \[16\] of
//! the paper).
//!
//! SCORP introduced structural correlation pattern mining; SCPM (§2.2)
//! extends it with normalization-based pruning (Theorem 5), the coverage
//! search strategies of §3.2.2, and top-k pattern enumeration (§3.2.3).
//! This module reconstructs SCORP as the intermediate baseline between the
//! naive algorithm and SCPM:
//!
//! * attribute sets are enumerated depth-first with support and Theorem-4
//!   (ε upper bound) pruning — Theorem 3 vertex pruning is available since
//!   it already appears in \[16\],
//! * **no** δ-based pruning (the normalized structural correlation is the
//!   VLDB'12 contribution) — δ_lb is still *reported* so result rows stay
//!   comparable,
//! * the **complete** set of patterns of each qualifying attribute set is
//!   enumerated instead of the top-k (no size-bound search-space
//!   reduction).
//!
//! Given the same parameters (and `δmin = 0`), SCORP's qualifying sets and
//! pattern rows match SCPM's with unbounded `k`; only the work differs.
//! The performance gap between the two is exactly what Figure 8(f) shows
//! when `k` grows.

use std::time::Instant;

use scpm_graph::attributed::{AttrId, AttributedGraph};
use scpm_graph::csr::{intersect_into, VertexId};
use scpm_itemset::Tidset;
use scpm_quasiclique::pattern_order;

use crate::correlation::CorrelationEngine;
use crate::nullmodel::AnalyticalModel;
use crate::params::ScpmParams;
use crate::pattern::{AttributeSetReport, Pattern, ScpmResult};

/// The SCORP miner. Construct once per graph/parameter combination and
/// call [`Scorp::run`].
pub struct Scorp<'g> {
    graph: &'g AttributedGraph,
    params: ScpmParams,
    model: AnalyticalModel,
}

/// An attribute set queued for extension.
struct Entry {
    attrs: Vec<AttrId>,
    tids: Tidset,
    cover: Vec<VertexId>,
}

impl<'g> Scorp<'g> {
    /// Binds SCORP to a graph and parameter set. The `δmin`, `k` and
    /// search-order fields of `params` are ignored (SCORP predates them);
    /// everything else is honored.
    pub fn new(graph: &'g AttributedGraph, params: ScpmParams) -> Self {
        let model = AnalyticalModel::new(graph.graph(), &params.quasi_clique);
        Scorp {
            graph,
            params,
            model,
        }
    }

    /// Runs SCORP and returns reports, the complete pattern set of every
    /// qualifying attribute set, and counters.
    pub fn run(&self) -> ScpmResult {
        let start = Instant::now();
        let engine = CorrelationEngine::new(
            self.graph,
            self.params.quasi_clique,
            self.params.search_order,
            self.params.qc_prune,
            self.params.repr,
            self.params.prune.vertex_pruning,
        );
        let mut result = ScpmResult::default();
        let mut level1 = Vec::new();
        for a in self.graph.attributes() {
            if self.graph.support(a) < self.params.sigma_min {
                continue;
            }
            let tids = Tidset::from_sorted(self.graph.vertices_with(a).to_vec());
            if let Some(entry) = self.evaluate(&engine, vec![a], tids, None, &mut result) {
                level1.push(entry);
            }
        }
        self.enumerate_class(&engine, &level1, &mut result);
        result.stats.elapsed = start.elapsed();
        result
    }

    /// Evaluates one attribute set: ε via coverage, the complete maximal
    /// pattern set when it qualifies, and the Theorem-4 extension gate.
    fn evaluate(
        &self,
        engine: &CorrelationEngine<'g>,
        attrs: Vec<AttrId>,
        tids: Tidset,
        parent_cover: Option<&[VertexId]>,
        result: &mut ScpmResult,
    ) -> Option<Entry> {
        let support = tids.support();
        let outcome = engine.epsilon(tids.as_slice(), parent_cover);
        result.stats.attribute_sets_examined += 1;
        result.stats.qc_nodes_coverage += outcome.stats.nodes_visited;
        result.stats.qc_edge_tests += outcome.stats.edge_tests;
        result.stats.qc_kernel_ops += outcome.stats.kernel_ops;
        result.stats.qc_fused_ops += outcome.stats.fused_ops;
        result.stats.qc_blocks_skipped += outcome.stats.blocks_skipped;
        result.stats.qc_probes_elided += outcome.stats.probes_elided;
        result.stats.qc_batch_ops += outcome.stats.batch_ops;
        let epsilon = outcome.epsilon;
        let delta_lb = self.model.normalize(epsilon, support);
        let qualified = epsilon >= self.params.eps_min;

        if attrs.len() >= self.params.min_attrs {
            result.reports.push(AttributeSetReport {
                attrs: attrs.clone(),
                support,
                covered: outcome.covered.len(),
                epsilon,
                delta_lb,
                qualified,
            });
            if qualified {
                result.stats.attribute_sets_qualified += 1;
                // Complete maximal enumeration — SCORP has no top-k bound.
                let restricted = if self.params.prune.vertex_pruning {
                    let mut buf = Vec::new();
                    intersect_into(tids.as_slice(), &outcome.covered, &mut buf);
                    buf
                } else {
                    tids.as_slice().to_vec()
                };
                let (mut cliques, stats) = engine.enumerate_all(&restricted);
                result.stats.qc_nodes_topk += stats.nodes_visited;
                result.stats.qc_edge_tests += stats.edge_tests;
                result.stats.qc_kernel_ops += stats.kernel_ops;
                result.stats.qc_fused_ops += stats.fused_ops;
                result.stats.qc_blocks_skipped += stats.blocks_skipped;
                result.stats.qc_probes_elided += stats.probes_elided;
                result.stats.qc_batch_ops += stats.batch_ops;
                cliques.sort_by(pattern_order);
                for clique in cliques {
                    result.patterns.push(Pattern {
                        attrs: attrs.clone(),
                        clique,
                    });
                }
            }
        } else if qualified {
            result.stats.attribute_sets_qualified += 1;
        }

        if attrs.len() >= self.params.max_attrs {
            return None;
        }
        // Theorem 4 only.
        let covered_count = outcome.covered.len() as f64;
        if self.params.prune.eps_pruning
            && covered_count < self.params.eps_min * self.params.sigma_min as f64
        {
            result.stats.pruned_eps_bound += 1;
            return None;
        }
        Some(Entry {
            attrs,
            tids,
            cover: outcome.covered,
        })
    }

    /// Prefix-class DFS over attribute sets (identical traversal to SCPM's
    /// Algorithm 3; only the per-set work differs).
    fn enumerate_class(
        &self,
        engine: &CorrelationEngine<'g>,
        class: &[Entry],
        result: &mut ScpmResult,
    ) {
        let mut cover_buf: Vec<VertexId> = Vec::new();
        for (i, base) in class.iter().enumerate() {
            let mut next: Vec<Entry> = Vec::new();
            for sibling in class.iter().skip(i + 1) {
                let tids = base.tids.intersect(&sibling.tids);
                if tids.support() < self.params.sigma_min {
                    result.stats.pruned_support += 1;
                    continue;
                }
                let mut attrs = base.attrs.clone();
                attrs.push(*sibling.attrs.last().expect("non-empty attribute set"));
                let parent_cover = if self.params.prune.vertex_pruning {
                    intersect_into(&base.cover, &sibling.cover, &mut cover_buf);
                    Some(cover_buf.as_slice())
                } else {
                    None
                };
                if let Some(entry) = self.evaluate(engine, attrs, tids, parent_cover, result) {
                    next.push(entry);
                }
            }
            if !next.is_empty() {
                self.enumerate_class(engine, &next, result);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Scpm;
    use scpm_graph::figure1::figure1;

    fn table1_params() -> ScpmParams {
        ScpmParams::new(3, 0.6, 4).with_eps_min(0.5)
    }

    fn sorted_patterns(r: &ScpmResult) -> Vec<(Vec<u32>, Vec<u32>)> {
        let mut v: Vec<(Vec<u32>, Vec<u32>)> = r
            .patterns
            .iter()
            .map(|p| (p.attrs.clone(), p.clique.vertices.clone()))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn scorp_reproduces_table1() {
        let g = figure1();
        let result = Scorp::new(&g, table1_params()).run();
        assert_eq!(result.patterns.len(), 7);
    }

    #[test]
    fn scorp_matches_scpm_with_unbounded_k_and_no_delta() {
        let g = figure1();
        let params = table1_params(); // δmin = 0, k unbounded by default
        let scorp = Scorp::new(&g, params.clone()).run();
        let scpm = Scpm::new(&g, params).run();
        assert_eq!(sorted_patterns(&scorp), sorted_patterns(&scpm));
        // Same qualifying sets.
        let q = |r: &ScpmResult| {
            let mut v: Vec<Vec<u32>> = r
                .reports
                .iter()
                .filter(|rep| rep.qualified)
                .map(|rep| rep.attrs.clone())
                .collect();
            v.sort();
            v
        };
        assert_eq!(q(&scorp), q(&scpm));
    }

    #[test]
    fn scorp_ignores_delta_threshold() {
        let g = figure1();
        // A δmin that disqualifies everything under SCPM must not change
        // SCORP's qualifying sets (SCORP predates normalization).
        let params = table1_params().with_delta_min(f64::INFINITY);
        let scorp = Scorp::new(&g, params.clone()).run();
        assert!(scorp.reports.iter().any(|r| r.qualified));
        let scpm = Scpm::new(&g, params).run();
        assert!(scpm.reports.iter().all(|r| !r.qualified));
    }

    #[test]
    fn scorp_reports_delta_for_comparison() {
        let g = figure1();
        let result = Scorp::new(&g, table1_params()).run();
        let a = g.attr_id("A").unwrap();
        let rep = result.report_for(&[a]).unwrap();
        assert!(rep.delta_lb > 0.0);
    }

    #[test]
    fn scorp_theorem4_gate_prunes_hopeless_extensions() {
        let g = figure1();
        let result = Scorp::new(&g, table1_params()).run();
        // {C} and {D} have |K| = 0 < εmin·σmin and must be gate-pruned.
        assert_eq!(result.stats.pruned_eps_bound, 2);
    }
}
