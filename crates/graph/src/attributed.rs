//! Attributed graphs: a CSR graph plus per-vertex attribute sets and an
//! inverted attribute index.

use std::collections::HashMap;

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};

/// Identifier of an attribute. Attributes are dense integers `0..|A|`.
pub type AttrId = u32;

/// An attributed graph `G = (V, E, A, F)`.
///
/// Stores, besides the topology:
/// * `F(v)` for every vertex as a sorted [`AttrId`] list,
/// * the inverted index `V({a}) = { v : a ∈ F(v) }` as sorted vertex lists
///   (this is the *tidset* of the single attribute `a`, the starting point
///   of all vertical itemset mining in the workspace),
/// * a name table mapping attribute ids to human-readable strings.
#[derive(Clone, Debug)]
pub struct AttributedGraph {
    graph: CsrGraph,
    /// CSR-style storage of `F(v)`: `attr_offsets[v]..attr_offsets[v+1]`
    /// indexes `vertex_attrs`.
    attr_offsets: Vec<usize>,
    vertex_attrs: Vec<AttrId>,
    /// Inverted index: `attr_vertices[a]` is the sorted list of vertices
    /// carrying attribute `a`.
    attr_vertices: Vec<Vec<VertexId>>,
    attr_names: Vec<String>,
}

impl AttributedGraph {
    /// The underlying topology.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Number of distinct attributes.
    #[inline]
    pub fn num_attributes(&self) -> usize {
        self.attr_names.len()
    }

    /// `F(v)`: the sorted attribute ids of vertex `v`.
    #[inline]
    pub fn attributes_of(&self, v: VertexId) -> &[AttrId] {
        let v = v as usize;
        &self.vertex_attrs[self.attr_offsets[v]..self.attr_offsets[v + 1]]
    }

    /// Whether vertex `v` carries attribute `a`.
    pub fn has_attribute(&self, v: VertexId, a: AttrId) -> bool {
        self.attributes_of(v).binary_search(&a).is_ok()
    }

    /// The sorted vertex list `V({a})` carrying attribute `a` (its tidset).
    #[inline]
    pub fn vertices_with(&self, a: AttrId) -> &[VertexId] {
        &self.attr_vertices[a as usize]
    }

    /// The support `σ({a}) = |V({a})|` of the single attribute `a`.
    #[inline]
    pub fn support(&self, a: AttrId) -> usize {
        self.attr_vertices[a as usize].len()
    }

    /// Human-readable name of attribute `a`.
    #[inline]
    pub fn attr_name(&self, a: AttrId) -> &str {
        &self.attr_names[a as usize]
    }

    /// Looks up an attribute id by name (linear scan; intended for tests and
    /// examples — hot paths use ids).
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attr_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as AttrId)
    }

    /// Formats an attribute-id set as `{name, name, ...}`.
    pub fn format_attr_set(&self, attrs: &[AttrId]) -> String {
        let names: Vec<&str> = attrs.iter().map(|&a| self.attr_name(a)).collect();
        format!("{{{}}}", names.join(", "))
    }

    /// Iterates over all attribute ids.
    pub fn attributes(&self) -> impl Iterator<Item = AttrId> {
        0..self.num_attributes() as AttrId
    }

    /// Computes `V(S)` for an attribute set `S` by intersecting tidsets,
    /// smallest first. Returns a sorted vertex list. For `S = {}` the result
    /// is all vertices.
    ///
    /// Convenience wrapper around [`Self::vertices_with_all_into`] that
    /// allocates fresh buffers; hot callers should hold their own scratch.
    pub fn vertices_with_all(&self, attrs: &[AttrId]) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        self.vertices_with_all_into(attrs, &mut out, &mut scratch);
        out
    }

    /// Computes `V(S)` into a caller-provided buffer, reusing `scratch` for
    /// the intermediate intersections (neither allocates once warm).
    ///
    /// The accumulator starts from the rarest attribute's tidset and only
    /// shrinks, while the remaining tidsets are visited in ascending
    /// support order — exactly the skew the galloping
    /// [`intersect_adaptive_into`](crate::csr::intersect_adaptive_into)
    /// kernel exploits (`O(s·log(ℓ/s))` per round instead of a full merge).
    pub fn vertices_with_all_into(
        &self,
        attrs: &[AttrId],
        out: &mut Vec<VertexId>,
        scratch: &mut Vec<VertexId>,
    ) {
        out.clear();
        if attrs.is_empty() {
            out.extend(0..self.num_vertices() as VertexId);
            return;
        }
        let mut order: Vec<AttrId> = attrs.to_vec();
        order.sort_unstable_by_key(|&a| self.support(a));
        out.extend_from_slice(self.vertices_with(order[0]));
        for &a in &order[1..] {
            crate::csr::intersect_adaptive_into(out, self.vertices_with(a), scratch);
            std::mem::swap(out, scratch);
            if out.is_empty() {
                break;
            }
        }
    }
}

impl AttributedGraph {
    /// Assembles an attributed graph directly from validated CSR-style
    /// parts — the zero-rebuild path the v3 snapshot decoder uses after
    /// its structural pass. The caller guarantees the invariants the
    /// builder would otherwise establish: `attr_offsets` monotone with
    /// `attr_offsets[n] == vertex_attrs.len()`, per-vertex attribute
    /// lists strictly sorted, and `attr_vertices[a]` the exact sorted
    /// inverted lists of `vertex_attrs`.
    pub(crate) fn from_csr_parts(
        graph: CsrGraph,
        attr_offsets: Vec<usize>,
        vertex_attrs: Vec<AttrId>,
        attr_vertices: Vec<Vec<VertexId>>,
        attr_names: Vec<String>,
    ) -> AttributedGraph {
        debug_assert_eq!(attr_offsets.len(), graph.num_vertices() + 1);
        debug_assert_eq!(*attr_offsets.last().unwrap_or(&0), vertex_attrs.len());
        debug_assert_eq!(attr_vertices.len(), attr_names.len());
        AttributedGraph {
            graph,
            attr_offsets,
            vertex_attrs,
            attr_vertices,
            attr_names,
        }
    }
}

/// Builder for [`AttributedGraph`]s: edges plus named attributes.
#[derive(Debug, Default)]
pub struct AttributedGraphBuilder {
    edges: GraphBuilder,
    /// Attribute ids per vertex, unsorted while building.
    attrs: Vec<Vec<AttrId>>,
    names: Vec<String>,
    by_name: HashMap<String, AttrId>,
}

impl AttributedGraphBuilder {
    /// Builder for a graph with exactly `n` vertices.
    pub fn new(n: usize) -> Self {
        AttributedGraphBuilder {
            edges: GraphBuilder::new(n),
            attrs: vec![Vec::new(); n],
            names: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.attrs.len()
    }

    /// Adds the undirected edge `{u, v}`.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.add_edge(u, v);
    }

    /// Interns an attribute name, returning its id.
    pub fn intern_attr(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as AttrId;
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Assigns attribute `a` (by id) to vertex `v`.
    ///
    /// # Panics
    /// Panics if `a` was not interned or `v` is out of range.
    pub fn add_attr(&mut self, v: VertexId, a: AttrId) {
        assert!(
            (a as usize) < self.names.len(),
            "attribute {a} not interned"
        );
        self.attrs[v as usize].push(a);
    }

    /// Assigns an attribute by name (interning it if new).
    pub fn add_attr_named(&mut self, v: VertexId, name: &str) {
        let a = self.intern_attr(name);
        self.add_attr(v, a);
    }

    /// Builds the attributed graph. Attribute lists are sorted and
    /// deduplicated; the inverted index is derived.
    pub fn build(mut self) -> AttributedGraph {
        let graph = self.edges.build();
        let n = graph.num_vertices();
        assert_eq!(n, self.attrs.len(), "edge/attribute vertex count mismatch");
        let mut attr_offsets = Vec::with_capacity(n + 1);
        attr_offsets.push(0usize);
        let mut vertex_attrs = Vec::new();
        let mut attr_vertices: Vec<Vec<VertexId>> = vec![Vec::new(); self.names.len()];
        for (v, list) in self.attrs.iter_mut().enumerate() {
            list.sort_unstable();
            list.dedup();
            for &a in list.iter() {
                vertex_attrs.push(a);
                attr_vertices[a as usize].push(v as VertexId);
            }
            attr_offsets.push(vertex_attrs.len());
        }
        // Inverted lists are sorted by construction (vertices visited in
        // ascending order).
        AttributedGraph {
            graph,
            attr_offsets,
            vertex_attrs,
            attr_vertices,
            attr_names: self.names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttributedGraph {
        let mut b = AttributedGraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_attr_named(0, "red");
        b.add_attr_named(1, "red");
        b.add_attr_named(1, "blue");
        b.add_attr_named(2, "blue");
        b.add_attr_named(3, "green");
        b.build()
    }

    #[test]
    fn attribute_lookup() {
        let g = sample();
        assert_eq!(g.num_attributes(), 3);
        let red = g.attr_id("red").unwrap();
        let blue = g.attr_id("blue").unwrap();
        assert_eq!(g.vertices_with(red), &[0, 1]);
        assert_eq!(g.vertices_with(blue), &[1, 2]);
        assert_eq!(g.support(red), 2);
        assert!(g.has_attribute(1, red));
        assert!(!g.has_attribute(0, blue));
        assert_eq!(g.attr_name(red), "red");
    }

    #[test]
    fn attributes_of_sorted_and_deduped() {
        let mut b = AttributedGraphBuilder::new(1);
        let x = b.intern_attr("x");
        let y = b.intern_attr("y");
        b.add_attr(0, y);
        b.add_attr(0, x);
        b.add_attr(0, y);
        let g = b.build();
        assert_eq!(g.attributes_of(0), &[x, y]);
    }

    #[test]
    fn vertices_with_all_intersects() {
        let g = sample();
        let red = g.attr_id("red").unwrap();
        let blue = g.attr_id("blue").unwrap();
        assert_eq!(g.vertices_with_all(&[red, blue]), vec![1]);
        assert_eq!(g.vertices_with_all(&[red]), vec![0, 1]);
        assert_eq!(g.vertices_with_all(&[]), vec![0, 1, 2, 3]);
        let green = g.attr_id("green").unwrap();
        assert!(g.vertices_with_all(&[red, green]).is_empty());
    }

    #[test]
    fn vertices_with_all_into_reuses_buffers() {
        let g = sample();
        let red = g.attr_id("red").unwrap();
        let blue = g.attr_id("blue").unwrap();
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        g.vertices_with_all_into(&[red, blue], &mut out, &mut scratch);
        assert_eq!(out, vec![1]);
        // A second query through the same buffers overwrites cleanly.
        g.vertices_with_all_into(&[], &mut out, &mut scratch);
        assert_eq!(out, vec![0, 1, 2, 3]);
        g.vertices_with_all_into(&[blue], &mut out, &mut scratch);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn format_attr_set_names() {
        let g = sample();
        let red = g.attr_id("red").unwrap();
        let blue = g.attr_id("blue").unwrap();
        assert_eq!(g.format_attr_set(&[red, blue]), "{red, blue}");
    }

    #[test]
    fn intern_is_idempotent() {
        let mut b = AttributedGraphBuilder::new(1);
        let a1 = b.intern_attr("term");
        let a2 = b.intern_attr("term");
        assert_eq!(a1, a2);
    }
}
