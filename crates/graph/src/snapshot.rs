//! Versioned, checksummed binary snapshot format for attributed graphs.
//!
//! The synthetic datasets take seconds to generate at bench scale and
//! ingested real datasets take seconds to parse; the harness snapshots
//! them once and reloads in milliseconds. The format (version 2) is a
//! little-endian, length-prefixed layout behind an 8-byte magic, a version
//! word, and a trailing FNV-1a 64 checksum over everything before it:
//!
//! ```text
//! "SCPMSNAP" u32 version=2
//! u64 n                       vertex count
//! u64 m                       edge count, then m × (u32 u, u32 v), u < v
//! u64 a                       attribute count, then a × (u32 len, bytes)
//! u64 pairs                   then pairs × (u32 vertex, u32 attr)
//! u64 checksum                FNV-1a 64 of every preceding byte
//! ```
//!
//! The byte-exact normative spec lives in `docs/DATASETS.md`. Decoding is
//! defensive in layers: the magic rejects foreign files, the version
//! rejects stale files from other format revisions, the checksum rejects
//! bit rot and truncation wholesale, and the structural pass re-checks
//! every length and id range anyway (defense in depth: a file with a
//! *forged* checksum still cannot make the decoder panic). Failures
//! return a [`SnapshotError`]; the failure-injection tests feed
//! truncated and corrupted buffers through the decoder.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;

use crate::attributed::{AttributedGraph, AttributedGraphBuilder};

const MAGIC: &[u8; 8] = b"SCPMSNAP";

/// Current snapshot format version. Version 1 (unchecksummed) is no longer
/// readable; decoding it fails with [`SnapshotError::BadVersion`] and
/// callers (the dataset cache, `scpm ingest`) regenerate.
pub const VERSION: u32 = 2;

/// FNV-1a 64-bit hash — the snapshot checksum function, also used by the
/// dataset cache to fingerprint source files.
///
/// ```
/// use scpm_graph::snapshot::fnv1a64;
/// assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv1a64(b"scpm"), fnv1a64(b"scpn"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors produced while decoding a snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the snapshot magic (a foreign file).
    BadMagic,
    /// Unsupported format version (a stale file from another revision).
    BadVersion(u32),
    /// The trailing checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// The buffer ended before the declared content.
    Truncated {
        /// What the decoder was reading.
        reading: &'static str,
    },
    /// Bytes remain after the declared content (corrupt or concatenated).
    TrailingData {
        /// Number of unconsumed payload bytes.
        bytes: usize,
    },
    /// An id exceeded its declared range.
    OutOfRange {
        /// What the decoder was reading.
        reading: &'static str,
        /// The offending value.
        value: u64,
    },
    /// An attribute name was not valid UTF-8.
    BadName,
    /// Underlying I/O failure (file variants only).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a scpm snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(
                f,
                "unsupported snapshot version {v} (this build reads version {VERSION})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SnapshotError::Truncated { reading } => {
                write!(f, "snapshot truncated while reading {reading}")
            }
            SnapshotError::TrailingData { bytes } => {
                write!(
                    f,
                    "snapshot has {bytes} trailing bytes after declared content"
                )
            }
            SnapshotError::OutOfRange { reading, value } => {
                write!(f, "snapshot {reading} value {value} out of range")
            }
            SnapshotError::BadName => write!(f, "attribute name is not valid UTF-8"),
            SnapshotError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.kind())
    }
}

/// Encodes an attributed graph into a snapshot buffer.
pub fn encode(g: &AttributedGraph) -> Bytes {
    let n = g.num_vertices();
    let m = g.num_edges();
    let a = g.num_attributes();
    let pairs: usize = (0..n as u32).map(|v| g.attributes_of(v).len()).sum();

    let name_bytes: usize = (0..a as u32).map(|x| g.attr_name(x).len() + 4).sum();
    let mut buf = BytesMut::with_capacity(8 + 4 + 8 * 5 + m * 8 + name_bytes + pairs * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);
    for (u, v) in g.graph().edges() {
        buf.put_u32_le(u);
        buf.put_u32_le(v);
    }
    buf.put_u64_le(a as u64);
    for x in 0..a as u32 {
        let name = g.attr_name(x).as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
    }
    buf.put_u64_le(pairs as u64);
    for v in 0..n as u32 {
        for &x in g.attributes_of(v) {
            buf.put_u32_le(v);
            buf.put_u32_le(x);
        }
    }
    let checksum = fnv1a64(buf.as_ref());
    buf.put_u64_le(checksum);
    buf.freeze()
}

fn need(buf: &impl Buf, bytes: usize, reading: &'static str) -> Result<(), SnapshotError> {
    if buf.remaining() < bytes {
        Err(SnapshotError::Truncated { reading })
    } else {
        Ok(())
    }
}

/// Decodes a snapshot buffer into an attributed graph.
///
/// Checks run outside-in: magic, version, whole-file checksum, then the
/// structural pass with per-field length and range validation.
///
/// ```
/// use scpm_graph::snapshot::{decode, encode};
/// use scpm_graph::figure1::figure1;
///
/// let g = figure1();
/// let bytes = encode(&g);
/// let g2 = decode(&bytes).unwrap();
/// assert_eq!(g2.num_vertices(), g.num_vertices());
/// assert_eq!(g2.num_edges(), g.num_edges());
/// ```
pub fn decode(data: impl AsRef<[u8]>) -> Result<AttributedGraph, SnapshotError> {
    let data = data.as_ref();
    if data.len() < 8 {
        // Too short to even carry the magic: classify by what we can see.
        if data == &MAGIC[..data.len()] {
            return Err(SnapshotError::Truncated { reading: "header" });
        }
        return Err(SnapshotError::BadMagic);
    }
    if &data[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if data.len() < 12 {
        return Err(SnapshotError::Truncated { reading: "header" });
    }
    let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    if data.len() < 12 + 8 {
        return Err(SnapshotError::Truncated {
            reading: "checksum",
        });
    }
    let body = &data[..data.len() - 8];
    let stored = u64::from_le_bytes(data[data.len() - 8..].try_into().unwrap());
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }

    let mut buf: &[u8] = &body[12..];
    need(&buf, 8, "vertex count")?;
    let n = buf.get_u64_le();
    if n > u32::MAX as u64 {
        return Err(SnapshotError::OutOfRange {
            reading: "vertex count",
            value: n,
        });
    }
    let mut b = AttributedGraphBuilder::new(n as usize);

    need(&buf, 8, "edge count")?;
    let m = buf.get_u64_le();
    for _ in 0..m {
        need(&buf, 8, "edge")?;
        let u = buf.get_u32_le();
        let v = buf.get_u32_le();
        if u as u64 >= n || v as u64 >= n {
            return Err(SnapshotError::OutOfRange {
                reading: "edge endpoint",
                value: u.max(v) as u64,
            });
        }
        b.add_edge(u, v);
    }

    need(&buf, 8, "attribute count")?;
    let a = buf.get_u64_le();
    if a > u32::MAX as u64 {
        return Err(SnapshotError::OutOfRange {
            reading: "attribute count",
            value: a,
        });
    }
    for i in 0..a {
        need(&buf, 4, "attribute name length")?;
        let len = buf.get_u32_le() as usize;
        need(&buf, len, "attribute name")?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        let name = String::from_utf8(raw).map_err(|_| SnapshotError::BadName)?;
        let id = b.intern_attr(&name);
        if id as u64 != i {
            // Duplicate names collapse ids and would desynchronize the
            // pair section; treat as corruption.
            return Err(SnapshotError::OutOfRange {
                reading: "duplicate attribute name",
                value: i,
            });
        }
    }

    need(&buf, 8, "pair count")?;
    let pairs = buf.get_u64_le();
    for _ in 0..pairs {
        need(&buf, 8, "vertex-attribute pair")?;
        let v = buf.get_u32_le();
        let x = buf.get_u32_le();
        if v as u64 >= n {
            return Err(SnapshotError::OutOfRange {
                reading: "pair vertex",
                value: v as u64,
            });
        }
        if x as u64 >= a {
            return Err(SnapshotError::OutOfRange {
                reading: "pair attribute",
                value: x as u64,
            });
        }
        b.add_attr(v, x);
    }
    if buf.remaining() != 0 {
        return Err(SnapshotError::TrailingData {
            bytes: buf.remaining(),
        });
    }
    Ok(b.build())
}

/// Writes a snapshot to a file atomically (alias for
/// [`write_snapshot_atomic`]; kept as the historical name every ingest
/// path calls).
pub fn save_snapshot(g: &AttributedGraph, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    write_snapshot_atomic(g, path)
}

/// Writes a snapshot via the atomic protocol: encode, write a temp file
/// in the target directory, fsync, rename over the target. A crash at
/// any point leaves either the complete old snapshot or the complete
/// new one — `scpm update` style overwrite-in-place can no longer lose
/// the *old* graph to a torn write.
pub fn write_snapshot_atomic(
    g: &AttributedGraph,
    path: impl AsRef<Path>,
) -> Result<(), SnapshotError> {
    write_snapshot_atomic_with(&crate::fault::FaultInjector::none(), g, path.as_ref())
}

/// [`write_snapshot_atomic`] with fault injection over the four
/// durability operations (create, write, sync, rename).
pub fn write_snapshot_atomic_with(
    inj: &crate::fault::FaultInjector,
    g: &AttributedGraph,
    path: &Path,
) -> Result<(), SnapshotError> {
    crate::fault::write_atomic_with(inj, path, &encode(g))?;
    Ok(())
}

/// Loads a snapshot from a file.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<AttributedGraph, SnapshotError> {
    let data = std::fs::read(path)?;
    decode(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;

    /// Recomputes the trailing checksum after a test patched the body —
    /// lets tests reach the structural validation layer behind it.
    fn reseal(mut raw: Vec<u8>) -> Vec<u8> {
        let body = raw.len() - 8;
        let sum = fnv1a64(&raw[..body]).to_le_bytes();
        raw[body..].copy_from_slice(&sum);
        raw
    }

    fn equivalent(a: &AttributedGraph, b: &AttributedGraph) -> bool {
        if a.num_vertices() != b.num_vertices()
            || a.num_edges() != b.num_edges()
            || a.num_attributes() != b.num_attributes()
        {
            return false;
        }
        for (u, v) in a.graph().edges() {
            if !b.graph().has_edge(u, v) {
                return false;
            }
        }
        for v in a.graph().vertices() {
            let na: Vec<&str> = a.attributes_of(v).iter().map(|&x| a.attr_name(x)).collect();
            let nb: Vec<&str> = b.attributes_of(v).iter().map(|&x| b.attr_name(x)).collect();
            let (mut sa, mut sb) = (na.clone(), nb.clone());
            sa.sort_unstable();
            sb.sort_unstable();
            if sa != sb {
                return false;
            }
        }
        true
    }

    #[test]
    fn roundtrip_figure1() {
        let g = figure1();
        let buf = encode(&g);
        let g2 = decode(buf).unwrap();
        assert!(equivalent(&g, &g2));
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = AttributedGraphBuilder::new(0).build();
        let g2 = decode(encode(&g)).unwrap();
        assert_eq!(g2.num_vertices(), 0);
        assert_eq!(g2.num_attributes(), 0);
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = figure1();
        assert_eq!(encode(&g).as_ref(), encode(&g).as_ref());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = encode(&figure1()).to_vec();
        raw[0] = b'X';
        assert!(matches!(decode(raw), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn rejects_foreign_files() {
        for foreign in [
            &b"PK\x03\x04 this is a zip, honest"[..],
            &b"{\"json\": true, \"padding\": \"padding padding\"}"[..],
            &b"v 3\ne 0 1\ne 1 2\na 0 red blue\n"[..],
            &[0u8; 64][..],
        ] {
            assert!(
                matches!(decode(foreign), Err(SnapshotError::BadMagic)),
                "foreign input accepted: {foreign:?}"
            );
        }
    }

    #[test]
    fn rejects_stale_version_1() {
        // A version-1 header (what pre-checksum snapshots carried).
        let mut raw = encode(&figure1()).to_vec();
        raw[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(decode(raw), Err(SnapshotError::BadVersion(1))));
    }

    #[test]
    fn rejects_future_version() {
        let mut raw = encode(&figure1()).to_vec();
        raw[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(decode(raw), Err(SnapshotError::BadVersion(99))));
    }

    #[test]
    fn bit_flips_anywhere_in_body_fail_the_checksum() {
        let raw = encode(&figure1()).to_vec();
        let body = raw.len() - 8;
        // Flip one bit at a sample of offsets past the version word.
        for off in (12..body).step_by(7) {
            let mut bad = raw.clone();
            bad[off] ^= 0x10;
            assert!(
                matches!(decode(&bad), Err(SnapshotError::ChecksumMismatch { .. })),
                "flip at {off} not caught"
            );
        }
        // A flip in the stored checksum itself also fails.
        let mut bad = raw.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(matches!(
            decode(&bad),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let raw = encode(&figure1()).to_vec();
        // Any strict prefix must fail (never panic): short prefixes as
        // magic/header truncation, longer ones via the checksum.
        for cut in 0..raw.len() {
            let r = decode(&raw[..cut]);
            assert!(
                matches!(
                    r,
                    Err(SnapshotError::Truncated { .. })
                        | Err(SnapshotError::BadMagic)
                        | Err(SnapshotError::ChecksumMismatch { .. })
                ),
                "cut at {cut} gave {r:?}"
            );
        }
    }

    #[test]
    fn single_byte_flips_at_every_offset_fail_cleanly() {
        // Satellite coverage for the durability work: a flip at EVERY
        // byte offset (header, body, and stored checksum) must return a
        // clean SnapshotError — never a panic, never a silent accept.
        let raw = encode(&figure1()).to_vec();
        for off in 0..raw.len() {
            let mut bad = raw.clone();
            bad[off] ^= 0x01;
            let r = decode(&bad);
            assert!(r.is_err(), "flip at {off} was accepted");
        }
    }

    #[test]
    fn atomic_write_survives_injected_faults_without_tearing() {
        use crate::fault::{FaultInjector, FaultMode, FaultPlan};
        let g = figure1();
        let dir = std::env::temp_dir().join("scpm_snapshot_atomic_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.snap");
        save_snapshot(&g, &path).unwrap();
        let before = std::fs::read(&path).unwrap();
        // Grow the graph so the new snapshot differs, then fail every
        // durability op in turn: the file must always read back as the
        // complete old snapshot.
        let g2 = crate::delta::GraphDelta::parse("v 1\ne 0 11\n")
            .unwrap()
            .apply(&g)
            .unwrap()
            .graph;
        for op in 0..4 {
            let inj = FaultInjector::plan(FaultPlan {
                op_index: op,
                mode: FaultMode::Crash,
            });
            assert!(write_snapshot_atomic_with(&inj, &g2, &path).is_err());
            assert_eq!(std::fs::read(&path).unwrap(), before, "op {op} tore");
            assert!(load_snapshot(&path).is_ok());
            let _ = std::fs::remove_file(dir.join("g.snap.tmp"));
        }
        write_snapshot_atomic(&g2, &path).unwrap();
        assert!(equivalent(&load_snapshot(&path).unwrap(), &g2));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut raw = encode(&figure1()).to_vec();
        raw.extend_from_slice(b"tail");
        // The appended bytes shift the checksum window: caught there.
        assert!(decode(&raw).is_err());
    }

    #[test]
    fn structural_check_rejects_resealed_trailing_payload() {
        // Insert extra payload *before* the checksum and reseal: the
        // checksum passes, the structural layer must still refuse.
        let raw = encode(&figure1()).to_vec();
        let mut bad = raw[..raw.len() - 8].to_vec();
        bad.extend_from_slice(&[0u8; 6]);
        bad.extend_from_slice(&[0u8; 8]); // checksum placeholder
        let bad = reseal(bad);
        assert!(matches!(
            decode(&bad),
            Err(SnapshotError::TrailingData { bytes: 6 })
        ));
    }

    #[test]
    fn rejects_out_of_range_edge_behind_valid_checksum() {
        let g = figure1();
        let raw = encode(&g).to_vec();
        // First edge endpoint lives right after header + n + m.
        let off = 8 + 4 + 8 + 8;
        let mut bad = raw.clone();
        bad[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let bad = reseal(bad);
        assert!(matches!(
            decode(&bad),
            Err(SnapshotError::OutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_invalid_utf8_name_behind_valid_checksum() {
        let g = figure1();
        let raw = encode(&g).to_vec();
        // Find the first attribute name (after edges): header(12) + n(8) +
        // m(8) + edges(8m) + a(8) + len(4).
        let m = g.num_edges();
        let off = 12 + 8 + 8 + 8 * m + 8 + 4;
        let mut bad = raw.clone();
        bad[off] = 0xFF;
        let bad = reseal(bad);
        assert!(matches!(decode(&bad), Err(SnapshotError::BadName)));
    }

    #[test]
    fn file_roundtrip() {
        let g = figure1();
        let dir = std::env::temp_dir().join("scpm_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.snap");
        save_snapshot(&g, &path).unwrap();
        let g2 = load_snapshot(&path).unwrap();
        assert!(equivalent(&g, &g2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = load_snapshot("/nonexistent/path/to/snapshot.snap");
        assert!(matches!(r, Err(SnapshotError::Io(_))));
    }
}
