//! Binary snapshot format for attributed graphs.
//!
//! The synthetic datasets take seconds to generate at bench scale; the
//! experiment harness snapshots them once and reloads in milliseconds.
//! The format is a little-endian, length-prefixed layout behind an 8-byte
//! magic and a version word:
//!
//! ```text
//! "SCPMSNAP" u32 version
//! u64 n                       vertex count
//! u64 m                       edge count, then m × (u32 u, u32 v), u < v
//! u64 a                       attribute count, then a × (u32 len, bytes)
//! u64 pairs                   then pairs × (u32 vertex, u32 attr)
//! ```
//!
//! Decoding is defensive: every read checks the remaining length, ids are
//! range-checked, and failures return a [`SnapshotError`] instead of
//! panicking — the failure-injection tests feed truncated and corrupted
//! buffers through the decoder.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;

use crate::attributed::{AttributedGraph, AttributedGraphBuilder};

const MAGIC: &[u8; 8] = b"SCPMSNAP";
const VERSION: u32 = 1;

/// Errors produced while decoding a snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the snapshot magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ended before the declared content.
    Truncated {
        /// What the decoder was reading.
        reading: &'static str,
    },
    /// An id exceeded its declared range.
    OutOfRange {
        /// What the decoder was reading.
        reading: &'static str,
        /// The offending value.
        value: u64,
    },
    /// An attribute name was not valid UTF-8.
    BadName,
    /// Underlying I/O failure (file variants only).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a scpm snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated { reading } => {
                write!(f, "snapshot truncated while reading {reading}")
            }
            SnapshotError::OutOfRange { reading, value } => {
                write!(f, "snapshot {reading} value {value} out of range")
            }
            SnapshotError::BadName => write!(f, "attribute name is not valid UTF-8"),
            SnapshotError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.kind())
    }
}

/// Encodes an attributed graph into a snapshot buffer.
pub fn encode(g: &AttributedGraph) -> Bytes {
    let n = g.num_vertices();
    let m = g.num_edges();
    let a = g.num_attributes();
    let pairs: usize = (0..n as u32).map(|v| g.attributes_of(v).len()).sum();

    let name_bytes: usize = (0..a as u32).map(|x| g.attr_name(x).len() + 4).sum();
    let mut buf = BytesMut::with_capacity(8 + 4 + 8 * 4 + m * 8 + name_bytes + pairs * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);
    for (u, v) in g.graph().edges() {
        buf.put_u32_le(u);
        buf.put_u32_le(v);
    }
    buf.put_u64_le(a as u64);
    for x in 0..a as u32 {
        let name = g.attr_name(x).as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
    }
    buf.put_u64_le(pairs as u64);
    for v in 0..n as u32 {
        for &x in g.attributes_of(v) {
            buf.put_u32_le(v);
            buf.put_u32_le(x);
        }
    }
    buf.freeze()
}

fn need(buf: &impl Buf, bytes: usize, reading: &'static str) -> Result<(), SnapshotError> {
    if buf.remaining() < bytes {
        Err(SnapshotError::Truncated { reading })
    } else {
        Ok(())
    }
}

/// Decodes a snapshot buffer into an attributed graph.
pub fn decode(mut buf: impl Buf) -> Result<AttributedGraph, SnapshotError> {
    need(&buf, 8 + 4, "header")?;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    need(&buf, 8, "vertex count")?;
    let n = buf.get_u64_le();
    if n > u32::MAX as u64 {
        return Err(SnapshotError::OutOfRange {
            reading: "vertex count",
            value: n,
        });
    }
    let mut b = AttributedGraphBuilder::new(n as usize);

    need(&buf, 8, "edge count")?;
    let m = buf.get_u64_le();
    for _ in 0..m {
        need(&buf, 8, "edge")?;
        let u = buf.get_u32_le();
        let v = buf.get_u32_le();
        if u as u64 >= n || v as u64 >= n {
            return Err(SnapshotError::OutOfRange {
                reading: "edge endpoint",
                value: u.max(v) as u64,
            });
        }
        b.add_edge(u, v);
    }

    need(&buf, 8, "attribute count")?;
    let a = buf.get_u64_le();
    if a > u32::MAX as u64 {
        return Err(SnapshotError::OutOfRange {
            reading: "attribute count",
            value: a,
        });
    }
    for i in 0..a {
        need(&buf, 4, "attribute name length")?;
        let len = buf.get_u32_le() as usize;
        need(&buf, len, "attribute name")?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        let name = String::from_utf8(raw).map_err(|_| SnapshotError::BadName)?;
        let id = b.intern_attr(&name);
        if id as u64 != i {
            // Duplicate names collapse ids and would desynchronize the
            // pair section; treat as corruption.
            return Err(SnapshotError::OutOfRange {
                reading: "duplicate attribute name",
                value: i,
            });
        }
    }

    need(&buf, 8, "pair count")?;
    let pairs = buf.get_u64_le();
    for _ in 0..pairs {
        need(&buf, 8, "vertex-attribute pair")?;
        let v = buf.get_u32_le();
        let x = buf.get_u32_le();
        if v as u64 >= n {
            return Err(SnapshotError::OutOfRange {
                reading: "pair vertex",
                value: v as u64,
            });
        }
        if x as u64 >= a {
            return Err(SnapshotError::OutOfRange {
                reading: "pair attribute",
                value: x as u64,
            });
        }
        b.add_attr(v, x);
    }
    Ok(b.build())
}

/// Writes a snapshot to a file.
pub fn save_snapshot(g: &AttributedGraph, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    std::fs::write(path, encode(g))?;
    Ok(())
}

/// Loads a snapshot from a file.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<AttributedGraph, SnapshotError> {
    let data = std::fs::read(path)?;
    decode(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;

    fn equivalent(a: &AttributedGraph, b: &AttributedGraph) -> bool {
        if a.num_vertices() != b.num_vertices()
            || a.num_edges() != b.num_edges()
            || a.num_attributes() != b.num_attributes()
        {
            return false;
        }
        for (u, v) in a.graph().edges() {
            if !b.graph().has_edge(u, v) {
                return false;
            }
        }
        for v in a.graph().vertices() {
            let na: Vec<&str> = a.attributes_of(v).iter().map(|&x| a.attr_name(x)).collect();
            let nb: Vec<&str> = b.attributes_of(v).iter().map(|&x| b.attr_name(x)).collect();
            let (mut sa, mut sb) = (na.clone(), nb.clone());
            sa.sort_unstable();
            sb.sort_unstable();
            if sa != sb {
                return false;
            }
        }
        true
    }

    #[test]
    fn roundtrip_figure1() {
        let g = figure1();
        let buf = encode(&g);
        let g2 = decode(buf).unwrap();
        assert!(equivalent(&g, &g2));
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = AttributedGraphBuilder::new(0).build();
        let g2 = decode(encode(&g)).unwrap();
        assert_eq!(g2.num_vertices(), 0);
        assert_eq!(g2.num_attributes(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = encode(&figure1()).to_vec();
        raw[0] = b'X';
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let mut raw = encode(&figure1()).to_vec();
        raw[8] = 99;
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(SnapshotError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let raw = encode(&figure1()).to_vec();
        // Any strict prefix must fail with Truncated (never panic).
        for cut in 0..raw.len() {
            let r = decode(Bytes::from(raw[..cut].to_vec()));
            assert!(
                matches!(
                    r,
                    Err(SnapshotError::Truncated { .. })
                        | Err(SnapshotError::BadMagic)
                        | Err(SnapshotError::OutOfRange { .. })
                ),
                "cut at {cut} gave {r:?}"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_edge() {
        let g = figure1();
        let mut raw = encode(&g).to_vec();
        // First edge endpoint lives right after header + n + m.
        let off = 8 + 4 + 8 + 8;
        raw[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode(Bytes::from(raw)),
            Err(SnapshotError::OutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_invalid_utf8_name() {
        let g = figure1();
        let raw = encode(&g).to_vec();
        // Find the first attribute name (after edges): header(12) + n(8) +
        // m(8) + edges(8m) + a(8) + len(4).
        let m = g.num_edges();
        let off = 12 + 8 + 8 + 8 * m + 8 + 4;
        let mut bad = raw.clone();
        bad[off] = 0xFF;
        assert!(matches!(
            decode(Bytes::from(bad)),
            Err(SnapshotError::BadName)
        ));
    }

    #[test]
    fn file_roundtrip() {
        let g = figure1();
        let dir = std::env::temp_dir().join("scpm_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.snap");
        save_snapshot(&g, &path).unwrap();
        let g2 = load_snapshot(&path).unwrap();
        assert!(equivalent(&g, &g2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = load_snapshot("/nonexistent/path/to/snapshot.snap");
        assert!(matches!(r, Err(SnapshotError::Io(_))));
    }
}
