//! Triangle counting and clustering coefficients.
//!
//! Triangles are counted with the forward algorithm over sorted adjacency
//! lists: for every edge `(u, v)` with `u < v`, the triangles through the
//! edge are `|N(u) ∩ N(v)|`, and restricting to higher-numbered third
//! vertices counts each triangle exactly once. The dataset generators use
//! clustering to verify that planted communities raise transitivity the
//! way the paper's real networks do (collaboration networks are strongly
//! clustered; random background graphs are not).

use crate::csr::{intersect_count, CsrGraph, VertexId};

/// Per-vertex and global triangle statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusteringStats {
    /// `triangles[v]` = number of triangles containing `v`.
    pub triangles: Vec<u64>,
    /// Total triangle count of the graph.
    pub total_triangles: u64,
    /// Global clustering coefficient (transitivity):
    /// `3·triangles / open-or-closed wedges`. Zero when there are no
    /// wedges.
    pub transitivity: f64,
    /// Mean of the local clustering coefficients over vertices of degree
    /// ≥ 2 (the Watts–Strogatz "average clustering").
    pub average_local: f64,
}

/// Counts triangles and clustering coefficients in
/// `O(Σ_v deg(v) · log)`-ish time via sorted intersections.
pub fn clustering(g: &CsrGraph) -> ClusteringStats {
    let n = g.num_vertices();
    let mut triangles = vec![0u64; n];
    let mut total = 0u64;
    for u in g.vertices() {
        let nu = g.neighbors(u);
        for &v in nu.iter().filter(|&&v| v > u) {
            // Third vertex w > v avoids double counting; instead of
            // slicing both lists we intersect full lists and divide at the
            // end — but per-vertex counts need the full per-edge count.
            let common = intersect_count(nu, g.neighbors(v));
            // Each common neighbor w forms a triangle {u, v, w}; the edge
            // (u, v) sees it once, and the triangle has 3 edges, so the
            // per-edge sum counts each triangle 3 times.
            triangles[u as usize] += common as u64;
            triangles[v as usize] += common as u64;
            total += common as u64;
        }
    }
    // `total` currently counts each triangle 3 times (once per edge);
    // per-vertex counts are currently 2·(triangles at the vertex seen from
    // its incident edges)... derive exact per-vertex counts instead:
    // the per-edge accumulation adds 1 to u and v for each triangle on the
    // edge (u,v); a triangle {a,b,c} has 3 edges, and vertex a is an
    // endpoint of 2 of them, so triangles[a] double-counts.
    for t in triangles.iter_mut() {
        debug_assert!(*t % 2 == 0, "per-vertex triangle parity");
        *t /= 2;
    }
    let total_triangles = total / 3;

    let mut wedges = 0u64;
    let mut local_sum = 0.0f64;
    let mut local_count = 0usize;
    for v in g.vertices() {
        let d = g.degree(v) as u64;
        if d >= 2 {
            let w = d * (d - 1) / 2;
            wedges += w;
            local_sum += triangles[v as usize] as f64 / w as f64;
            local_count += 1;
        }
    }
    let transitivity = if wedges == 0 {
        0.0
    } else {
        (3 * total_triangles) as f64 / wedges as f64
    };
    let average_local = if local_count == 0 {
        0.0
    } else {
        local_sum / local_count as f64
    };
    ClusteringStats {
        triangles,
        total_triangles,
        transitivity,
        average_local,
    }
}

/// Local clustering coefficient of one vertex:
/// `triangles(v) / C(deg(v), 2)`, zero for degree < 2.
pub fn local_clustering(g: &CsrGraph, v: VertexId) -> f64 {
    let d = g.degree(v);
    if d < 2 {
        return 0.0;
    }
    let nv = g.neighbors(v);
    let mut tri = 0usize;
    for (i, &a) in nv.iter().enumerate() {
        for &b in nv.iter().skip(i + 1) {
            if g.has_edge(a, b) {
                tri += 1;
            }
        }
    }
    tri as f64 / (d * (d - 1) / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn triangle_counts() {
        // One triangle plus a pendant.
        let g = graph_from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)]);
        let s = clustering(&g);
        assert_eq!(s.total_triangles, 1);
        assert_eq!(s.triangles, vec![1, 1, 1, 0]);
        // Wedges: deg 2,2,3,1 → 1 + 1 + 3 = 5; transitivity = 3/5.
        assert!((s.transitivity - 0.6).abs() < 1e-12);
        // Local: v0: 1/1, v1: 1/1, v2: 1/3; average over deg≥2 = 7/9.
        assert!((s.average_local - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn clique_is_fully_clustered() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = graph_from_edges(5, edges);
        let s = clustering(&g);
        assert_eq!(s.total_triangles, 10); // C(5,3)
        assert!((s.transitivity - 1.0).abs() < 1e-12);
        assert!((s.average_local - 1.0).abs() < 1e-12);
        assert!((local_clustering(&g, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tree_has_no_triangles() {
        let g = graph_from_edges(5, [(0, 1), (0, 2), (0, 3), (3, 4)]);
        let s = clustering(&g);
        assert_eq!(s.total_triangles, 0);
        assert_eq!(s.transitivity, 0.0);
        assert_eq!(local_clustering(&g, 0), 0.0);
    }

    #[test]
    fn per_vertex_matches_local_everywhere() {
        let g = crate::generators::erdos_renyi::gnm(40, 120, 11);
        let s = clustering(&g);
        for v in g.vertices() {
            let d = g.degree(v);
            if d >= 2 {
                let expect = local_clustering(&g, v);
                let got = s.triangles[v as usize] as f64 / (d * (d - 1) / 2) as f64;
                assert!((expect - got).abs() < 1e-12, "vertex {v}");
            } else {
                assert_eq!(s.triangles[v as usize], 0);
            }
        }
    }

    #[test]
    fn empty_graph() {
        let s = clustering(&CsrGraph::empty(3));
        assert_eq!(s.total_triangles, 0);
        assert_eq!(s.transitivity, 0.0);
        assert_eq!(s.average_local, 0.0);
    }
}
