//! Breadth-first traversal utilities: distances, eccentricity, and a
//! double-sweep diameter lower bound.
//!
//! The diameter-2 candidate pruning of the quasi-clique engine (γ ≥ 0.5 ⇒
//! quasi-clique diameter ≤ 2, Pei et al. KDD 2005) motivates these
//! helpers; the graph-stats CLI and the dataset calibration tests use them
//! to characterize generated topologies.

use std::collections::VecDeque;

use crate::csr::{CsrGraph, VertexId};

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `source` (`UNREACHABLE` for disconnected vertices).
pub fn bfs_distances(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in g.neighbors(v) {
            if dist[u as usize] == UNREACHABLE {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Eccentricity of `source` within its component: the largest finite BFS
/// distance.
pub fn eccentricity(g: &CsrGraph, source: VertexId) -> u32 {
    bfs_distances(g, source)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Double-sweep lower bound on the diameter: BFS from `start`, then BFS
/// from the farthest vertex found. Exact on trees; a tight lower bound in
/// practice on real networks.
pub fn diameter_lower_bound(g: &CsrGraph, start: VertexId) -> u32 {
    let first = bfs_distances(g, start);
    let far = first
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .map(|(v, _)| v as VertexId)
        .unwrap_or(start);
    eccentricity(g, far)
}

/// Exact diameter of the largest component by running a BFS from every
/// vertex of that component. `O(n·(n + m))` — intended for test-scale
/// graphs and calibration, not for the full datasets.
pub fn exact_diameter(g: &CsrGraph) -> u32 {
    let comp = crate::components::Components::of(g);
    let largest = comp.largest();
    largest
        .iter()
        .map(|&v| eccentricity(g, v))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn path_distances() {
        let g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(eccentricity(&g, 0), 3);
        assert_eq!(eccentricity(&g, 1), 2);
        assert_eq!(diameter_lower_bound(&g, 1), 3);
        assert_eq!(exact_diameter(&g), 3);
    }

    #[test]
    fn disconnected_distances() {
        let g = graph_from_edges(4, [(0, 1), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(eccentricity(&g, 0), 1);
        // Largest component has 2 vertices; ties resolved to the first.
        assert_eq!(exact_diameter(&g), 1);
    }

    #[test]
    fn cycle_diameter() {
        let g = graph_from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        assert_eq!(exact_diameter(&g), 3);
        assert!(diameter_lower_bound(&g, 0) <= 3);
        assert!(diameter_lower_bound(&g, 0) >= 2);
    }

    #[test]
    fn double_sweep_is_exact_on_trees() {
        // A "broom": path 0-1-2 with leaves 3,4 on vertex 2.
        let g = graph_from_edges(5, [(0, 1), (1, 2), (2, 3), (2, 4)]);
        for start in 0..5u32 {
            assert_eq!(diameter_lower_bound(&g, start), 3, "start {start}");
        }
    }

    #[test]
    fn single_vertex() {
        let g = graph_from_edges(1, Vec::<(u32, u32)>::new());
        assert_eq!(bfs_distances(&g, 0), vec![0]);
        assert_eq!(eccentricity(&g, 0), 0);
        assert_eq!(exact_diameter(&g), 0);
    }
}
