//! Graph deltas: insert-only change sets applied to an [`AttributedGraph`].
//!
//! Real attributed graphs (co-authorship, friendship, citation) grow
//! continuously — vertices appear, edges close, vertices acquire new
//! attributes. A [`GraphDelta`] captures one batch of such insertions and
//! [`GraphDelta::apply`] materializes the updated graph, reporting exactly
//! which insertions were *novel* (duplicates of existing edges or
//! attribute assignments are accepted and ignored). The novel effects are
//! what the incremental miner's dirty-set computation consumes
//! (`scpm_core::incremental`, `docs/INCREMENTAL.md`).
//!
//! # Text grammar
//!
//! One operation per line; `#` starts a comment; blank lines are ignored:
//!
//! ```text
//! v <k>              # append k isolated vertices (new ids n..n+k)
//! e <u> <v>          # insert the undirected edge {u, v}
//! a <v> <name>...    # add one or more named attributes to vertex v
//! ```
//!
//! Operations are applied in file order, so an `e`/`a` line may reference
//! vertices introduced by an earlier `v` line. Self-loops and references
//! to vertices that do not (yet) exist are errors — a delta is a claim
//! about a specific snapshot, and silently dropping bad operations would
//! desynchronize replicas applying the same stream.
//!
//! # Attribute-id stability
//!
//! [`GraphDelta::apply`] re-interns the base graph's attribute names in id
//! order before any delta attribute, so every existing [`AttrId`] keeps
//! its value and new names take ids `|A|..`. A full mine of the updated
//! graph therefore enumerates the attribute lattice in the same order as
//! an incremental update — the property the byte-identity differential
//! suite (`tests/incremental_vs_full.rs`) pins down.

use std::collections::HashSet;
use std::fmt;

use crate::attributed::{AttrId, AttributedGraph, AttributedGraphBuilder};
use crate::csr::VertexId;

/// One insert operation of a [`GraphDelta`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Append `k` isolated, attribute-free vertices.
    AddVertices(usize),
    /// Insert the undirected edge `{u, v}` (no-op if present).
    AddEdge(VertexId, VertexId),
    /// Add the named attribute to vertex `v` (no-op if present).
    AddAttr(VertexId, String),
}

/// An insert-only change set over an [`AttributedGraph`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Operations in application order.
    pub ops: Vec<DeltaOp>,
}

/// Why a delta could not be parsed or applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// A line of the text form did not parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// An edge operation named the same vertex twice.
    SelfLoop(VertexId),
    /// An operation referenced a vertex beyond the current vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The vertex count at the point the operation was applied.
        bound: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Parse { line, message } => write!(f, "delta line {line}: {message}"),
            DeltaError::SelfLoop(v) => write!(f, "delta: self-loop on vertex {v}"),
            DeltaError::VertexOutOfRange { vertex, bound } => {
                write!(
                    f,
                    "delta: vertex {vertex} out of range (graph has {bound} vertices)"
                )
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// The result of applying a [`GraphDelta`]: the updated graph plus the
/// deduplicated *novel* effects (insertions that changed the graph).
#[derive(Debug)]
pub struct AppliedDelta {
    /// The updated graph.
    pub graph: AttributedGraph,
    /// Vertices appended by the delta.
    pub added_vertices: usize,
    /// Edges that did not exist before, as `(min, max)` pairs.
    pub novel_edges: Vec<(VertexId, VertexId)>,
    /// `(vertex, attribute)` assignments that did not exist before, with
    /// attribute ids in the *updated* graph's table.
    pub novel_attrs: Vec<(VertexId, AttrId)>,
}

impl AppliedDelta {
    /// Whether the delta changed nothing (every operation was a no-op).
    pub fn is_noop(&self) -> bool {
        self.added_vertices == 0 && self.novel_edges.is_empty() && self.novel_attrs.is_empty()
    }
}

impl GraphDelta {
    /// Parses the text form (see the module docs for the grammar).
    pub fn parse(text: &str) -> Result<GraphDelta, DeltaError> {
        let mut ops = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut tokens = content.split_whitespace();
            let op = tokens.next().expect("non-empty line has a first token");
            let parse_err = |message: String| DeltaError::Parse { line, message };
            let mut next_num = |what: &str| -> Result<u64, DeltaError> {
                let tok = tokens
                    .next()
                    .ok_or_else(|| parse_err(format!("missing {what}")))?;
                tok.parse()
                    .map_err(|_| parse_err(format!("invalid {what} `{tok}`")))
            };
            match op {
                "v" => {
                    let k = next_num("vertex count")? as usize;
                    if tokens.next().is_some() {
                        return Err(parse_err("trailing tokens after `v <k>`".into()));
                    }
                    ops.push(DeltaOp::AddVertices(k));
                }
                "e" => {
                    let u = next_num("source vertex")? as VertexId;
                    let v = next_num("target vertex")? as VertexId;
                    if tokens.next().is_some() {
                        return Err(parse_err("trailing tokens after `e <u> <v>`".into()));
                    }
                    ops.push(DeltaOp::AddEdge(u, v));
                }
                "a" => {
                    let v = next_num("vertex")? as VertexId;
                    let names: Vec<&str> = tokens.collect();
                    if names.is_empty() {
                        return Err(parse_err(
                            "`a <v>` needs at least one attribute name".into(),
                        ));
                    }
                    for name in names {
                        ops.push(DeltaOp::AddAttr(v, name.to_string()));
                    }
                }
                other => {
                    return Err(parse_err(format!(
                        "unknown operation `{other}` (want v|e|a)"
                    )));
                }
            }
        }
        Ok(GraphDelta { ops })
    }

    /// Renders the delta back into its text form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for op in &self.ops {
            match op {
                DeltaOp::AddVertices(k) => out.push_str(&format!("v {k}\n")),
                DeltaOp::AddEdge(u, v) => out.push_str(&format!("e {u} {v}\n")),
                DeltaOp::AddAttr(v, name) => out.push_str(&format!("a {v} {name}\n")),
            }
        }
        out
    }

    /// Applies the delta to `base`, returning the updated graph and the
    /// deduplicated novel effects.
    ///
    /// The base graph is untouched; the update rebuilds CSR and attribute
    /// storage from scratch (insert-only deltas keep every existing vertex
    /// id, edge, attribute id and attribute assignment valid, see the
    /// module docs on id stability).
    pub fn apply(&self, base: &AttributedGraph) -> Result<AppliedDelta, DeltaError> {
        let old_n = base.num_vertices();
        let added_vertices: usize = self
            .ops
            .iter()
            .map(|op| match op {
                DeltaOp::AddVertices(k) => *k,
                _ => 0,
            })
            .sum();

        let mut builder = AttributedGraphBuilder::new(old_n + added_vertices);
        // Re-intern the base attribute table in id order first: existing
        // AttrIds keep their values, novel names take ids |A|.. .
        for a in base.attributes() {
            builder.intern_attr(base.attr_name(a));
        }
        for (u, v) in base.graph().edges() {
            builder.add_edge(u, v);
        }
        for v in 0..old_n as VertexId {
            for &a in base.attributes_of(v) {
                builder.add_attr(v, a);
            }
        }

        // Replay the operations, tracking the growing vertex bound and
        // deduplicating against both the base graph and earlier delta ops.
        let mut bound = old_n;
        let mut novel_edges: Vec<(VertexId, VertexId)> = Vec::new();
        let mut novel_attr_names: Vec<(VertexId, String)> = Vec::new();
        let mut seen_edges: HashSet<(VertexId, VertexId)> = HashSet::new();
        let mut seen_attrs: HashSet<(VertexId, String)> = HashSet::new();
        for op in &self.ops {
            match op {
                DeltaOp::AddVertices(k) => bound += k,
                DeltaOp::AddEdge(u, v) => {
                    let (u, v) = (*u, *v);
                    if u == v {
                        return Err(DeltaError::SelfLoop(u));
                    }
                    for w in [u, v] {
                        if w as usize >= bound {
                            return Err(DeltaError::VertexOutOfRange { vertex: w, bound });
                        }
                    }
                    let key = (u.min(v), u.max(v));
                    let exists_in_base = (key.1 as usize) < old_n && base.graph().has_edge(u, v);
                    if exists_in_base || !seen_edges.insert(key) {
                        continue;
                    }
                    builder.add_edge(u, v);
                    novel_edges.push(key);
                }
                DeltaOp::AddAttr(v, name) => {
                    let v = *v;
                    if v as usize >= bound {
                        return Err(DeltaError::VertexOutOfRange { vertex: v, bound });
                    }
                    let exists_in_base = (v as usize) < old_n
                        && base.attr_id(name).is_some_and(|a| base.has_attribute(v, a));
                    if exists_in_base || !seen_attrs.insert((v, name.clone())) {
                        continue;
                    }
                    builder.add_attr_named(v, name);
                    novel_attr_names.push((v, name.clone()));
                }
            }
        }

        let graph = builder.build();
        novel_edges.sort_unstable();
        let mut novel_attrs: Vec<(VertexId, AttrId)> = novel_attr_names
            .into_iter()
            .map(|(v, name)| {
                let a = graph
                    .attr_id(&name)
                    .expect("novel attribute was interned during apply");
                (v, a)
            })
            .collect();
        novel_attrs.sort_unstable();
        Ok(AppliedDelta {
            graph,
            added_vertices,
            novel_edges,
            novel_attrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::{figure1, paper_vertex};

    #[test]
    fn parse_roundtrip() {
        let text = "# grow\nv 2\ne 11 12\na 11 A B\n\ne 0 11  # close\n";
        let delta = GraphDelta::parse(text).unwrap();
        assert_eq!(
            delta.ops,
            vec![
                DeltaOp::AddVertices(2),
                DeltaOp::AddEdge(11, 12),
                DeltaOp::AddAttr(11, "A".into()),
                DeltaOp::AddAttr(11, "B".into()),
                DeltaOp::AddEdge(0, 11),
            ]
        );
        let reparsed = GraphDelta::parse(&delta.render()).unwrap();
        assert_eq!(delta, reparsed);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(GraphDelta::parse("v\n").is_err());
        assert!(GraphDelta::parse("e 1\n").is_err());
        assert!(GraphDelta::parse("e 1 2 3\n").is_err());
        assert!(GraphDelta::parse("a 1\n").is_err());
        assert!(GraphDelta::parse("x 1 2\n").is_err());
        assert!(GraphDelta::parse("e one two\n").is_err());
    }

    #[test]
    fn apply_preserves_base_and_reports_novel_effects() {
        let g = figure1();
        let delta = GraphDelta::parse("v 1\ne 0 11\na 11 A\na 11 Z\n").unwrap();
        let applied = delta.apply(&g).unwrap();
        assert_eq!(applied.added_vertices, 1);
        assert_eq!(applied.novel_edges, vec![(0, 11)]);
        let a = applied.graph.attr_id("A").unwrap();
        let z = applied.graph.attr_id("Z").unwrap();
        assert_eq!(applied.novel_attrs, vec![(11, a), (11, z)]);
        assert_eq!(applied.graph.num_vertices(), 12);
        assert_eq!(applied.graph.num_edges(), 20);
        // Old attribute ids are stable; the novel name appended after.
        for old in g.attributes() {
            assert_eq!(applied.graph.attr_name(old), g.attr_name(old));
        }
        assert_eq!(z, g.num_attributes() as AttrId);
        // Old structure intact.
        assert!(applied
            .graph
            .graph()
            .has_edge(paper_vertex(1), paper_vertex(2)));
        assert!(applied.graph.has_attribute(paper_vertex(6), a));
    }

    #[test]
    fn duplicate_insertions_are_noops() {
        let g = figure1();
        // Edge {1,2} and attribute A on vertex 1 already exist; a repeated
        // novel edge appears once.
        let delta = GraphDelta::parse("e 0 1\na 0 A\nv 1\ne 0 11\ne 11 0\n").unwrap();
        let applied = delta.apply(&g).unwrap();
        assert_eq!(applied.novel_edges, vec![(0, 11)]);
        assert!(applied.novel_attrs.is_empty());
        assert_eq!(applied.graph.num_edges(), g.num_edges() + 1);
        let fully_noop = GraphDelta::parse("e 0 1\na 0 A\n")
            .unwrap()
            .apply(&g)
            .unwrap();
        assert!(fully_noop.is_noop());
        assert_eq!(fully_noop.graph.num_edges(), g.num_edges());
        assert_eq!(fully_noop.graph.num_vertices(), g.num_vertices());
    }

    #[test]
    fn apply_rejects_bad_references() {
        let g = figure1();
        assert!(matches!(
            GraphDelta::parse("e 3 3\n").unwrap().apply(&g),
            Err(DeltaError::SelfLoop(3))
        ));
        assert!(matches!(
            GraphDelta::parse("e 0 11\n").unwrap().apply(&g),
            Err(DeltaError::VertexOutOfRange {
                vertex: 11,
                bound: 11
            })
        ));
        assert!(matches!(
            GraphDelta::parse("a 99 A\n").unwrap().apply(&g),
            Err(DeltaError::VertexOutOfRange { vertex: 99, .. })
        ));
        // Vertices become referencable only after their `v` line.
        assert!(GraphDelta::parse("e 0 11\nv 1\n")
            .unwrap()
            .apply(&g)
            .is_err());
        assert!(GraphDelta::parse("v 1\ne 0 11\n")
            .unwrap()
            .apply(&g)
            .is_ok());
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = figure1();
        let applied = GraphDelta::default().apply(&g).unwrap();
        assert!(applied.is_noop());
        assert_eq!(applied.graph.num_vertices(), g.num_vertices());
        assert_eq!(applied.graph.num_edges(), g.num_edges());
        assert_eq!(applied.graph.num_attributes(), g.num_attributes());
    }

    #[test]
    fn apply_on_empty_graph() {
        let empty = AttributedGraphBuilder::new(0).build();
        let delta = GraphDelta::parse("v 3\ne 0 1\na 2 red\n").unwrap();
        let applied = delta.apply(&empty).unwrap();
        assert_eq!(applied.graph.num_vertices(), 3);
        assert_eq!(applied.graph.num_edges(), 1);
        assert_eq!(applied.graph.num_attributes(), 1);
        assert_eq!(applied.novel_edges, vec![(0, 1)]);
    }
}
